"""Fig. 5 — inter-layer pipeline: formulas vs executed schedule.

The paper derives ``(2L+1)N + N/B`` cycles without the pipeline and
``(N/B)(2L+B+1)`` with it.  The benchmark sweeps batch size for an
AlexNet-depth network (L = 8), checks the closed forms against the
event-driven schedule simulator, and records the speedup series
(the crossover structure: speedup ~1 at B = 1, approaching 2L + 1
for large B).
"""

import time

from benchmarks._common import format_table, record, record_json
from repro.bench import register
from repro.core.pipeline import (
    asymptotic_training_speedup,
    training_cycles_pipelined,
    training_cycles_sequential,
)
from repro.core.schedule import simulate_training_pipeline
from repro.telemetry import bench_document as _bench_document

LAYERS = 8          # AlexNet's weighted-layer depth
BATCHES = [1, 2, 4, 8, 16, 32, 64, 128]
N_PER_BATCH = 4     # inputs = 4 batches per configuration


def sweep():
    rows = []
    for batch in BATCHES:
        n_inputs = batch * N_PER_BATCH
        sequential = training_cycles_sequential(LAYERS, n_inputs, batch)
        pipelined = training_cycles_pipelined(LAYERS, n_inputs, batch)
        simulated = simulate_training_pipeline(
            LAYERS, n_inputs, batch
        ).makespan
        rows.append(
            (
                batch,
                sequential,
                pipelined,
                simulated,
                sequential / pipelined,
            )
        )
    return rows


@register(suite="quick")
def bench_fig5_pipeline(benchmark):
    start = time.perf_counter()
    rows = benchmark(sweep)
    wall_time_s = time.perf_counter() - start
    lines = format_table(
        ("B", "seq_cycles", "pipe_cycles", "sim_cycles", "speedup"), rows
    )
    lines.append(
        f"asymptote (B->inf): {2 * LAYERS + 1}x; "
        f"at B=128: {asymptotic_training_speedup(LAYERS, 128):.2f}x"
    )
    record("fig5_pipeline", lines)
    by_batch = {row[0]: row for row in rows}
    record_json(
        "fig5_pipeline",
        _bench_document(
            bench="fig5_pipeline",
            workload="fig5",
            backend="analytic",
            wall_time_s=wall_time_s,
            counters={},
            extra={
                "metrics": {
                    "speedup_b1": by_batch[1][4],
                    "speedup_b128": by_batch[128][4],
                    "sequential_cycles_b128": by_batch[128][1],
                    "pipelined_cycles_b128": by_batch[128][2],
                    "asymptote": 2 * LAYERS + 1,
                }
            },
        ),
    )

    for batch, sequential, pipelined, simulated, speedup in rows:
        assert pipelined == simulated          # formula == execution
        assert pipelined <= sequential
    speedups = [row[4] for row in rows]
    assert speedups == sorted(speedups)        # monotone in B
    assert speedups[0] < 1.5                   # B=1: pipeline useless
    assert speedups[-1] > 0.75 * (2 * LAYERS + 1)  # near the 2L+1 limit
