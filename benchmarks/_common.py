"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
records the series it produced under ``benchmarks/results/`` so the
numbers survive pytest's output capturing (EXPERIMENTS.md is written
from these files).  Benchmarks that track performance additionally
record machine-readable ``BENCH_<name>.json`` documents (schema:
:func:`repro.telemetry.bench_document`) next to the text tables, so
the perf trajectory can be charted without parsing tables.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

RESULTS_DIR = Path(__file__).parent / "results"


def record(name: str, lines: Iterable[str]) -> str:
    """Write a result table to ``benchmarks/results/<name>.txt``.

    Also prints it (visible with ``pytest -s``) and returns the text.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print(f"\n=== {name} ===\n{text}")
    return text


def record_json(
    name: str, documents: Union[Dict, List[Dict]]
) -> Path:
    """Write validated bench records to ``results/BENCH_<name>.json``.

    ``documents`` is one :func:`repro.telemetry.bench_document` (or a
    list of them — one per measured configuration); each is validated
    against the pinned schema before writing, so a drifting document
    shape fails the benchmark rather than silently corrupting the
    perf-trajectory record.

    Under the unified runner (``repro bench``) the documents are also
    handed to :func:`repro.bench.runner.record_documents`, which
    collects them into the executing bench's outcome; outside a runner
    execution that hook is a no-op.
    """
    from repro.bench.runner import record_documents
    from repro.telemetry import validate_bench_document

    RESULTS_DIR.mkdir(exist_ok=True)
    if isinstance(documents, dict):
        documents = [documents]
    for document in documents:
        validate_bench_document(document)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(documents, indent=2, sort_keys=True) + "\n")
    record_documents(name, documents)
    return path


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> list:
    """Fixed-width table lines from headers and value rows."""
    header_line = "  ".join(f"{h:>14s}" for h in headers)
    lines = [header_line, "-" * len(header_line)]
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(f"{value:>14.4g}")
            else:
                cells.append(f"{str(value):>14s}")
        lines.append("  ".join(cells))
    return lines
