"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
records the series it produced under ``benchmarks/results/`` so the
numbers survive pytest's output capturing (EXPERIMENTS.md is written
from these files).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

RESULTS_DIR = Path(__file__).parent / "results"


def record(name: str, lines: Iterable[str]) -> str:
    """Write a result table to ``benchmarks/results/<name>.txt``.

    Also prints it (visible with ``pytest -s``) and returns the text.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print(f"\n=== {name} ===\n{text}")
    return text


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> list:
    """Fixed-width table lines from headers and value rows."""
    header_line = "  ".join(f"{h:>14s}" for h in headers)
    lines = [header_line, "-" * len(header_line)]
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(f"{value:>14.4g}")
            else:
                cells.append(f"{str(value):>14s}")
        lines.append("  ".join(cells))
    return lines
