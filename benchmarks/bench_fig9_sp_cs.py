"""Fig. 9 — spatial parallelism and computation sharing.

ReGAN's two pipeline optimizations: SP duplicates D so training phases
(1) and (2) run concurrently; CS co-trains D and G by sharing the
forward path T0-T6 (doubling intermediate storage), with D updated at
T11 and G at T14.  The benchmark compares full-iteration cycle counts
across all five schemes for the four ReGAN datasets and records the
cycles, speedup, and hardware price of each scheme.
"""

import time

from benchmarks._common import format_table, record, record_json
from repro.bench import register
from repro.core.gan_pipeline import SCHEME_COSTS, SCHEMES, iteration_cycles
from repro.telemetry import bench_document as _bench_document
from repro.workloads import regan_suite

BATCH = 32


def sweep():
    rows = []
    for dataset, (generator, discriminator) in regan_suite().items():
        l_g, l_d = generator.depth, discriminator.depth
        base = iteration_cycles(l_d, l_g, BATCH, "unpipelined")
        for scheme in SCHEMES:
            cycles = iteration_cycles(l_d, l_g, BATCH, scheme)
            cost = SCHEME_COSTS[scheme]
            rows.append(
                (
                    dataset,
                    scheme,
                    cycles,
                    base / cycles,
                    cost.d_copies,
                    cost.intermediate_storage_factor,
                )
            )
    return rows


@register(suite="quick")
def bench_fig9_sp_cs(benchmark):
    start = time.perf_counter()
    rows = benchmark(sweep)
    wall_time_s = time.perf_counter() - start
    lines = format_table(
        ("dataset", "scheme", "cycles", "speedup", "D_copies", "storage_x"),
        rows,
    )
    record("fig9_sp_cs", lines)
    by_key = {(row[0], row[1]): row for row in rows}
    record_json(
        "fig9_sp_cs",
        _bench_document(
            bench="fig9_sp_cs",
            workload="fig9",
            backend="analytic",
            wall_time_s=wall_time_s,
            counters={},
            extra={
                "metrics": {
                    f"celeba_{scheme}_cycles": by_key[("celeba", scheme)][2]
                    for scheme in SCHEMES
                }
            },
        ),
    )

    by_key = {(row[0], row[1]): row for row in rows}
    for dataset in ("mnist", "cifar10", "celeba", "lsun"):
        cycles = {
            scheme: by_key[(dataset, scheme)][2] for scheme in SCHEMES
        }
        # Each optimization strictly helps at B=32.
        assert cycles["pipelined"] < cycles["unpipelined"]
        assert cycles["sp"] < cycles["pipelined"]
        assert cycles["cs"] < cycles["pipelined"]
        assert cycles["sp_cs"] <= cycles["sp"]
        assert cycles["sp_cs"] <= cycles["cs"]
        # The hardware price is visible: SP needs 2x D, CS 2x storage.
        assert by_key[(dataset, "sp")][4] == 2
        assert by_key[(dataset, "cs")][5] == 2.0
