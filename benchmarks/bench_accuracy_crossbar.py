"""A1 — inference accuracy through the crossbar vs float (fidelity).

The PIM proposal implicitly claims that crossbar arithmetic (quantized
weights, spike-coded activations, bounded ADC) preserves model quality.
This benchmark trains an MNIST-shaped CNN on the synthetic dataset,
then evaluates it through the full simulated datapath across weight
resolutions, recording the accuracy knee.
"""

import time

import numpy as np

from benchmarks._common import format_table, record, record_json
from repro.bench import register
from repro.core import deploy_network
from repro.telemetry import bench_document as _bench_document
from repro.datasets import make_train_test
from repro.nn import Adam, build_mnist_cnn, evaluate_classifier, train_classifier
from repro.xbar import CrossbarEngineConfig, InputEncoding, WeightMapping

WEIGHT_BITS = [16, 8, 6, 4, 3, 2]


def prepare():
    x_train, y_train, x_test, y_test = make_train_test(500, 150, rng=7)
    network = build_mnist_cnn(rng=11)
    train_classifier(
        network,
        Adam(network.parameters(), lr=1e-3),
        x_train,
        y_train,
        epochs=3,
        batch_size=32,
        rng=np.random.default_rng(1),
    )
    return network, x_test, y_test


def evaluate_at(network, x_test, y_test, weight_bits):
    config = CrossbarEngineConfig(
        mapping=WeightMapping(
            weight_bits=weight_bits, cell_bits=min(4, weight_bits - 1)
        ),
        encoding=InputEncoding(bits=8),
    )
    deployment = deploy_network(network, config, rng=3)
    accuracy = evaluate_classifier(network, x_test, y_test)
    deployment.undeploy()
    return accuracy


@register(suite="full")
def bench_accuracy_crossbar(benchmark):
    start = time.perf_counter()
    network, x_test, y_test = prepare()
    float_accuracy = evaluate_classifier(network, x_test, y_test)

    rows = [("float", float_accuracy)]
    for weight_bits in WEIGHT_BITS:
        rows.append(
            (
                f"{weight_bits}b",
                evaluate_at(network, x_test, y_test, weight_bits),
            )
        )

    benchmark(evaluate_at, network, x_test, y_test, 16)
    wall_time_s = time.perf_counter() - start

    lines = format_table(("weights", "accuracy"), rows)
    record("accuracy_crossbar", lines)
    record_json(
        "accuracy_crossbar",
        _bench_document(
            bench="accuracy_crossbar",
            workload="mnist_cnn",
            backend="sim",
            wall_time_s=wall_time_s,
            counters={},
            extra={
                "metrics": {
                    f"accuracy_{label}": accuracy
                    for label, accuracy in rows
                }
            },
        ),
    )

    accuracies = dict(rows)
    assert accuracies["float"] > 0.9            # the model trained
    assert accuracies["16b"] >= accuracies["float"] - 0.02  # lossless-ish
    assert accuracies["8b"] >= accuracies["float"] - 0.05
    assert accuracies["2b"] <= accuracies["16b"]  # the knee exists
