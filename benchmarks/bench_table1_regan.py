"""Table I, row 2 — ReGAN speedup and energy saving vs GTX 1080.

Paper: "Due to the high complexity of GAN system, ReGAN obtains even
higher benefit — 240x improvement in performance and 94x energy
reduction" over DCGAN training on MNIST / CIFAR-10 / CelebA / LSUN.

The benchmark runs the ReGAN model (scheme SP+CS, the full design)
over the four-dataset DCGAN suite at batch 32.
"""

import time

from benchmarks._common import format_table, record, record_json
from repro.bench import register
from repro.core import pipelayer_table1, regan_table1
from repro.core.estimator import PAPER_REGAN_ENERGY, PAPER_REGAN_SPEEDUP
from repro.telemetry import bench_document as _bench_document


def compute_row():
    return regan_table1(batch=32, scheme="sp_cs")


@register(suite="quick")
def bench_table1_regan(benchmark):
    start = time.perf_counter()
    row = benchmark(compute_row)
    wall_time_s = time.perf_counter() - start
    rows = [
        (name, speedup, energy)
        for name, speedup, energy in row.per_workload
    ]
    rows.append(("GEOMEAN", row.speedup, row.energy_saving))
    rows.append(("paper", PAPER_REGAN_SPEEDUP, PAPER_REGAN_ENERGY))
    lines = format_table(("dataset", "speedup_x", "energy_saving_x"), rows)
    record("table1_regan", lines)
    record_json(
        "table1_regan",
        _bench_document(
            bench="table1_regan",
            workload="table1",
            backend="regan",
            wall_time_s=wall_time_s,
            counters={},
            extra={
                "metrics": {
                    "speedup_geomean": row.speedup,
                    "energy_saving_geomean": row.energy_saving,
                }
            },
        ),
    )

    # Shape assertions: ReGAN's benefit exceeds PipeLayer's (Table I
    # ordering) and the speedup lands in the paper's regime.
    pipelayer = pipelayer_table1(batch=32)
    assert row.speedup > pipelayer.speedup
    assert row.energy_saving > pipelayer.energy_saving
    assert 0.25 < row.speedup / PAPER_REGAN_SPEEDUP < 4
    assert row.energy_saving > 5
