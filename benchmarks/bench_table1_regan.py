"""Table I, row 2 — ReGAN speedup and energy saving vs GTX 1080.

Paper: "Due to the high complexity of GAN system, ReGAN obtains even
higher benefit — 240x improvement in performance and 94x energy
reduction" over DCGAN training on MNIST / CIFAR-10 / CelebA / LSUN.

The benchmark runs the ReGAN model (scheme SP+CS, the full design)
over the four-dataset DCGAN suite at batch 32.
"""

from benchmarks._common import format_table, record
from repro.core import pipelayer_table1, regan_table1
from repro.core.estimator import PAPER_REGAN_ENERGY, PAPER_REGAN_SPEEDUP


def compute_row():
    return regan_table1(batch=32, scheme="sp_cs")


def bench_table1_regan(benchmark):
    row = benchmark(compute_row)
    rows = [
        (name, speedup, energy)
        for name, speedup, energy in row.per_workload
    ]
    rows.append(("GEOMEAN", row.speedup, row.energy_saving))
    rows.append(("paper", PAPER_REGAN_SPEEDUP, PAPER_REGAN_ENERGY))
    lines = format_table(("dataset", "speedup_x", "energy_saving_x"), rows)
    record("table1_regan", lines)

    # Shape assertions: ReGAN's benefit exceeds PipeLayer's (Table I
    # ordering) and the speedup lands in the paper's regime.
    pipelayer = pipelayer_table1(batch=32)
    assert row.speedup > pipelayer.speedup
    assert row.energy_saving > pipelayer.energy_saving
    assert 0.25 < row.speedup / PAPER_REGAN_SPEEDUP < 4
    assert row.energy_saving > 5
