"""Fig. 3 — crossbar MVM correctness and multi-array partitioning.

Fig. 3(a,b) maps a matrix-vector multiplication onto one array;
Fig. 3(c) partitions a large matrix over multiple arrays whose partial
sums are "collected horizontally and summed vertically".  The benchmark
measures the simulated-pipeline throughput and records the fidelity
(relative error vs exact float matmul) across matrix sizes spanning the
single-array and multi-array regimes.
"""

import time

import numpy as np

from benchmarks._common import format_table, record, record_json
from repro.bench import register
from repro.telemetry import bench_document as _bench_document
from repro.xbar import CrossbarEngine, CrossbarEngineConfig

SIZES = [(64, 64), (128, 128), (512, 256), (1152, 256)]  # last = Fig. 4


def run_mvm(engine, activations):
    return engine.matmul(activations)


@register(suite="quick")
def bench_fig3_crossbar(benchmark):
    rng = np.random.default_rng(0)
    rows = []
    engines = {}
    for (k, n) in SIZES:
        weights = rng.normal(size=(k, n))
        engine = CrossbarEngine(CrossbarEngineConfig(), rng=1)
        engine.prepare(weights)
        activations = rng.normal(size=(8, k))
        out = engine.matmul(activations)
        exact = activations @ weights
        rel = float(
            np.max(np.abs(out - exact)) / np.max(np.abs(exact))
        )
        arrays = engine.array_count
        rows.append((f"{k}x{n}", arrays, rel))
        engines[(k, n)] = (engine, activations)

    # Benchmark the Fig. 4-sized tiled MVM (the paper's worked shape).
    engine, activations = engines[(1152, 256)]
    start = time.perf_counter()
    benchmark(run_mvm, engine, activations)
    wall_time_s = time.perf_counter() - start

    lines = format_table(("matrix", "arrays", "max_rel_err"), rows)
    record("fig3_crossbar", lines)
    record_json(
        "fig3_crossbar",
        _bench_document(
            bench="fig3_crossbar",
            workload="fig3",
            backend="sim",
            wall_time_s=wall_time_s,
            counters={},
            extra={
                "metrics": {
                    f"max_rel_err_{matrix}": rel
                    for matrix, _, rel in rows
                }
                | {"arrays_1152x256": rows[-1][1]},
            },
        ),
    )

    # Fidelity: every size is within 16-bit/8-bit quantization error.
    assert all(rel < 0.01 for _, _, rel in rows)
    # Partitioning: the Fig. 4 matrix uses the 9x2 grid per slice plane
    # (x 4 slices x 2 signs = 144 arrays).
    assert rows[-1][1] == 144
