"""Table I, row 1 — PipeLayer speedup and energy saving vs GTX 1080.

Paper: "on average, PipeLayer achieves 42.45x speedup and 7.17x energy
saving" over the GPU platform on MNIST and ImageNet workloads.

This benchmark runs the PipeLayer model over the three-network suite
(MNIST CNN, AlexNet, VGG-16) at batch 32 and reports the per-workload
and geometric-mean speedup/energy-saving, recording the table to
``benchmarks/results/table1_pipelayer.txt``.
"""

import time

from benchmarks._common import format_table, record, record_json
from repro.bench import register
from repro.core import pipelayer_table1
from repro.core.estimator import (
    PAPER_PIPELAYER_ENERGY,
    PAPER_PIPELAYER_SPEEDUP,
)
from repro.telemetry import bench_document as _bench_document


def compute_row():
    return pipelayer_table1(batch=32)


@register(suite="quick")
def bench_table1_pipelayer(benchmark):
    start = time.perf_counter()
    row = benchmark(compute_row)
    wall_time_s = time.perf_counter() - start
    rows = [
        (name, speedup, energy)
        for name, speedup, energy in row.per_workload
    ]
    rows.append(("GEOMEAN", row.speedup, row.energy_saving))
    rows.append(("paper", PAPER_PIPELAYER_SPEEDUP, PAPER_PIPELAYER_ENERGY))
    lines = format_table(
        ("workload", "speedup_x", "energy_saving_x"), rows
    )
    record("table1_pipelayer", lines)
    record_json(
        "table1_pipelayer",
        _bench_document(
            bench="table1_pipelayer",
            workload="table1",
            backend="pipelayer",
            wall_time_s=wall_time_s,
            counters={},
            extra={
                "metrics": {
                    "speedup_geomean": row.speedup,
                    "energy_saving_geomean": row.energy_saving,
                }
            },
        ),
    )

    # Shape assertions: PipeLayer wins big on time, modestly on energy.
    assert row.speedup > 10
    assert 1 < row.energy_saving < row.speedup
    # Within ~4x of the printed averages.
    assert 0.25 < row.speedup / PAPER_PIPELAYER_SPEEDUP < 4
    assert 0.25 < row.energy_saving / PAPER_PIPELAYER_ENERGY < 4
