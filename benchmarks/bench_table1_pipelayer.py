"""Table I, row 1 — PipeLayer speedup and energy saving vs GTX 1080.

Paper: "on average, PipeLayer achieves 42.45x speedup and 7.17x energy
saving" over the GPU platform on MNIST and ImageNet workloads.

This benchmark runs the PipeLayer model over the three-network suite
(MNIST CNN, AlexNet, VGG-16) at batch 32 and reports the per-workload
and geometric-mean speedup/energy-saving, recording the table to
``benchmarks/results/table1_pipelayer.txt``.
"""

from benchmarks._common import format_table, record
from repro.core import pipelayer_table1
from repro.core.estimator import (
    PAPER_PIPELAYER_ENERGY,
    PAPER_PIPELAYER_SPEEDUP,
)


def compute_row():
    return pipelayer_table1(batch=32)


def bench_table1_pipelayer(benchmark):
    row = benchmark(compute_row)
    rows = [
        (name, speedup, energy)
        for name, speedup, energy in row.per_workload
    ]
    rows.append(("GEOMEAN", row.speedup, row.energy_saving))
    rows.append(("paper", PAPER_PIPELAYER_SPEEDUP, PAPER_PIPELAYER_ENERGY))
    lines = format_table(
        ("workload", "speedup_x", "energy_saving_x"), rows
    )
    record("table1_pipelayer", lines)

    # Shape assertions: PipeLayer wins big on time, modestly on energy.
    assert row.speedup > 10
    assert 1 < row.energy_saving < row.speedup
    # Within ~4x of the printed averages.
    assert 0.25 < row.speedup / PAPER_PIPELAYER_SPEEDUP < 4
    assert 0.25 < row.energy_saving / PAPER_PIPELAYER_ENERGY < 4
