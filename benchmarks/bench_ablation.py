"""A2 — ablations over the design choices DESIGN.md calls out.

Four sweeps, all on the AlexNet deployment at batch 32:

* array size (64 / 128 / 256): cycle time vs array count;
* activation (spike-code) width: cycle time vs fidelity proxy;
* array budget (duplication headroom): speedup vs energy saving —
  the paper's "carefully chosen X" trade-off at system level;
* batch size: pipelined training speedup vs the GPU (amortisation of
  the weight-update bubble).
"""

import time

from benchmarks._common import format_table, record, record_json
from repro.bench import register
from repro.core import PipeLayerModel
from repro.core.mapping import MappingConfig
from repro.telemetry import bench_document as _bench_document
from repro.workloads import alexnet_spec


def sweep_array_size():
    rows = []
    for array_size in (64, 128, 256):
        config = MappingConfig(array_rows=array_size, array_cols=array_size)
        model = PipeLayerModel(
            alexnet_spec(), array_budget=262144, mapping_config=config
        )
        report = model.report(batch=32, training=True)
        rows.append(
            (
                array_size,
                model.total_arrays,
                report.cycle_time * 1e6,
                report.speedup,
                report.energy_saving,
            )
        )
    return rows


def sweep_activation_bits():
    rows = []
    for bits in (4, 8, 16):
        config = MappingConfig(activation_bits=bits)
        model = PipeLayerModel(
            alexnet_spec(), array_budget=262144, mapping_config=config
        )
        report = model.report(batch=32, training=True)
        rows.append(
            (bits, report.cycle_time * 1e6, report.speedup,
             report.energy_saving)
        )
    return rows


def sweep_budget():
    rows = []
    for budget in (262144 // 2, 262144, 262144 * 2, 262144 * 4):
        model = PipeLayerModel(alexnet_spec(), array_budget=budget)
        report = model.report(batch=32, training=True)
        rows.append(
            (budget, report.total_arrays, report.speedup,
             report.energy_saving)
        )
    return rows


def sweep_input_coding():
    """Weighted spike coding vs rate (unary) coding vs analog DAC.

    Functional results are identical (verified in the test suite); the
    difference is sub-cycles per MVM — the paper's stated reason for
    the weighted scheme.
    """
    from repro.xbar import AnalogDAC, InputEncoding, RateCoder, SpikeCoder

    rows = []
    for bits in (4, 8, 16):
        encoding = InputEncoding(bits=bits)
        rows.append(
            (
                bits,
                SpikeCoder(encoding).subcycles,
                RateCoder(encoding).subcycles,
                AnalogDAC(encoding).subcycles,
                RateCoder(encoding).subcycles
                / SpikeCoder(encoding).subcycles,
            )
        )
    return rows


def sweep_batch():
    model = PipeLayerModel(alexnet_spec(), array_budget=262144)
    rows = []
    for batch in (1, 8, 32, 128):
        report = model.report(batch=batch, training=True)
        rows.append((batch, report.speedup, report.energy_saving))
    return rows


@register(suite="quick")
def bench_ablation(benchmark):
    start = time.perf_counter()
    array_rows = sweep_array_size()
    bits_rows = sweep_activation_bits()
    budget_rows = benchmark(sweep_budget)
    batch_rows = sweep_batch()
    wall_time_s = time.perf_counter() - start

    lines = ["[array size]"]
    lines += format_table(
        ("size", "arrays", "cycle_us", "speedup", "energy_x"), array_rows
    )
    lines.append("\n[activation bits]")
    lines += format_table(
        ("bits", "cycle_us", "speedup", "energy_x"), bits_rows
    )
    lines.append("\n[array budget]")
    lines += format_table(
        ("budget", "deployed", "speedup", "energy_x"), budget_rows
    )
    lines.append("\n[batch size]")
    lines += format_table(("B", "speedup", "energy_x"), batch_rows)
    coding_rows = sweep_input_coding()
    lines.append("\n[input coding: sub-cycles per MVM]")
    lines += format_table(
        ("bits", "weighted", "rate", "analog", "rate/weighted"),
        coding_rows,
    )
    record("ablation", lines)
    record_json(
        "ablation",
        _bench_document(
            bench="ablation",
            workload="ablation",
            backend="model",
            wall_time_s=wall_time_s,
            counters={},
            extra={
                "metrics": {
                    "speedup_budget_min": budget_rows[0][2],
                    "speedup_budget_max": budget_rows[-1][2],
                    "speedup_b128": batch_rows[-1][1],
                    "rate_over_weighted_16b": coding_rows[-1][4],
                    "cycle_us_8b": bits_rows[1][1],
                }
            },
        ),
    )

    # Weighted spike coding's advantage grows exponentially with bits.
    ratios = [row[4] for row in coding_rows]
    assert ratios == sorted(ratios)
    assert coding_rows[-1][4] > 1000  # 16-bit: 65535/16

    # Budget: more arrays -> more duplication X -> more speedup, but the
    # energy saving erodes (write + static overheads grow) — exactly the
    # Fig. 4 "excessive hardware cost" warning at system scale.
    budget_speedups = [row[2] for row in budget_rows]
    assert budget_speedups == sorted(budget_speedups)
    assert budget_rows[-1][3] < budget_rows[0][3] * 2.5

    # Activation bits: cycle time scales linearly with spike passes.
    cycle_by_bits = {row[0]: row[1] for row in bits_rows}
    assert cycle_by_bits[16] > cycle_by_bits[8] > cycle_by_bits[4]

    # Batch: speedup improves with B (update bubble amortised).
    batch_speedups = [row[1] for row in batch_rows]
    assert batch_speedups == sorted(batch_speedups)
