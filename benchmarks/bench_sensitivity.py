"""A5 — robustness of Table I to the substituted technology constants.

DESIGN.md replaces the papers' circuit numbers with literature-derived
tables; this benchmark sweeps every energy/timing constant by 0.5x/2x
and records the swing of the Table I metrics, then checks that the
paper's qualitative conclusions hold at *every* corner:

1. both accelerators beat the GPU by >10x on time;
2. the energy saving is positive but smaller than the speedup;
3. ReGAN's benefit exceeds PipeLayer's.
"""

import time

from benchmarks._common import format_table, record, record_json
from repro.arch.sensitivity import conclusion_robustness, tech_sensitivity
from repro.bench import register
from repro.core.estimator import pipelayer_table1, regan_table1
from repro.telemetry import bench_document as _bench_document


def pipelayer_speedup(tech):
    return pipelayer_table1(tech=tech).speedup


def pipelayer_energy(tech):
    return pipelayer_table1(tech=tech).energy_saving


def sweep():
    return {
        "speedup": tech_sensitivity(pipelayer_speedup),
        "energy": tech_sensitivity(pipelayer_energy),
    }


@register(suite="quick")
def bench_sensitivity(benchmark):
    start = time.perf_counter()
    sweeps = benchmark(sweep)
    wall_time_s = time.perf_counter() - start

    lines = []
    for metric_name, rows in sweeps.items():
        lines.append(f"[PipeLayer {metric_name}: tornado, 0.5x..2x]")
        lines += format_table(
            ("parameter", "at 0.5x", "nominal", "at 2x", "swing"),
            [
                (
                    row.field,
                    row.metric_low,
                    row.metric_nominal,
                    row.metric_high,
                    row.swing,
                )
                for row in rows
            ],
        )
        lines.append("")

    held = conclusion_robustness(
        metrics={
            "pl_speedup": lambda tech: pipelayer_table1(tech=tech).speedup,
            "pl_energy": lambda tech: pipelayer_table1(
                tech=tech
            ).energy_saving,
            "rg_speedup": lambda tech: regan_table1(tech=tech).speedup,
            "rg_energy": lambda tech: regan_table1(tech=tech).energy_saving,
        },
        predicates={
            "accelerators_win_big": lambda v: v["pl_speedup"] > 10
            and v["rg_speedup"] > 10,
            "energy_saving_below_speedup": lambda v: 1
            < v["pl_energy"]
            < v["pl_speedup"],
            "regan_faster_than_pipelayer": lambda v: v["rg_speedup"]
            > v["pl_speedup"],
            # Recorded but NOT asserted: the ReGAN-vs-PipeLayer *energy*
            # ordering (13.0x vs 11.3x nominal) is within model noise in
            # this reproduction and flips when write/static costs double
            # — an honest limitation already noted in EXPERIMENTS.md
            # (the paper's 94x-vs-7.17x gap is far wider than ours).
            "regan_greener_than_pipelayer": lambda v: v["rg_energy"]
            > v["pl_energy"],
        },
    )
    lines.append("[conclusion robustness at every corner]")
    for name, ok in held.items():
        lines.append(f"  {name}: {'HELD' if ok else 'VIOLATED'}")
    record("sensitivity", lines)
    speedup_rows = {row.field: row for row in sweeps["speedup"]}
    record_json(
        "sensitivity",
        _bench_document(
            bench="sensitivity",
            workload="table1",
            backend="model",
            wall_time_s=wall_time_s,
            counters={},
            extra={
                "metrics": {
                    "speedup_nominal": speedup_rows[
                        "subcycle_time"
                    ].metric_nominal,
                    "subcycle_time_swing": speedup_rows[
                        "subcycle_time"
                    ].swing,
                    "conclusions_held": sum(
                        1 for ok in held.values() if ok
                    ),
                }
            },
        ),
    )

    # Structural expectations of the model itself.
    # Speedup depends only on timing, not on any energy constant.
    assert speedup_rows["subcycle_time"].swing > 0.5
    for field in (
        "adc_energy_per_conversion",
        "cell_write_energy",
        "array_static_power",
    ):
        assert speedup_rows[field].swing == 0.0
    # Energy saving falls as the ADC/write/static costs rise.
    energy_rows = {row.field: row for row in sweeps["energy"]}
    assert energy_rows["adc_energy_per_conversion"].direction == "decreasing"
    assert energy_rows["array_static_power"].direction == "decreasing"
    # The robust conclusions survive every corner; the marginal energy
    # ordering is recorded above but not asserted.
    assert held["accelerators_win_big"]
    assert held["energy_saving_below_speedup"]
    assert held["regan_faster_than_pipelayer"]

