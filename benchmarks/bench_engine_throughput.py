"""Crossbar engine throughput: loop oracle vs vectorized backend.

The vectorized backend's whole reason to exist is making full-datapath
simulation (``fast_ideal=False``) usable at training scale while
staying bit-identical to the loop oracle.  This benchmark measures
MVM-batches/s for both backends on the acceptance workload — a 256x256
layer, batch 32, 8-bit weighted-spike drive — plus a noisy-device
variant where the per-sub-cycle ADC/noise physics cannot be collapsed
and both backends pay the same arithmetic.

Acceptance: vectorized >= 10x loop on the ideal-device workload.
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from benchmarks._common import format_table, record, record_json
from repro.bench import register
from repro.telemetry import Collector
from repro.telemetry import bench_document as _bench_document
from repro.xbar.device import PIPELAYER_DEVICE
from repro.xbar.engine import CrossbarEngine, CrossbarEngineConfig

ROWS = COLS = 256
BATCH = 32
SEED = 1

NOISY = replace(PIPELAYER_DEVICE, program_noise=0.05, read_noise=0.02)


def _time_backend(backend: str, device, reps: int):
    """(Seconds per MVM-batch, telemetry counters) for one backend."""
    rng = np.random.default_rng(0)
    weights = rng.normal(size=(ROWS, COLS))
    activations = rng.normal(size=(BATCH, ROWS))
    config = CrossbarEngineConfig(
        fast_ideal=False, backend=backend, device=device
    )
    collector = Collector(record_spans=False)
    engine = CrossbarEngine(config, rng=SEED, collector=collector)
    engine.prepare(weights)
    engine.matmul(activations)  # warm the per-prepare caches
    start = time.perf_counter()
    for _ in range(reps):
        engine.matmul(activations)
    seconds = (time.perf_counter() - start) / reps
    counters = {
        path: value
        for path, value in collector.counters().items()
        if "tile[" not in path
    }
    return seconds, counters


@register(suite="quick")
def bench_engine_throughput():
    rows = []
    speedups = {}
    documents = []
    for label, device, loop_reps, vec_reps in (
        ("ideal", PIPELAYER_DEVICE, 3, 20),
        ("noisy", NOISY, 2, 3),
    ):
        loop_s, loop_counters = _time_backend("loop", device, loop_reps)
        vec_s, vec_counters = _time_backend("vectorized", device, vec_reps)
        speedups[label] = loop_s / vec_s
        for backend, seconds, counters in (
            ("loop", loop_s, loop_counters),
            ("vectorized", vec_s, vec_counters),
        ):
            rows.append(
                (
                    label,
                    backend,
                    seconds * 1e3,
                    1.0 / seconds,
                    BATCH / seconds,
                )
            )
            # Deterministic per-run totals (reps are fixed per backend,
            # so these are exact across same-platform reruns); wall
            # time and MVMs/s stay outside `metrics` so the baseline
            # gate never bands a wall-clock number.
            # Exact-leaf match: the energy event counters
            # (static.array_subcycles, ...) share the suffix but are
            # separate series priced by the attribution layer.
            metrics = {
                short: float(
                    sum(
                        value
                        for path, value in counters.items()
                        if path == short or path.endswith("/" + short)
                    )
                )
                for short in ("mvm_calls", "macs", "subcycles",
                              "adc_conversions")
            }
            documents.append(
                _bench_document(
                    bench="engine_throughput",
                    workload=f"{ROWS}x{COLS}-{label}",
                    backend=backend,
                    wall_time_s=seconds,
                    counters=counters,
                    extra={
                        "batch": BATCH,
                        "mvms_per_s": BATCH / seconds,
                        "metrics": metrics,
                    },
                )
            )
    lines = [
        f"Crossbar engine throughput, {ROWS}x{COLS} layer, batch {BATCH}, "
        "8-bit spike drive, fast_ideal=False:",
        "",
    ]
    lines += format_table(
        ["device", "backend", "ms/call", "MVM-batches/s", "MVMs/s"], rows
    )
    lines += [
        "",
        f"ideal-device speedup: {speedups['ideal']:.1f}x "
        "(transparent-ADC collapse; bit-identical to the loop oracle)",
        f"noisy-device speedup: {speedups['noisy']:.1f}x "
        "(per-sub-cycle noise + ADC physics cannot be collapsed)",
    ]
    record("engine_throughput", lines)
    record_json("engine_throughput", documents)
    # The acceptance bar for the vectorized backend.
    assert speedups["ideal"] >= 10.0, speedups
