"""Table I energy savings reproduced from live telemetry counters.

The analytic estimator prices closed-form operation counts; this
benchmark derives the same Table I energy-saving ratios from *event
counters* — array reads, DAC line fires, ADC samples, cell writes,
buffer bits, static occupancy — priced through
:func:`repro.arch.components.event_costs`, with the analytic path as
the consistency oracle (``measured_table1`` raises if the two
disagree beyond :data:`MEASURED_CONSISTENCY_RTOL`).

It also attributes a live crossbar-engine inference run and asserts
the engine's event counters — and therefore the attributed joules —
are bit-identical between the loop and vectorized backends, and that
the attributed MVM-path energy equals ``array_reads x
array_subcycle_energy`` exactly.
"""

import time

from benchmarks._common import format_table, record, record_json
from repro.arch.components import array_subcycle_energy, event_costs
from repro.arch.params import DEFAULT_TECH
from repro.bench import register
from repro.core.estimator import (
    PAPER_PIPELAYER_ENERGY,
    PAPER_REGAN_ENERGY,
    measured_table1,
)
from repro.telemetry import Collector, attribute_energy
from repro.telemetry import bench_document as _bench_document


def _engine_counters(backend):
    """Event counters of one full-path mlp inference run."""
    from repro.api import Simulator
    from repro.xbar.engine import CrossbarEngineConfig

    collector = Collector(record_spans=False)
    simulator = Simulator.from_workload(
        "mlp",
        engine_config=CrossbarEngineConfig(
            backend=backend, fast_ideal=False
        ),
        seed=0,
        collector=collector,
    )
    simulator.run_inference(count=8)
    return collector.counters()


def compute():
    measured = measured_table1(batch=32)
    return measured, _engine_counters("loop"), _engine_counters("vectorized")


@register(suite="quick")
def bench_energy_attribution(benchmark):
    start = time.perf_counter()
    measured, loop_counters, vectorized_counters = benchmark(compute)
    wall_time_s = time.perf_counter() - start

    # The engine's event stream is part of the backend bit-identity
    # contract, so the attributed joules cannot depend on the backend.
    backends_identical = loop_counters == vectorized_counters
    costs = event_costs(DEFAULT_TECH)
    engine_report = attribute_energy(
        loop_counters, costs, source_name="mlp inference (loop)"
    )
    engine_totals = engine_report["totals"]

    pipelayer = measured["rows"]["PipeLayer"]
    regan = measured["rows"]["ReGAN"]
    rows = [
        (
            "PipeLayer",
            pipelayer["energy_saving_geomean"],
            pipelayer["analytic_energy_saving_geomean"],
            float(PAPER_PIPELAYER_ENERGY),
        ),
        (
            "ReGAN",
            regan["energy_saving_geomean"],
            regan["analytic_energy_saving_geomean"],
            float(PAPER_REGAN_ENERGY),
        ),
    ]
    lines = format_table(
        ("row", "measured_x", "analytic_x", "paper_x"), rows
    )
    lines.append("")
    lines.append(
        f"worst counter-vs-analytic consistency: "
        f"{measured['worst_consistency']:.3e} "
        f"(gate {measured['consistency_rtol']:g})"
    )
    record("energy_attribution", lines)
    record_json(
        "energy_attribution",
        [
            _bench_document(
                bench="energy_attribution",
                workload="table1",
                backend="measured",
                wall_time_s=wall_time_s,
                counters={},
                extra={
                    "metrics": {
                        "pipelayer_energy_saving_geomean": pipelayer[
                            "energy_saving_geomean"
                        ],
                        "regan_energy_saving_geomean": regan[
                            "energy_saving_geomean"
                        ],
                        "pipelayer_ratio_to_analytic": (
                            pipelayer["energy_saving_geomean"]
                            / pipelayer["analytic_energy_saving_geomean"]
                        ),
                        "regan_ratio_to_analytic": (
                            regan["energy_saving_geomean"]
                            / regan["analytic_energy_saving_geomean"]
                        ),
                        "consistency_within_gate": 1.0,
                    }
                },
            ),
            _bench_document(
                bench="energy_attribution",
                workload="mlp",
                backend="engine",
                wall_time_s=wall_time_s,
                counters={},
                extra={
                    "metrics": {
                        "backends_identical": float(backends_identical),
                        "total_joules": engine_totals["total_joules"],
                        "average_watts": engine_totals["average_watts"],
                    }
                },
            ),
        ],
    )

    # measured_table1 already gated counter-vs-analytic consistency;
    # these pin the Table I regime (same loose bands as the analytic
    # Table I benches — the model does not hit the paper's exact
    # averages, and says so in EXPERIMENTS.md).
    assert backends_identical
    assert (
        0.25
        < pipelayer["energy_saving_geomean"] / PAPER_PIPELAYER_ENERGY
        < 4
    )
    assert regan["energy_saving_geomean"] > 5
    assert (
        regan["energy_saving_geomean"]
        > pipelayer["energy_saving_geomean"]
    )

    # Attribution exactness on the live engine: the MVM-path energy
    # (array + ADC + driver) of the counters equals reads priced at
    # the closed-form per-subcycle energy.
    from repro.xbar.engine import CrossbarEngineConfig

    reads = sum(
        value
        for path, value in loop_counters.items()
        if path.endswith("/array_reads")
    )
    assert reads > 0
    components = engine_totals["components"]
    mvm_joules = (
        components["array"] + components["adc"] + components["driver"]
    )
    geometry = CrossbarEngineConfig()
    expected = reads * array_subcycle_energy(
        DEFAULT_TECH, geometry.array_rows, geometry.array_cols
    )
    assert abs(mvm_joules - expected) <= 1e-9 * expected
    assert engine_totals["simulated_seconds"] > 0
    assert engine_totals["average_watts"] > 0
