"""Fig. 7 — FCNN forward/backward mapping equivalence and cost.

Fig. 7(a): a fractional-strided convolution equals an ordinary
convolution over the zero-inserted input; Fig. 7(b): its error
back-propagation is a strided convolution.  The benchmark verifies both
equivalences numerically on DCGAN-shaped layers, measures the
zero-insertion formulation's runtime, and records the wasted-drive
fraction (zeros in the extended map) per generator stage — the cost
ReGAN accepts to reuse convolution hardware.
"""

import time

import numpy as np

from benchmarks._common import format_table, record, record_json
from repro.bench import register
from repro.telemetry import bench_document as _bench_document
from repro.core.fcnn import (
    fcnn_backward_strided_conv,
    fcnn_forward_zero_insertion,
    zero_fraction,
)
from repro.nn.layers import FractionalStridedConv2D

# DCGAN generator stages for a 64x64 model (channels reduced 4x so the
# functional check stays fast; geometry is what matters here).
STAGES = [
    # (cin, cout, size) with k=4, s=2, p=1
    (256, 128, 4),
    (128, 64, 8),
    (64, 32, 16),
    (32, 3, 32),
]


def forward_all(layers, inputs_list):
    return [
        fcnn_forward_zero_insertion(inputs, layer.weight.value, 2, 1)
        for layer, inputs in zip(layers, inputs_list)
    ]


@register(suite="quick")
def bench_fig7_fcnn(benchmark):
    rng = np.random.default_rng(0)
    layers, inputs_list, rows = [], [], []
    for cin, cout, size in STAGES:
        layer = FractionalStridedConv2D(
            cin, cout, 4, stride=2, pad=1, use_bias=False, rng=1
        )
        inputs = rng.normal(size=(2, cin, size, size))
        layers.append(layer)
        inputs_list.append(inputs)

        reference = layer.forward(inputs)
        via_zeros = fcnn_forward_zero_insertion(
            inputs, layer.weight.value, 2, 1
        )
        forward_err = float(np.max(np.abs(reference - via_zeros)))

        grad = rng.normal(size=reference.shape)
        layer.zero_grad()
        back_reference = layer.backward(grad)
        back_conv = fcnn_backward_strided_conv(
            grad, layer.weight.value, 2, 1
        )
        backward_err = float(np.max(np.abs(back_reference - back_conv)))
        rows.append(
            (
                f"{cin}->{cout}@{size}",
                forward_err,
                backward_err,
                zero_fraction((size, size), 4, 2, 1),
            )
        )

    start = time.perf_counter()
    benchmark(forward_all, layers, inputs_list)
    wall_time_s = time.perf_counter() - start

    lines = format_table(
        ("stage", "fwd_max_err", "bwd_max_err", "zero_frac"), rows
    )
    record("fig7_fcnn", lines)
    record_json(
        "fig7_fcnn",
        _bench_document(
            bench="fig7_fcnn",
            workload="fig7",
            backend="analytic",
            wall_time_s=wall_time_s,
            counters={},
            extra={
                # Zero fractions are closed-form geometry; the float
                # equivalence errors stay out of `metrics` (they sit at
                # machine epsilon, where relative bands are meaningless).
                "metrics": {
                    f"zero_frac_{size}": zero_fraction((size, size), 4, 2, 1)
                    for _, _, size in STAGES
                }
            },
        ),
    )

    # Both identities hold to numerical precision on every stage.
    assert all(row[1] < 1e-9 and row[2] < 1e-9 for row in rows)
    # Stride-2 zero insertion wastes the expected ~70-80% of drive.
    assert all(0.6 < row[3] < 0.9 for row in rows)
