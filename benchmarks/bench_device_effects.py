"""A3/A4 — device-effect studies implied by the training-on-ReRAM claim.

Three sweeps:

* **Noise-aware training** (A3): PipeLayer trains on the arrays, so a
  network can adapt to its own device's fixed defects.  Measured as
  clean-then-deploy vs crossbar-in-the-loop accuracy on a device with
  persistent stuck cells.
* **IR drop vs array size** (A4): wire resistance degrades far cells;
  smaller arrays (shorter wires) trade tiling overhead for fidelity —
  the physical argument behind the 128x128 design point.
* **Endurance lifetime** (A4): each batch rewrites every weight cell;
  lifetime under continuous training for the PipeLayer suite across
  endurance ratings.
"""

import time

import numpy as np
import pytest

from benchmarks._common import format_table, record, record_json
from repro.arch import training_lifetime
from repro.bench import register
from repro.telemetry import bench_document as _bench_document
from repro.core import PipeLayerModel
from repro.core.training_sim import compare_noise_aware
from repro.datasets import make_train_test
from repro.nn import SGD, build_mlp
from repro.workloads import pipelayer_suite
from repro.xbar import CrossbarEngine, CrossbarEngineConfig, DeviceConfig


def _small_data():
    x_train, y_train, x_test, y_test = make_train_test(
        300, 100, noise=0.1, rng=7
    )

    def shrink(images):
        return images[:, :, ::2, ::2].reshape(len(images), -1)

    return shrink(x_train), y_train, shrink(x_test), y_test


def noise_aware_rows():
    x_train, y_train, x_test, y_test = _small_data()
    rows = []
    for stuck in (0.01, 0.03):
        device = DeviceConfig(
            stuck_on_rate=stuck, stuck_off_rate=stuck, program_noise=0.02
        )
        config = CrossbarEngineConfig(
            array_rows=64, array_cols=64, device=device, fast_linear=True
        )
        comparison = compare_noise_aware(
            lambda: build_mlp(196, (32,), 10, rng=5),
            lambda net: SGD(net.parameters(), lr=0.05, momentum=0.9),
            (x_train, y_train),
            (x_test, y_test),
            config,
            epochs=4,
            batch_size=32,
        )
        rows.append(
            (
                f"{stuck:.0%}+{stuck:.0%}",
                comparison.float_accuracy,
                comparison.clean_then_deploy_accuracy,
                comparison.in_loop_accuracy,
                comparison.recovery,
            )
        )
    return rows


def ir_drop_rows():
    rng = np.random.default_rng(0)
    weights = rng.normal(size=(256, 64))
    activations = rng.normal(size=(8, 256))
    exact = activations @ weights
    rows = []
    for array_size in (32, 64, 128):
        for wire_resistance in (0.0, 1.0, 5.0):
            config = CrossbarEngineConfig(
                array_rows=array_size,
                array_cols=array_size,
                device=DeviceConfig(wire_resistance=wire_resistance),
                fast_ideal=False,
            )
            engine = CrossbarEngine(config, rng=1)
            engine.prepare(weights)
            out = engine.matmul(activations)
            error = float(
                np.mean(np.abs(out - exact)) / np.mean(np.abs(exact))
            )
            rows.append((array_size, wire_resistance, error))
    return rows


def endurance_rows():
    rows = []
    for spec in pipelayer_suite():
        model = PipeLayerModel(spec, array_budget=262144)
        for endurance in (1e6, 1e9, 1e12):
            report = training_lifetime(model, batch=32, endurance=endurance)
            rows.append(
                (
                    spec.name,
                    f"{endurance:.0e}",
                    report.lifetime_examples,
                    report.lifetime_days,
                )
            )
    return rows


@register(suite="quick")
def bench_device_effects(benchmark):
    start = time.perf_counter()
    ir_rows = benchmark(ir_drop_rows)
    na_rows = noise_aware_rows()
    end_rows = endurance_rows()
    wall_time_s = time.perf_counter() - start

    lines = ["[noise-aware training: fixed stuck cells]"]
    lines += format_table(
        ("stuck", "float", "deploy_after", "in_loop", "recovered"), na_rows
    )
    lines.append("\n[IR drop: mean rel error vs array size]")
    lines += format_table(("array", "r_wire", "rel_err"), ir_rows)
    lines.append("\n[endurance lifetime, B=32 continuous training]")
    lines += format_table(
        ("network", "endurance", "examples", "days"), end_rows
    )
    record("device_effects", lines)
    err_by_size = {
        size: error
        for size, wire_resistance, error in ir_rows
        if wire_resistance == 5.0
    }
    record_json(
        "device_effects",
        _bench_document(
            bench="device_effects",
            workload="device_effects",
            backend="sim",
            wall_time_s=wall_time_s,
            counters={},
            extra={
                "metrics": {
                    "in_loop_accuracy_heavy": na_rows[-1][3],
                    "recovery_heavy": na_rows[-1][4],
                    "ir_rel_err_32_r5": err_by_size[32],
                    "ir_rel_err_128_r5": err_by_size[128],
                    "lifetime_examples_1e9": end_rows[1][2],
                }
            },
        ),
    )

    # Noise-aware training recovers accuracy at the heavier fault rate.
    heavy = na_rows[-1]
    assert heavy[4] > 0.05
    # IR drop: error grows with wire resistance at fixed array size...
    by_size = {}
    for array_size, wire_resistance, error in ir_rows:
        by_size.setdefault(array_size, []).append(error)
    for errors in by_size.values():
        assert errors[0] <= errors[1] <= errors[2]
    # ...and shrinking the array reduces it at fixed resistance.
    err_at_5 = {
        size: error
        for size, wire_resistance, error in ir_rows
        if wire_resistance == 5.0
    }
    assert err_at_5[32] < err_at_5[128]
    # Endurance: lifetime scales linearly with the rating.
    assert end_rows[1][2] == pytest.approx(end_rows[0][2] * 1000)

