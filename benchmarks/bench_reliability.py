"""R1 — accuracy vs fault rate (the reliability campaign curve).

The crossbar fabric is only useful if the mapped network tolerates the
device's failure modes.  This benchmark trains the toy MLP golden
reference on the float path, then sweeps stuck-cell and transient
read-upset rates through :func:`repro.reliability.run_campaign`,
recording the accuracy-degradation curve for each axis.  The whole
campaign derives from one seed, so the recorded curve is reproducible
bit for bit.
"""

import time

from benchmarks._common import format_table, record, record_json
from repro.bench import register
from repro.reliability import run_campaign
from repro.telemetry import Collector
from repro.telemetry import bench_document as _bench_document

STUCK_RATES = (0.0, 0.002, 0.01, 0.05, 0.2)
UPSET_RATES = (0.0, 0.001, 0.01, 0.05, 0.2)
CAMPAIGN = dict(
    workload="mlp",
    seed=7,
    count=64,
    batch=32,
    train_epochs=16,
    train_count=512,
    include_tiles=False,
)


def run_axis(axis, rates, collector=None):
    return run_campaign(
        axis=axis, rates=rates, collector=collector, **CAMPAIGN
    )


def _run_axis_timed(axis, rates):
    """(report, bench document) for one recorded campaign axis."""
    collector = Collector(record_spans=False)
    start = time.perf_counter()
    report = run_axis(axis, rates, collector=collector)
    wall_time_s = time.perf_counter() - start
    counters = {
        path: value
        for path, value in collector.counters().items()
        if "tile[" not in path
    }
    # Accuracy/mismatch numbers are bit-reproducible (one master seed
    # drives the whole campaign), so they are baseline-gated metrics.
    heaviest = report["scenarios"][-1]
    document = _bench_document(
        bench="reliability",
        workload=CAMPAIGN["workload"],
        backend=report["backend"],
        wall_time_s=wall_time_s,
        counters=counters,
        extra={
            "axis": axis,
            "rates": list(rates),
            "metrics": {
                f"{axis}_baseline_accuracy": report["baseline_accuracy"],
                f"{axis}_heaviest_accuracy": heaviest["accuracy"],
                f"{axis}_heaviest_mismatch": heaviest["mismatch_rate"],
            },
        },
    )
    return report, document


@register(suite="quick")
def bench_reliability(benchmark):
    stuck, stuck_doc = _run_axis_timed("stuck", STUCK_RATES)
    upset, upset_doc = _run_axis_timed("upset", UPSET_RATES)
    record_json("reliability", [stuck_doc, upset_doc])

    benchmark(run_axis, "stuck", (0.0, 0.05))

    rows = []
    for report in (stuck, upset):
        for scenario in report["scenarios"]:
            rows.append(
                (
                    scenario["name"],
                    scenario["accuracy"],
                    scenario["mismatch_rate"],
                    scenario["logit_rms_error"],
                )
            )
    lines = [
        f"golden (float) accuracy: {stuck['baseline_accuracy']:.4g}",
        "",
    ]
    lines += format_table(
        ("scenario", "accuracy", "mismatch", "logit_rms"), rows
    )
    record("reliability", lines)

    # The golden reference actually trained (chance is 0.25 for the
    # 4-class toy set), and the quantization-only floor stays close.
    assert stuck["baseline_accuracy"] > 0.5
    by_name = {
        scenario["name"]: scenario
        for report in (stuck, upset)
        for scenario in report["scenarios"]
    }
    assert by_name["stuck=0"]["accuracy"] >= stuck["baseline_accuracy"] - 0.1
    # The fault-free points inject nothing beyond quantization.
    for name in ("stuck=0", "upset=0"):
        assert by_name[name]["logit_rms_error"] < 0.2

    # Faults monotonically increase output damage along each axis, and
    # the heavy end of the sweep visibly degrades accuracy.
    for report in (stuck, upset):
        errors = [s["logit_rms_error"] for s in report["scenarios"]]
        assert errors == sorted(errors), report["axis"]
    assert by_name["stuck=0.2"]["accuracy"] <= by_name["stuck=0"]["accuracy"]
    assert by_name["stuck=0.2"]["mismatch_rate"] > 0.0
    assert by_name["upset=0.2"]["mismatch_rate"] > 0.0
