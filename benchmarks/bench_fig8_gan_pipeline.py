"""Fig. 8 — the GAN training pipeline: pipelined vs unpipelined cycles.

Per the paper: updating D takes ``(2L_D + B) + (L_G + 2L_D + B) + 1``
pipelined cycles vs ``(4L_D + L_G + 2)B`` unpipelined; updating G takes
``2L_G + 2L_D + B + 1`` vs ``(2L_G + 2L_D + 1)B``.  The benchmark
sweeps batch size for the CelebA-sized DCGAN (L_D = L_G = 5) and
records the cycle counts and speedups.
"""

import time

from benchmarks._common import format_table, record, record_json
from repro.bench import register
from repro.telemetry import bench_document as _bench_document
from repro.core.gan_pipeline import (
    d_training_cycles_pipelined,
    d_training_cycles_unpipelined,
    g_training_cycles_pipelined,
    g_training_cycles_unpipelined,
)

L_D = L_G = 5  # 64x64 DCGAN depth (CelebA / LSUN)
BATCHES = [1, 4, 16, 32, 64, 128]


def sweep():
    rows = []
    for batch in BATCHES:
        d_pipe = d_training_cycles_pipelined(L_D, L_G, batch)
        d_seq = d_training_cycles_unpipelined(L_D, L_G, batch)
        g_pipe = g_training_cycles_pipelined(L_D, L_G, batch)
        g_seq = g_training_cycles_unpipelined(L_D, L_G, batch)
        rows.append(
            (batch, d_seq, d_pipe, d_seq / d_pipe, g_seq, g_pipe,
             g_seq / g_pipe)
        )
    return rows


@register(suite="quick")
def bench_fig8_gan_pipeline(benchmark):
    start = time.perf_counter()
    rows = benchmark(sweep)
    wall_time_s = time.perf_counter() - start
    lines = format_table(
        ("B", "D_seq", "D_pipe", "D_speedup", "G_seq", "G_pipe",
         "G_speedup"),
        rows,
    )
    record("fig8_gan_pipeline", lines)
    by_batch = {row[0]: row for row in rows}
    record_json(
        "fig8_gan_pipeline",
        _bench_document(
            bench="fig8_gan_pipeline",
            workload="fig8",
            backend="analytic",
            wall_time_s=wall_time_s,
            counters={},
            extra={
                "metrics": {
                    "d_pipelined_cycles_b32": by_batch[32][2],
                    "g_pipelined_cycles_b32": by_batch[32][5],
                    "d_speedup_b128": by_batch[128][3],
                    "g_speedup_b128": by_batch[128][6],
                }
            },
        ),
    )

    for batch, d_seq, d_pipe, d_speedup, g_seq, g_pipe, g_speedup in rows:
        # Exact paper formulas.
        assert d_pipe == (2 * L_D + batch) + (L_G + 2 * L_D + batch) + 1
        assert g_pipe == 2 * L_G + 2 * L_D + batch + 1
        assert d_seq == (4 * L_D + L_G + 2) * batch + 1
        assert g_seq == (2 * L_G + 2 * L_D + 1) * batch + 1
        assert d_pipe <= d_seq and g_pipe <= g_seq
    # Speedups grow with batch and approach the sweep-depth limits.
    d_speedups = [row[3] for row in rows]
    g_speedups = [row[6] for row in rows]
    assert d_speedups == sorted(d_speedups)
    assert g_speedups == sorted(g_speedups)
    assert g_speedups[-1] > 0.7 * (2 * L_G + 2 * L_D + 1)
