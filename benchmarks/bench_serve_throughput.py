"""Job-server throughput: coalesced + cached serving vs naive runs.

Drives the ``repro.serve`` stack in drain mode (``JobServer.run_all``)
with a deterministic multi-tenant inference mix, and compares against
the naive baseline every tenant would otherwise run: a fresh
``Simulator`` deployment per request.  The server amortizes array
programming through the programmed-state cache and collapses
compatible requests into coalesced batched evaluations — while every
per-job logits digest stays byte-identical to the naive path (asserted
here; that is the serving contract, not a tolerance).

Recorded metrics are scheduling/cache tallies plus the deterministic
half of the latency telemetry: histogram observation counts (one
queue-wait and one end-to-end sample per drained job, exactly) and the
coalesce batch-size percentiles, which are pure functions of the
schedule.  Wall time, jobs/s, and the *values* of the ``*_seconds``
histograms stay outside ``metrics`` so the baseline gate never bands
a wall-clock number — the latency percentile table is recorded in the
document's ``latency`` extra instead.
"""

from __future__ import annotations

import time

from benchmarks._common import format_table, record, record_json
from repro.api import InferenceJob, Simulator
from repro.bench import register
from repro.serve.server import ServerConfig, call_on, running_server
from repro.telemetry import Collector, histogram_percentiles, latency_summary
from repro.telemetry import bench_document as _bench_document
from repro.xbar.engine import weights_hash

JOBS = 16
SEED = 3


def _jobs():
    """A deterministic two-model, three-tenant inference mix."""
    return [
        InferenceJob(
            workload="mlp",
            seed=SEED + (index % 2),
            count=16,
            batch=8,
            input_seed=None if index % 4 == 0 else 50 + index % 8,
            tenant=f"tenant{index % 3}",
        )
        for index in range(JOBS)
    ]


@register(suite="quick")
def bench_serve_throughput():
    jobs = _jobs()

    # Naive baseline: each request deploys its own simulator.
    start = time.perf_counter()
    naive_digests = []
    for job in jobs:
        sim = Simulator.from_workload(
            job.workload,
            engine_config=ServerConfig().engine_config,
            seed=job.seed,
        )
        naive_digests.append(weights_hash(sim.run(job).outputs))
    naive_s = time.perf_counter() - start

    # Served: one drain-mode plan over the same mix.
    collector = Collector()
    config = ServerConfig(workers=2)
    with running_server(config, collector=collector) as (server, _):
        start = time.perf_counter()
        reports = call_on(server, server.run_all(jobs))
        served_s = time.perf_counter() - start
    served_digests = [
        report["result"]["outputs_sha256"] for report in reports
    ]
    # The serving contract: batching/caching changes throughput only.
    assert served_digests == naive_digests
    assert all(report["status"] == "done" for report in reports)

    counters = collector.counters()
    histograms = collector.histograms()
    batch_size = histograms["serve/coalesce/batch_size_jobs"]
    batch_percentiles = histogram_percentiles(batch_size)
    metrics = {
        "jobs_done": float(counters.get("serve/jobs.done", 0)),
        "cache_hits": float(counters.get("serve/cache/hits", 0)),
        "cache_misses": float(counters.get("serve/cache/misses", 0)),
        "coalesced_batches": float(
            counters.get("serve/coalesced.batches", 0)
        ),
        "coalesced_jobs": float(counters.get("serve/coalesced.jobs", 0)),
        "coalesced_inputs": float(
            counters.get("serve/coalesced.inputs", 0)
        ),
        # Deterministic latency telemetry: exactly one queue-wait and
        # one end-to-end observation per drained job, and batch-size
        # percentiles that are a pure function of the coalesce plan.
        "queue_wait_observations": float(
            histograms["serve/latency/queue_wait_seconds"]["count"]
        ),
        "e2e_observations": float(
            histograms["serve/latency/e2e_seconds"]["count"]
        ),
        "batch_size_observations": float(batch_size["count"]),
        "batch_size_p50_jobs": batch_percentiles["p50"],
        "batch_size_p95_jobs": batch_percentiles["p95"],
        "batch_size_p99_jobs": batch_percentiles["p99"],
    }
    latency = latency_summary(
        {
            path: view
            for path, view in histograms.items()
            if "tenant[" not in path
        }
    )
    speedup = naive_s / served_s
    rows = [
        ("naive", naive_s * 1e3, JOBS / naive_s, "-"),
        ("served", served_s * 1e3, JOBS / served_s, f"{speedup:.1f}x"),
    ]
    lines = [
        f"Serve throughput, {JOBS} inference jobs (2 models, 3 "
        "tenants), drain mode, 2 workers:",
        "",
    ]
    lines += format_table(
        ["path", "ms total", "jobs/s", "speedup"], rows
    )
    lines += [
        "",
        f"cache: {int(metrics['cache_misses'])} deploys for "
        f"{JOBS} jobs ({int(metrics['cache_hits'])} cache hits); "
        f"{int(metrics['coalesced_jobs'])} jobs coalesced into "
        f"{int(metrics['coalesced_batches'])} batched evaluations",
        "per-job logits digests byte-identical to the naive path",
        "",
        "served latency percentiles (wall clock; not baseline-gated):",
    ]
    lines += format_table(
        ["histogram", "n", "p50 ms", "p95 ms", "p99 ms"],
        [
            (
                row["path"],
                row["count"],
                row["p50"] * 1e3,
                row["p95"] * 1e3,
                row["p99"] * 1e3,
            )
            for row in latency
        ],
    )
    record("serve_throughput", lines)
    record_json(
        "serve_throughput",
        _bench_document(
            bench="serve_throughput",
            workload="mlp-mix",
            backend="vectorized",
            wall_time_s=served_s,
            counters={
                path: value
                for path, value in counters.items()
                if "tenant[" not in path
            },
            extra={
                "jobs": JOBS,
                "jobs_per_s": JOBS / served_s,
                "naive_wall_time_s": naive_s,
                "speedup_vs_naive": speedup,
                "metrics": metrics,
                "latency": latency,
            },
        ),
    )
