"""Telemetry overhead guard: live collector vs ``NULL_COLLECTOR``.

The observability stack (counters, spans, latency histograms) must be
free to leave enabled: a live :class:`~repro.telemetry.Collector`
may cost bookkeeping time, but it must never perturb a simulation —
the crossbar outputs of an instrumented run are required to be
bit-identical to an uninstrumented one (asserted here; that is the
telemetry contract, not a tolerance).

The gated metrics are the deterministic halves of that contract:
``digests_identical`` (1.0 or the bench fails first) and the exact
histogram observation count of the instrumented run.  The measured
overhead ratio is wall clock, so it stays in the document's extras —
recorded for trend-watching, never baseline-banded.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks._common import format_table, record, record_json
from repro.bench import register
from repro.telemetry import NULL_COLLECTOR, Collector, TelemetryLike
from repro.telemetry import bench_document as _bench_document
from repro.xbar.device import PIPELAYER_DEVICE
from repro.xbar.engine import (
    CrossbarEngine,
    CrossbarEngineConfig,
    weights_hash,
)

ROWS = COLS = 128
BATCH = 16
REPS = 8
SEED = 7


def _run(collector: TelemetryLike):
    """(Output digest, seconds per matmul) for one collector choice."""
    rng = np.random.default_rng(0)
    weights = rng.normal(size=(ROWS, COLS))
    activations = rng.normal(size=(BATCH, ROWS))
    config = CrossbarEngineConfig(
        fast_ideal=False,
        backend="vectorized",
        device=PIPELAYER_DEVICE,
    )
    engine = CrossbarEngine(config, rng=SEED, collector=collector)
    with collector.timed("prepare_seconds"):
        engine.prepare(weights)
    engine.matmul(activations)  # warm the per-prepare caches
    outputs = None
    start = time.perf_counter()
    for _ in range(REPS):
        with collector.timed("matmul_seconds"):
            outputs = engine.matmul(activations)
    seconds = (time.perf_counter() - start) / REPS
    return weights_hash(outputs), seconds


@register(suite="quick")
def bench_telemetry_overhead():
    live = Collector()
    live_digest, live_s = _run(live)
    null_digest, null_s = _run(NULL_COLLECTOR)

    # The contract: instrumentation observes, it never perturbs.
    assert live_digest == null_digest

    overhead = live_s / null_s if null_s else 1.0
    matmul_observations = live.histograms()["matmul_seconds"]["count"]
    metrics = {
        "digests_identical": 1.0,
        "matmul_observations": float(matmul_observations),
    }
    rows = [
        ("NULL_COLLECTOR", null_s * 1e3, "-"),
        ("live collector", live_s * 1e3, f"{overhead:.2f}x"),
    ]
    lines = [
        f"Telemetry overhead, {ROWS}x{COLS} vectorized full-datapath "
        f"matmul, batch {BATCH}, {REPS} reps:",
        "",
    ]
    lines += format_table(["collector", "ms/matmul", "overhead"], rows)
    lines += [
        "",
        "outputs bit-identical with telemetry enabled "
        f"(digest {live_digest[:12]}...)",
    ]
    record("telemetry_overhead", lines)
    record_json(
        "telemetry_overhead",
        _bench_document(
            bench="telemetry_overhead",
            workload="matmul-128",
            backend="vectorized",
            wall_time_s=live_s * REPS + null_s * REPS,
            counters={
                path: value
                for path, value in live.counters().items()
                if "tile[" not in path
            },
            extra={
                "metrics": metrics,
                "overhead_ratio": overhead,
                "null_collector_s_per_matmul": null_s,
                "live_collector_s_per_matmul": live_s,
            },
        ),
    )
