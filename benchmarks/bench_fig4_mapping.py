"""Fig. 4 — naive vs balanced data mapping, duplication sweep.

The paper's worked example: a 114x114x128 -> 112x112x256 convolution
with 3x3 kernels lowers to a 1152x256 matrix; the naive scheme takes
12544 cycles per image, the balanced scheme with X duplicated copies
takes ceil(12544 / X) passes at an array cost proportional to X
("a good trade-off ... requires a carefully chosen X"; the figure uses
X = 256).  The benchmark sweeps X over the paper's range and records
the passes-vs-arrays trade-off curve.
"""

import time

from benchmarks._common import format_table, record, record_json
from repro.bench import register
from repro.core.mapping import balanced_mapping, naive_mapping
from repro.telemetry import bench_document as _bench_document
from repro.workloads import FIG4_EXAMPLE

X_SWEEP = [1, 4, 16, 64, 256, 1024, 4096, 12544]


def sweep():
    rows = []
    for duplication in X_SWEEP:
        mapping = balanced_mapping(FIG4_EXAMPLE, duplication)
        rows.append(
            (
                duplication,
                mapping.passes_per_image,
                mapping.total_arrays,
                mapping.cells / 1e6,
            )
        )
    return rows


@register(suite="quick")
def bench_fig4_mapping(benchmark):
    start = time.perf_counter()
    rows = benchmark(sweep)
    wall_time_s = time.perf_counter() - start
    lines = format_table(
        ("X", "passes/img", "arrays", "Mcells"), rows
    )
    record("fig4_mapping", lines)
    by_x = {row[0]: row for row in rows}
    record_json(
        "fig4_mapping",
        _bench_document(
            bench="fig4_mapping",
            workload="fig4",
            backend="analytic",
            wall_time_s=wall_time_s,
            counters={},
            extra={
                "metrics": {
                    "naive_passes": naive_mapping(
                        FIG4_EXAMPLE
                    ).passes_per_image,
                    "passes_x256": by_x[256][1],
                    "arrays_x256": by_x[256][2],
                    "passes_x12544": by_x[12544][1],
                }
            },
        ),
    )

    by_x = {row[0]: row for row in rows}
    # The paper's anchor points.
    naive = naive_mapping(FIG4_EXAMPLE)
    assert naive.passes_per_image == 12544
    assert by_x[1][1] == 12544          # X=1 == naive
    assert by_x[256][1] == 49           # the figure's example
    assert by_x[12544][1] == 1          # one-cycle, excessive hardware
    # Monotone trade-off: passes fall, arrays rise.
    passes = [row[1] for row in rows]
    arrays = [row[2] for row in rows]
    assert passes == sorted(passes, reverse=True)
    assert arrays == sorted(arrays)
    # Work conservation: passes x X covers all vectors exactly once
    # (within the last partial wave).
    for duplication, passes_per_image, _, _ in rows:
        assert (passes_per_image - 1) * duplication < 12544
        assert passes_per_image * duplication >= 12544
