"""The paper's primary contribution: PipeLayer and ReGAN models.

Data mapping (Fig. 4), inter-layer pipelines (Fig. 5), FCNN mapping
(Fig. 7), GAN training pipelines (Figs. 8-9), the accelerator cost
models behind Table I, and the compiler that runs live networks through
the crossbar simulator.
"""

from repro.core.allocation import (
    AllocationResult,
    BankConfig,
    Placement,
    allocate_banks,
)
from repro.core.compiler import Deployment, deploy_network, spec_from_network
from repro.core.estimator import (
    PAPER_PIPELAYER_ENERGY,
    PAPER_PIPELAYER_SPEEDUP,
    PAPER_REGAN_ENERGY,
    PAPER_REGAN_SPEEDUP,
    PIPELAYER_ARRAY_BUDGET,
    REGAN_ARRAY_BUDGET,
    TableOneRow,
    geometric_mean,
    pipelayer_table1,
    regan_table1,
    table1,
)
from repro.core.fcnn import (
    equivalent_conv_kernel,
    extended_input_shape,
    fcnn_backward_strided_conv,
    fcnn_forward_zero_insertion,
    zero_fraction,
    zero_insertion_padding,
)
from repro.core.gan_pipeline import (
    SCHEME_COSTS,
    SCHEMES,
    SchemeCost,
    d_training_cycles_pipelined,
    d_training_cycles_unpipelined,
    g_training_cycles_pipelined,
    g_training_cycles_unpipelined,
    iteration_cycles,
    iteration_speedup,
    scheme_table,
    sweep_d_fake,
    sweep_d_real,
    sweep_g,
)
from repro.core.mapping import (
    LayerMapping,
    MappingConfig,
    balance_duplication,
    balanced_mapping,
    duplication_for_passes,
    mapping_table,
    naive_mapping,
)
from repro.core.pipelayer import PipeLayerModel, PipeLayerReport
from repro.core.pipeline import (
    PipelineSummary,
    asymptotic_training_speedup,
    inference_cycles_pipelined,
    inference_cycles_sequential,
    training_cycles_per_batch_pipelined,
    training_cycles_pipelined,
    training_cycles_sequential,
    training_speedup,
)
from repro.core.gan_schedule import (
    GanEvent,
    GanScheduleResult,
    simulate_gan_iteration,
    verify_scheme,
)
from repro.core.pipelined_gan import PipelinedGANTrainer, fix_vbn_references
from repro.core.pipelined_trainer import (
    PipelinedTrainer,
    PipelineTickLog,
    group_into_stages,
)
from repro.core.regan import ReGANModel, ReGANReport
from repro.core.trace import (
    occupancy_profile,
    render_gan_schedule,
    render_training_schedule,
)
from repro.core.training_sim import (
    CrossbarTrainingResult,
    NoiseAwareComparison,
    compare_noise_aware,
    train_on_crossbar,
)
from repro.core.schedule import (
    ScheduleEvent,
    ScheduleResult,
    simulate_inference_pipeline,
    simulate_training_pipeline,
    simulate_training_sequential,
)

__all__ = [
    "AllocationResult",
    "BankConfig",
    "Placement",
    "allocate_banks",
    "Deployment",
    "deploy_network",
    "spec_from_network",
    "TableOneRow",
    "geometric_mean",
    "pipelayer_table1",
    "regan_table1",
    "table1",
    "PAPER_PIPELAYER_SPEEDUP",
    "PAPER_PIPELAYER_ENERGY",
    "PAPER_REGAN_SPEEDUP",
    "PAPER_REGAN_ENERGY",
    "PIPELAYER_ARRAY_BUDGET",
    "REGAN_ARRAY_BUDGET",
    "equivalent_conv_kernel",
    "fcnn_forward_zero_insertion",
    "fcnn_backward_strided_conv",
    "extended_input_shape",
    "zero_fraction",
    "zero_insertion_padding",
    "SCHEMES",
    "SCHEME_COSTS",
    "SchemeCost",
    "iteration_cycles",
    "iteration_speedup",
    "scheme_table",
    "sweep_d_real",
    "sweep_d_fake",
    "sweep_g",
    "d_training_cycles_pipelined",
    "d_training_cycles_unpipelined",
    "g_training_cycles_pipelined",
    "g_training_cycles_unpipelined",
    "LayerMapping",
    "MappingConfig",
    "naive_mapping",
    "balanced_mapping",
    "balance_duplication",
    "duplication_for_passes",
    "mapping_table",
    "PipeLayerModel",
    "PipeLayerReport",
    "GanEvent",
    "GanScheduleResult",
    "simulate_gan_iteration",
    "verify_scheme",
    "render_training_schedule",
    "render_gan_schedule",
    "occupancy_profile",
    "CrossbarTrainingResult",
    "NoiseAwareComparison",
    "train_on_crossbar",
    "compare_noise_aware",
    "PipelinedGANTrainer",
    "fix_vbn_references",
    "PipelinedTrainer",
    "PipelineTickLog",
    "group_into_stages",
    "ReGANModel",
    "ReGANReport",
    "PipelineSummary",
    "training_cycles_sequential",
    "training_cycles_pipelined",
    "training_cycles_per_batch_pipelined",
    "inference_cycles_sequential",
    "inference_cycles_pipelined",
    "training_speedup",
    "asymptotic_training_speedup",
    "ScheduleEvent",
    "ScheduleResult",
    "simulate_training_pipeline",
    "simulate_training_sequential",
    "simulate_inference_pipeline",
]
