"""The paper's primary contribution: PipeLayer and ReGAN models.

Data mapping (Fig. 4), inter-layer pipelines (Fig. 5), FCNN mapping
(Fig. 7), GAN training pipelines (Figs. 8-9), the accelerator cost
models behind Table I, and the compiler that runs live networks through
the crossbar simulator.

This package re-exports only the *curated* high-level surface: the
accelerator models, the Table I estimator, the network compiler, and
crossbar-in-the-loop training.  Lower-level building blocks (mapping
arithmetic, pipeline cycle formulas, schedule simulators, trace
rendering, ...) live in their defining submodules — import them from
there (``repro.core.mapping``, ``repro.core.pipeline``, ...).  The
old flat names went through a ``DeprecationWarning`` shim for one
release and are now retired: accessing one raises
:class:`AttributeError` naming the defining submodule to import from.
"""

from __future__ import annotations

from typing import Any

from repro.core.compiler import Deployment, deploy_network, spec_from_network
from repro.core.estimator import (
    PAPER_PIPELAYER_ENERGY,
    PAPER_PIPELAYER_SPEEDUP,
    PAPER_REGAN_ENERGY,
    PAPER_REGAN_SPEEDUP,
    PIPELAYER_ARRAY_BUDGET,
    REGAN_ARRAY_BUDGET,
    TableOneRow,
    geometric_mean,
    pipelayer_table1,
    regan_table1,
    table1,
)
from repro.core.pipelayer import PipeLayerModel, PipeLayerReport
from repro.core.regan import ReGANModel, ReGANReport
from repro.core.training_sim import (
    CrossbarTrainingResult,
    NoiseAwareComparison,
    compare_noise_aware,
    train_on_crossbar,
)

__all__ = [
    "Deployment",
    "deploy_network",
    "spec_from_network",
    "TableOneRow",
    "geometric_mean",
    "pipelayer_table1",
    "regan_table1",
    "table1",
    "PAPER_PIPELAYER_SPEEDUP",
    "PAPER_PIPELAYER_ENERGY",
    "PAPER_REGAN_SPEEDUP",
    "PAPER_REGAN_ENERGY",
    "PIPELAYER_ARRAY_BUDGET",
    "REGAN_ARRAY_BUDGET",
    "PipeLayerModel",
    "PipeLayerReport",
    "ReGANModel",
    "ReGANReport",
    "CrossbarTrainingResult",
    "NoiseAwareComparison",
    "train_on_crossbar",
    "compare_noise_aware",
]

#: Former ``repro.core`` flat exports -> their defining submodule.
#: Retired: these no longer resolve; the table only powers the
#: pointer in the AttributeError (and the API001 linter rule, which
#: parses it to ban such imports in-package).
_RETIRED = {
    # allocation
    "AllocationResult": "repro.core.allocation",
    "BankConfig": "repro.core.allocation",
    "Placement": "repro.core.allocation",
    "allocate_banks": "repro.core.allocation",
    # fcnn
    "equivalent_conv_kernel": "repro.core.fcnn",
    "extended_input_shape": "repro.core.fcnn",
    "fcnn_backward_strided_conv": "repro.core.fcnn",
    "fcnn_forward_zero_insertion": "repro.core.fcnn",
    "zero_fraction": "repro.core.fcnn",
    "zero_insertion_padding": "repro.core.fcnn",
    # gan_pipeline
    "SCHEME_COSTS": "repro.core.gan_pipeline",
    "SCHEMES": "repro.core.gan_pipeline",
    "SchemeCost": "repro.core.gan_pipeline",
    "d_training_cycles_pipelined": "repro.core.gan_pipeline",
    "d_training_cycles_unpipelined": "repro.core.gan_pipeline",
    "g_training_cycles_pipelined": "repro.core.gan_pipeline",
    "g_training_cycles_unpipelined": "repro.core.gan_pipeline",
    "iteration_cycles": "repro.core.gan_pipeline",
    "iteration_speedup": "repro.core.gan_pipeline",
    "scheme_table": "repro.core.gan_pipeline",
    "sweep_d_fake": "repro.core.gan_pipeline",
    "sweep_d_real": "repro.core.gan_pipeline",
    "sweep_g": "repro.core.gan_pipeline",
    # mapping
    "LayerMapping": "repro.core.mapping",
    "MappingConfig": "repro.core.mapping",
    "balance_duplication": "repro.core.mapping",
    "balanced_mapping": "repro.core.mapping",
    "duplication_for_passes": "repro.core.mapping",
    "mapping_table": "repro.core.mapping",
    "naive_mapping": "repro.core.mapping",
    # pipeline
    "PipelineSummary": "repro.core.pipeline",
    "asymptotic_training_speedup": "repro.core.pipeline",
    "inference_cycles_pipelined": "repro.core.pipeline",
    "inference_cycles_sequential": "repro.core.pipeline",
    "training_cycles_per_batch_pipelined": "repro.core.pipeline",
    "training_cycles_pipelined": "repro.core.pipeline",
    "training_cycles_sequential": "repro.core.pipeline",
    "training_speedup": "repro.core.pipeline",
    # gan_schedule
    "GanEvent": "repro.core.gan_schedule",
    "GanScheduleResult": "repro.core.gan_schedule",
    "simulate_gan_iteration": "repro.core.gan_schedule",
    "verify_scheme": "repro.core.gan_schedule",
    # pipelined trainers
    "PipelinedGANTrainer": "repro.core.pipelined_gan",
    "fix_vbn_references": "repro.core.pipelined_gan",
    "PipelinedTrainer": "repro.core.pipelined_trainer",
    "PipelineTickLog": "repro.core.pipelined_trainer",
    "group_into_stages": "repro.core.pipelined_trainer",
    # trace
    "occupancy_profile": "repro.core.trace",
    "render_gan_schedule": "repro.core.trace",
    "render_training_schedule": "repro.core.trace",
    # schedule
    "ScheduleEvent": "repro.core.schedule",
    "ScheduleResult": "repro.core.schedule",
    "simulate_inference_pipeline": "repro.core.schedule",
    "simulate_training_pipeline": "repro.core.schedule",
    "simulate_training_sequential": "repro.core.schedule",
}


def __getattr__(name: str) -> Any:
    module_path = _RETIRED.get(name)
    if module_path is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    raise AttributeError(
        f"the flat 'repro.core' export {name!r} has been retired; "
        f"import it from {module_path!r} instead"
    )


def __dir__() -> list:
    return sorted(__all__)
