"""Placing a deployment onto memory banks (Fig. 6's organisation).

PipeLayer partitions each ReRAM bank into morphable, memory, and buffer
subarray regions; a deployed network claims morphable subarrays (one
physical 128x128 array each) across however many banks it needs.  This
module performs that placement: given a
:class:`~repro.core.pipelayer.PipeLayerModel`, it builds banks, switches
the claimed subarrays into compute mode through the bank control
interface (:class:`~repro.arch.subarray.Bank`), and reports per-bank
utilisation — connecting the cycle/energy model to the Fig. 6
structure the paper draws.

Placement policy: first-fit in layer order.  Layers may span banks
(their partial sums already merge through the connection units), so
first-fit wastes nothing; the interesting outputs are the bank count
and the morphable-region utilisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from typing import Dict, List

from repro.arch.subarray import Bank, SubarrayKind
from repro.core.pipelayer import TRAINING_ARRAY_FACTOR, PipeLayerModel
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class BankConfig:
    """Per-bank region sizes (subarray counts)."""

    morphable: int = 384
    memory: int = 96
    buffer: int = 32

    def __post_init__(self) -> None:
        check_positive("morphable", self.morphable)
        check_positive("memory", self.memory)
        check_positive("buffer", self.buffer)


@dataclass
class Placement:
    """Where one layer's arrays landed."""

    layer: str
    arrays: int
    banks: Dict[int, int] = field(default_factory=dict)

    @property
    def bank_span(self) -> int:
        """Number of banks this layer touches."""
        return len(self.banks)


@dataclass
class AllocationResult:
    """A deployment placed onto banks."""

    banks: List[Bank]
    placements: List[Placement]
    config: BankConfig

    @property
    def bank_count(self) -> int:
        return len(self.banks)

    @property
    def total_compute_subarrays(self) -> int:
        return sum(p.arrays for p in self.placements)

    def utilisation(self) -> List[float]:
        """Per-bank fraction of morphable subarrays in compute mode."""
        fractions = []
        for bank in self.banks:
            morphable = bank.of_kind(SubarrayKind.MORPHABLE)
            used = sum(1 for s in morphable if s.assigned_to is not None)
            fractions.append(used / len(morphable))
        return fractions

    def summary(self) -> str:
        lines = [
            f"{self.bank_count} banks of {self.config.morphable} morphable "
            f"subarrays; {self.total_compute_subarrays:,} in compute mode"
        ]
        for placement in self.placements:
            lines.append(
                f"  {placement.layer:<18s} {placement.arrays:>8,d} arrays "
                f"across {placement.bank_span} bank(s)"
            )
        used = self.utilisation()
        lines.append(
            f"  utilisation: min {min(used):.0%}, max {max(used):.0%}"
        )
        return "\n".join(lines)


def allocate_banks(
    model: PipeLayerModel, bank_config: BankConfig = BankConfig()
) -> AllocationResult:
    """Place a PipeLayer deployment onto banks, first-fit.

    Each layer claims ``total_arrays`` morphable subarrays for its
    forward copies plus the same again for its training transposes
    (when the model holds them).  Returns the populated banks with
    every claimed subarray switched to compute mode.
    """
    factor = TRAINING_ARRAY_FACTOR if model.training_arrays else 1
    demands = [
        (name, mapping.total_arrays * factor)
        for name, mapping in model.mappings.items()
    ]
    total = sum(arrays for _, arrays in demands)
    bank_count = max(1, ceil(total / bank_config.morphable))
    banks = [
        Bank(
            morphable_count=bank_config.morphable,
            memory_count=bank_config.memory,
            buffer_count=bank_config.buffer,
        )
        for _ in range(bank_count)
    ]

    placements: List[Placement] = []
    bank_index = 0
    for name, arrays in demands:
        placement = Placement(layer=name, arrays=arrays)
        remaining = arrays
        while remaining > 0:
            if bank_index >= len(banks):
                banks.append(
                    Bank(
                        morphable_count=bank_config.morphable,
                        memory_count=bank_config.memory,
                        buffer_count=bank_config.buffer,
                    )
                )
            bank = banks[bank_index]
            free = len(bank.free_morphable())
            if free == 0:
                bank_index += 1
                continue
            take = min(free, remaining)
            bank.assign_compute(name, take)
            placement.banks[bank_index] = (
                placement.banks.get(bank_index, 0) + take
            )
            remaining -= take
        placements.append(placement)
    return AllocationResult(
        banks=banks, placements=placements, config=bank_config
    )
