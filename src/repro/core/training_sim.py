"""Crossbar-in-the-loop training: PipeLayer's training claim, executed.

PipeLayer "supports complete deep learning applications" — training
happens *on* the accelerator: forward passes run through the crossbars
(with whatever non-idealities the device has), errors back-propagate
digitally from the crossbar-produced activations, and each batch update
reprograms the arrays.  This module runs exactly that loop in the
functional simulator and provides the comparison experiment the claim
implies:

* **clean-then-deploy**: train in float, then deploy onto a noisy
  device (the fragile path — the network never saw the hardware);
* **hardware-in-the-loop**: train with the noisy crossbars in the
  forward path, so the weights adapt to the device they live on
  (noise-aware training, the standard remedy in the ReRAM literature).

The engines notice every weight change at the next forward pass and
reprogram their arrays — each reprogram draws *fresh* programming
noise, exactly like rewriting the physical cells — so the write
counters double as endurance-relevant statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.compiler import Deployment, deploy_network
from repro.nn.network import Sequential
from repro.nn.optim import Optimizer
from repro.nn.train import TrainHistory, evaluate_classifier, train_classifier
from repro.utils.rng import RngLike, new_rng
from repro.xbar.engine import CrossbarEngineConfig


@dataclass
class CrossbarTrainingResult:
    """Outcome of one crossbar-in-the-loop training run."""

    history: TrainHistory
    deployment: Deployment
    final_accuracy: float
    array_programs: int
    array_reads: int

    def summary(self) -> str:
        return (
            f"accuracy {self.final_accuracy:.3f}, "
            f"{self.array_programs:,} array programs, "
            f"{self.array_reads:,} array reads"
        )


def train_on_crossbar(
    network: Sequential,
    optimizer: Optimizer,
    images: np.ndarray,
    labels: np.ndarray,
    engine_config: CrossbarEngineConfig,
    eval_data: Tuple[np.ndarray, np.ndarray],
    epochs: int = 1,
    batch_size: int = 32,
    rng: RngLike = None,
    deploy_rng: RngLike = 3,
    backend: Optional[str] = None,
) -> CrossbarTrainingResult:
    """Train ``network`` with its forward matmuls on the crossbars.

    The deployment stays attached for the final evaluation, so
    ``final_accuracy`` is measured on the same (non-ideal) hardware the
    network trained on.  The caller may ``deployment.undeploy()``
    afterwards.

    ``backend`` overrides the engine evaluation backend; training is
    the hottest consumer of the full datapath (every batch re-programs
    and re-reads the arrays), so the default vectorized backend is
    what makes crossbar-in-the-loop studies tractable.
    """
    deployment = deploy_network(
        network, engine_config, rng=deploy_rng, backend=backend
    )
    history = train_classifier(
        network,
        optimizer,
        images,
        labels,
        epochs=epochs,
        batch_size=batch_size,
        rng=new_rng(rng) if rng is not None else None,
    )
    accuracy = evaluate_classifier(network, *eval_data)
    stats = deployment.total_stats()
    return CrossbarTrainingResult(
        history=history,
        deployment=deployment,
        final_accuracy=accuracy,
        array_programs=stats["array_programs"],
        array_reads=stats["array_reads"],
    )


@dataclass(frozen=True)
class NoiseAwareComparison:
    """Clean-then-deploy vs hardware-in-the-loop accuracies."""

    float_accuracy: float
    clean_then_deploy_accuracy: float
    in_loop_accuracy: float

    @property
    def recovery(self) -> float:
        """Accuracy recovered by training on the hardware."""
        return self.in_loop_accuracy - self.clean_then_deploy_accuracy

    def summary(self) -> str:
        return (
            f"float {self.float_accuracy:.3f} | deploy-after "
            f"{self.clean_then_deploy_accuracy:.3f} | in-loop "
            f"{self.in_loop_accuracy:.3f} "
            f"(recovered {self.recovery:+.3f})"
        )


def compare_noise_aware(
    build_network,
    build_optimizer,
    train_data: Tuple[np.ndarray, np.ndarray],
    eval_data: Tuple[np.ndarray, np.ndarray],
    engine_config: CrossbarEngineConfig,
    epochs: int = 2,
    batch_size: int = 32,
    train_rng_seed: int = 1,
    deploy_rng: RngLike = 3,
    backend: Optional[str] = None,
) -> NoiseAwareComparison:
    """Run the two training regimes from identical initial weights.

    ``build_network()`` must return a freshly *seeded* network (same
    weights every call); ``build_optimizer(network)`` its optimizer.
    The same deployment seed is used in both arms so each sees the same
    device instance (same stuck cells, same noise process).  Both arms
    use the same evaluation ``backend`` (the backends are bit-identical
    under a shared seed, so this only changes wall-clock time).
    """
    images, labels = train_data

    # Arm 1: float training, then deploy.
    network_a = build_network()
    train_classifier(
        network_a,
        build_optimizer(network_a),
        images,
        labels,
        epochs=epochs,
        batch_size=batch_size,
        rng=new_rng(train_rng_seed),
    )
    float_accuracy = evaluate_classifier(network_a, *eval_data)
    deployment_a = deploy_network(
        network_a, engine_config, rng=deploy_rng, backend=backend
    )
    deployed_accuracy = evaluate_classifier(network_a, *eval_data)
    deployment_a.undeploy()

    # Arm 2: same initial weights, crossbars in the training loop.
    network_b = build_network()
    result = train_on_crossbar(
        network_b,
        build_optimizer(network_b),
        images,
        labels,
        engine_config,
        eval_data,
        epochs=epochs,
        batch_size=batch_size,
        rng=new_rng(train_rng_seed),
        deploy_rng=deploy_rng,
        backend=backend,
    )
    result.deployment.undeploy()

    return NoiseAwareComparison(
        float_accuracy=float_accuracy,
        clean_then_deploy_accuracy=deployed_accuracy,
        in_loop_accuracy=result.final_accuracy,
    )
