"""ASCII Gantt rendering of pipeline schedules (Fig. 5 / Fig. 8 visuals).

The paper's pipeline figures are occupancy charts: stages on one axis,
cycles on the other, batch elements filling the diagonal.  This module
renders the executed schedules from :mod:`repro.core.schedule` and
:mod:`repro.core.gan_schedule` in the same visual language, so the
examples (and curious users) can *see* the fill/drain/barrier structure
instead of trusting a formula.

Cells show the element id (mod 62, as 0-9a-zA-Z); ``*`` marks a weight
update; ``.`` an idle slot.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.gan_schedule import GanScheduleResult
from repro.core.schedule import ScheduleResult

_SYMBOLS = (
    "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
)


def _element_symbol(element: int) -> str:
    return _SYMBOLS[element % len(_SYMBOLS)]


def render_training_schedule(
    result: ScheduleResult, max_cycles: int = 120
) -> str:
    """Gantt chart of a Fig. 5 training schedule.

    One row per pipeline stage (forward stages, the loss stage, then
    backward stages), one column per cycle, plus an ``update`` row.
    """
    cycles = min(result.makespan, max_cycles)
    grid: Dict[Tuple[int, int], str] = {}
    for event in result.events:
        if event.cycle >= cycles:
            continue
        if event.kind == "update":
            grid[(-1, event.cycle)] = "*"
        else:
            grid[(event.stage, event.cycle)] = _element_symbol(
                event.input_id
            )

    layers = (result.stages - 1) // 2
    labels: List[str] = []
    for stage in range(result.stages):
        if stage < layers:
            labels.append(f"fwd L{stage + 1}")
        elif stage == layers:
            labels.append("loss")
        else:
            labels.append(f"bwd L{result.stages - stage}")
    width = max(len(label) for label in labels + ["update"]) + 1

    lines = [
        " " * width
        + "".join(str(c % 10) for c in range(cycles))
        + ("  (truncated)" if result.makespan > cycles else "")
    ]
    for stage, label in enumerate(labels):
        row = "".join(
            grid.get((stage, cycle), ".") for cycle in range(cycles)
        )
        lines.append(f"{label:<{width}s}{row}")
    update_row = "".join(
        grid.get((-1, cycle), ".") for cycle in range(cycles)
    )
    lines.append(f"{'update':<{width}s}{update_row}")
    return "\n".join(lines)


def render_gan_schedule(
    result: GanScheduleResult, max_cycles: int = 140
) -> str:
    """Gantt chart of a Fig. 8/9 GAN iteration.

    One row per (resource, stage); resources are G's chain, each D
    copy's chain, the CS second backward branch, and the control row
    with the D (``D``) and G (``G``) update marks.
    """
    cycles = min(result.makespan, max_cycles)
    resources: Dict[str, int] = {}
    for event in result.events:
        if event.stage >= 0:
            resources[event.resource] = max(
                resources.get(event.resource, 0), event.stage + 1
            )
    order = [name for name in ("G", "D0", "D1", "Dbwd2") if name in resources]

    grid: Dict[Tuple[str, int, int], str] = {}
    updates: Dict[int, str] = {}
    for event in result.events:
        if event.cycle >= cycles:
            continue
        if event.stage < 0:
            updates[event.cycle] = (
                "D" if event.dataflow.startswith("D") else "G"
            )
        else:
            grid[(event.resource, event.stage, event.cycle)] = (
                _element_symbol(event.element)
            )

    width = 12
    lines = [
        " " * width
        + "".join(str(c % 10) for c in range(cycles))
        + ("  (truncated)" if result.makespan > cycles else "")
    ]
    for resource in order:
        for stage in range(resources[resource]):
            row = "".join(
                grid.get((resource, stage, cycle), ".")
                for cycle in range(cycles)
            )
            lines.append(f"{resource}[{stage}]".ljust(width) + row)
    update_row = "".join(
        updates.get(cycle, ".") for cycle in range(cycles)
    )
    lines.append("update".ljust(width) + update_row)
    return "\n".join(lines)


def occupancy_profile(result: ScheduleResult) -> List[int]:
    """Busy-stage count per cycle (the fill/drain envelope)."""
    counts = [0] * result.makespan
    for event in result.events:
        if event.kind == "compute":
            counts[event.cycle] += 1
    return counts
