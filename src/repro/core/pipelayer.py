"""The PipeLayer accelerator model (Sec. III-A, Figs. 4-6).

Combines the Fig. 4 data mapping, the Fig. 5 inter-layer pipeline and
the technology table into end-to-end timing and energy for training and
testing, compared against the GPU roofline baseline — the machinery
behind Table I row 1.

Model assumptions (each mirrors a statement in the paper or in
PipeLayer [12]; see DESIGN.md):

* The pipeline **cycle time** is the slowest layer's compute latency:
  ``passes x activation_bits x subcycle_time``.  Balancing duplication
  ``X`` across layers (Fig. 4b) is what keeps this small.
* **Training** stores a transposed copy of each weight matrix for error
  back-propagation (doubling crossbar arrays) and performs three MVM
  waves per image per layer: forward, error backward, and
  weight-gradient computation.
* **Intermediate results** live in memory subarrays (Fig. 6): every
  activation (and, in training, every error) is written and read once
  per layer boundary at ``activation_bits`` per value; word-line drive
  re-reads inputs once per output vector.
* **Weight updates** rewrite every cell of every copy once per batch.
* **Static power** scales with deployed arrays (always-on ADC share,
  sense amplifiers, decoders) plus a controller constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.arch.components import (
    EnergyBreakdown,
    array_subcycle_energy,
    buffer_transfer_energy,
    static_power,
    weight_write_energy,
)
from repro.arch.gpu import GpuModel
from repro.arch.params import DEFAULT_TECH, XbarTechParams
from repro.core.mapping import LayerMapping, MappingConfig, balance_duplication
from repro.core.pipeline import (
    training_cycles_per_batch_pipelined,
    training_cycles_pipelined,
)
from repro.utils.validation import check_positive
from repro.workloads.suite import NetworkSpec

#: Extra array copies held for training (forward matrix + transpose).
TRAINING_ARRAY_FACTOR = 2
#: MVM waves per image per layer in training (fwd, error bwd, dW).
TRAINING_MVM_FACTOR = 3
#: Accumulator width written back to memory subarrays per value.
ACCUMULATOR_BITS = 16


@dataclass(frozen=True)
class PipeLayerReport:
    """Timing/energy results for one network on PipeLayer."""

    network: str
    mode: str
    batch: int
    cycle_time: float
    cycles_per_batch: int
    time_per_image: float
    energy_per_image: EnergyBreakdown
    total_arrays: int
    gpu_time_per_image: float
    gpu_energy_per_image: float

    @property
    def throughput(self) -> float:
        """Images per second."""
        return 1.0 / self.time_per_image

    @property
    def speedup(self) -> float:
        """PipeLayer speedup over the GPU baseline."""
        return self.gpu_time_per_image / self.time_per_image

    @property
    def energy_saving(self) -> float:
        """GPU energy / PipeLayer energy per image."""
        return self.gpu_energy_per_image / self.energy_per_image.total

    def summary(self) -> str:
        energy = self.energy_per_image
        return (
            f"{self.network} [{self.mode}, B={self.batch}]: "
            f"cycle={self.cycle_time * 1e6:.2f}us, "
            f"{self.throughput:,.0f} img/s, "
            f"{energy.total * 1e3:.3f} mJ/img "
            f"(mvm {energy.mvm * 1e3:.3f}, buf {energy.buffer * 1e3:.3f}, "
            f"wr {energy.weight_write * 1e3:.3f}, "
            f"static {energy.static * 1e3:.3f}); "
            f"speedup {self.speedup:.1f}x, energy saving "
            f"{self.energy_saving:.1f}x"
        )


class PipeLayerModel:
    """PipeLayer deployed for one network under an array budget."""

    def __init__(
        self,
        network: NetworkSpec,
        array_budget: int = 65536,
        tech: XbarTechParams = DEFAULT_TECH,
        mapping_config: Optional[MappingConfig] = None,
        gpu: Optional[GpuModel] = None,
        training_arrays: bool = True,
    ) -> None:
        check_positive("array_budget", array_budget)
        self.network = network
        self.tech = tech
        self.config = mapping_config or MappingConfig()
        self.gpu = gpu or GpuModel()
        self.training_arrays = training_arrays
        # Balance duplication under the *compute* share of the budget;
        # training holds a transposed copy of everything, halving the
        # share available to forward copies.
        forward_budget = array_budget // (
            TRAINING_ARRAY_FACTOR if training_arrays else 1
        )
        self.mappings: Dict[str, LayerMapping] = balance_duplication(
            network, forward_budget, self.config
        )

    # -- structure ------------------------------------------------------------
    @property
    def forward_arrays(self) -> int:
        """Arrays holding forward weight copies."""
        return sum(m.total_arrays for m in self.mappings.values())

    @property
    def total_arrays(self) -> int:
        """All deployed arrays (incl. training transposes)."""
        factor = TRAINING_ARRAY_FACTOR if self.training_arrays else 1
        return self.forward_arrays * factor

    @property
    def cycle_time(self) -> float:
        """Pipeline cycle: the slowest layer's bit-serial latency."""
        worst = max(
            m.subcycles_per_image for m in self.mappings.values()
        )
        return worst * self.tech.subcycle_time

    # -- timing ------------------------------------------------------------------
    def training_time(self, n_inputs: int, batch: int) -> float:
        """Wall time to train on ``n_inputs`` examples (Fig. 5 cycles)."""
        cycles = training_cycles_pipelined(
            self.network.depth, n_inputs, batch
        )
        return cycles * self.cycle_time

    def training_time_per_image(self, batch: int) -> float:
        """Amortised training time per example."""
        cycles = training_cycles_per_batch_pipelined(
            self.network.depth, batch
        )
        return cycles * self.cycle_time / batch

    def inference_time_per_image(self) -> float:
        """Steady-state pipelined inference: one image per cycle."""
        return self.cycle_time

    # -- energy --------------------------------------------------------------------
    def _mvm_energy_per_image(self, waves: int) -> float:
        """Dynamic array energy for ``waves`` MVM sweeps of the net."""
        per_subcycle = array_subcycle_energy(
            self.tech, self.config.array_rows, self.config.array_cols
        )
        activations = sum(
            m.array_activations_per_image for m in self.mappings.values()
        )
        return activations * per_subcycle * waves

    def _buffer_energy_per_image(self, training: bool) -> float:
        """Memory-subarray traffic: drive reads + result writes."""
        drive_bits = sum(
            m.layer.output_vectors
            * m.layer.matrix_rows
            * self.config.activation_bits
            for m in self.mappings.values()
        )
        result_bits = sum(
            m.layer.output_size * ACCUMULATOR_BITS
            for m in self.mappings.values()
        )
        bits = drive_bits + result_bits
        if training:
            # Errors retrace the same traffic; cached activations for
            # the weight-gradient step are read once more.
            bits *= TRAINING_MVM_FACTOR
        return buffer_transfer_energy(self.tech, bits)

    def _update_energy_per_batch(self) -> float:
        """Rewriting every weight cell of every copy once per batch."""
        cells = sum(m.cells for m in self.mappings.values())
        if self.training_arrays:
            cells *= TRAINING_ARRAY_FACTOR
        return weight_write_energy(self.tech, cells)

    def static_power_watts(self) -> float:
        """Always-on chip power for the deployed arrays."""
        return static_power(self.tech, self.total_arrays)

    def energy_per_image(self, batch: int, training: bool) -> EnergyBreakdown:
        """Full per-image energy ledger."""
        check_positive("batch", batch)
        waves = TRAINING_MVM_FACTOR if training else 1
        mvm = self._mvm_energy_per_image(waves)
        buffer = self._buffer_energy_per_image(training)
        update = self._update_energy_per_batch() / batch if training else 0.0
        time_per_image = (
            self.training_time_per_image(batch)
            if training
            else self.inference_time_per_image()
        )
        static = self.static_power_watts() * time_per_image
        return EnergyBreakdown(
            mvm=mvm, buffer=buffer, weight_write=update, static=static
        )

    # -- event counters --------------------------------------------------------------
    def record_event_counters(
        self, tel, batch: int = 32, training: bool = True
    ) -> None:
        """Emit this model's per-image work as physical event counters.

        Writes the same event grammar the crossbar engine emits
        (``array_reads``, ``dac.line_fires``, ``adc.samples``,
        ``shift_adds``, ``buffer.bits``, ``cell_writes``,
        ``static.*_subcycles``) onto ``tel``, scaled to *one image* —
        so pricing the counters through
        :func:`repro.arch.components.event_costs` reconstructs
        :meth:`energy_per_image` exactly.  This is what lets the
        measured Table I path derive the paper's energy ratios from
        counters rather than formulas, with the closed-form model as
        its consistency oracle.  Counters are per-image averages and
        may be fractional (e.g. weight-update cells amortised over the
        batch).
        """
        check_positive("batch", batch)
        waves = TRAINING_MVM_FACTOR if training else 1
        activations = sum(
            m.array_activations_per_image for m in self.mappings.values()
        )
        reads = activations * waves
        tel.count("array_reads", reads)
        tel.count("dac.line_fires", reads * self.config.array_rows)
        tel.count("adc.samples", reads * self.config.array_cols)
        tel.count("shift_adds", reads * self.config.array_cols)
        drive_bits = sum(
            m.layer.output_vectors
            * m.layer.matrix_rows
            * self.config.activation_bits
            for m in self.mappings.values()
        )
        result_bits = sum(
            m.layer.output_size * ACCUMULATOR_BITS
            for m in self.mappings.values()
        )
        bits = drive_bits + result_bits
        if training:
            bits *= TRAINING_MVM_FACTOR
        tel.count("buffer.bits", bits)
        if training:
            cells = sum(m.cells for m in self.mappings.values())
            if self.training_arrays:
                cells *= TRAINING_ARRAY_FACTOR
            tel.count("cell_writes", cells / batch)
        time_per_image = (
            self.training_time_per_image(batch)
            if training
            else self.inference_time_per_image()
        )
        occupancy = time_per_image / self.tech.subcycle_time
        tel.count("static.array_subcycles", self.total_arrays * occupancy)
        tel.count("static.controller_subcycles", occupancy)

    # -- comparison ------------------------------------------------------------------
    def report(self, batch: int = 32, training: bool = True) -> PipeLayerReport:
        """Full comparison record against the GPU baseline."""
        check_positive("batch", batch)
        mode = "training" if training else "inference"
        time_per_image = (
            self.training_time_per_image(batch)
            if training
            else self.inference_time_per_image()
        )
        return PipeLayerReport(
            network=self.network.name,
            mode=mode,
            batch=batch,
            cycle_time=self.cycle_time,
            cycles_per_batch=training_cycles_per_batch_pipelined(
                self.network.depth, batch
            ),
            time_per_image=time_per_image,
            energy_per_image=self.energy_per_image(batch, training),
            total_arrays=self.total_arrays,
            gpu_time_per_image=self.gpu.time_per_image(
                self.network, batch, training
            ),
            gpu_energy_per_image=self.gpu.energy_per_image(
                self.network, batch, training
            ),
        )
