"""Data input and kernel mapping (Sec. III-A-1, Fig. 4).

Two schemes are modelled:

* **Naive** (Fig. 4a): the whole lowered weight matrix occupies one
  logical array; input vectors enter sequentially, so a layer takes one
  cycle per output vector (the worked example: 12544 cycles).
* **Balanced** (Fig. 4b): the matrix is split into 128x128 physical
  arrays whose partial sums are collected horizontally and added
  vertically, and the whole group is duplicated into ``X`` copies fed
  with different input vectors in parallel.  ``X = 1`` degenerates to
  the naive scheme; ``X = output_vectors`` finishes a layer in one
  pass at maximal array cost.  "A good trade-off between hardware
  resource of ReRAM array and performance requires a carefully chosen
  X" — :func:`balance_duplication` chooses per-layer ``X`` under an
  array budget by equalising per-layer pass counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Dict, List, Optional, Sequence

from repro.utils.validation import check_positive
from repro.workloads.specs import LayerSpec
from repro.workloads.suite import NetworkSpec
from repro.xbar.mapping import WeightMapping
from repro.xbar.tile import tile_grid


@dataclass(frozen=True)
class MappingConfig:
    """Physical mapping parameters shared by all layers."""

    array_rows: int = 128
    array_cols: int = 128
    weight_mapping: WeightMapping = WeightMapping()
    activation_bits: int = 8

    def __post_init__(self) -> None:
        check_positive("array_rows", self.array_rows)
        check_positive("array_cols", self.array_cols)
        check_positive("activation_bits", self.activation_bits)


@dataclass(frozen=True)
class LayerMapping:
    """One layer placed on crossbar arrays with duplication ``X``."""

    layer: LayerSpec
    config: MappingConfig
    duplication: int

    def __post_init__(self) -> None:
        if not self.layer.is_matrix_layer:
            raise ValueError(
                f"layer kind {self.layer.kind!r} has no weight matrix to map"
            )
        check_positive("duplication", self.duplication)
        if self.duplication > self.layer.output_vectors:
            raise ValueError(
                f"duplication {self.duplication} exceeds the layer's "
                f"{self.layer.output_vectors} output vectors"
            )

    # -- geometry -----------------------------------------------------------
    @property
    def grid(self) -> tuple:
        """(row blocks, col blocks) of physical arrays per copy."""
        return tile_grid(
            self.layer.matrix_rows,
            self.layer.matrix_cols,
            self.config.array_rows,
            self.config.array_cols,
        )

    @property
    def arrays_per_copy(self) -> int:
        """Physical arrays in one weight copy (all slices and signs)."""
        rows, cols = self.grid
        return rows * cols * self.config.weight_mapping.cells_per_weight

    @property
    def total_arrays(self) -> int:
        """Arrays across all ``X`` duplicated copies."""
        return self.arrays_per_copy * self.duplication

    @property
    def cells(self) -> int:
        """Total programmed ReRAM cells (weight storage footprint)."""
        return (
            self.layer.weight_count
            * self.config.weight_mapping.cells_per_weight
            * self.duplication
        )

    # -- per-image work ----------------------------------------------------------
    @property
    def passes_per_image(self) -> int:
        """Sequential input waves to produce one image's outputs.

        ``ceil(output_vectors / X)`` — the quantity Fig. 4 trades
        against array cost (12544 for the naive scheme, 49 at X=256,
        1 at X=12544).
        """
        return ceil(self.layer.output_vectors / self.duplication)

    @property
    def subcycles_per_image(self) -> int:
        """Bit-serial sub-cycles per image: passes x activation bits."""
        return self.passes_per_image * self.config.activation_bits

    @property
    def array_activations_per_image(self) -> int:
        """Physical array reads per image (duplication-independent).

        Every output vector activates one copy's arrays once per input
        bit, regardless of how many copies exist — duplication buys
        time, not fewer operations.
        """
        return (
            self.layer.output_vectors
            * self.arrays_per_copy
            * self.config.activation_bits
        )


def naive_mapping(layer: LayerSpec, config: Optional[MappingConfig] = None) -> LayerMapping:
    """Fig. 4(a): single-copy mapping; a cycle per output vector."""
    return LayerMapping(layer, config or MappingConfig(), duplication=1)


def balanced_mapping(
    layer: LayerSpec, duplication: int, config: Optional[MappingConfig] = None
) -> LayerMapping:
    """Fig. 4(b): partitioned arrays with ``X = duplication`` copies."""
    return LayerMapping(layer, config or MappingConfig(), duplication=duplication)


def duplication_for_passes(layer: LayerSpec, passes: int) -> int:
    """Smallest ``X`` that finishes the layer within ``passes`` waves."""
    check_positive("passes", passes)
    return max(1, ceil(layer.output_vectors / passes))


def balance_duplication(
    network: NetworkSpec,
    array_budget: int,
    config: Optional[MappingConfig] = None,
) -> Dict[str, LayerMapping]:
    """Choose per-layer ``X`` under a total array budget.

    Finds the smallest uniform pass count ``P`` such that giving each
    layer ``X_l = ceil(vectors_l / P)`` copies fits in ``array_budget``
    physical arrays, then maps every matrix layer accordingly.  A
    uniform pass count is what the inter-layer pipeline wants: the
    pipeline cycle is the *slowest* layer's latency, so spending arrays
    anywhere except the bottleneck is wasted.

    Raises ``ValueError`` when even single copies exceed the budget.
    """
    config = config or MappingConfig()
    check_positive("array_budget", array_budget)
    layers = network.matrix_layers

    def arrays_needed(passes: int) -> int:
        total = 0
        for layer in layers:
            duplication = duplication_for_passes(layer, passes)
            total += LayerMapping(layer, config, duplication).total_arrays
        return total

    max_passes = max(layer.output_vectors for layer in layers)
    if arrays_needed(max_passes) > array_budget:
        raise ValueError(
            f"array budget {array_budget} cannot hold even one copy of "
            f"{network.name} ({arrays_needed(max_passes)} arrays needed)"
        )
    low, high = 1, max_passes
    while low < high:
        mid = (low + high) // 2
        if arrays_needed(mid) <= array_budget:
            high = mid
        else:
            low = mid + 1
    passes = low
    return {
        (layer.name or f"layer{index}"): LayerMapping(
            layer, config, duplication_for_passes(layer, passes)
        )
        for index, layer in enumerate(layers)
    }


def mapping_table(mappings: Sequence[LayerMapping]) -> str:
    """Human-readable report of a set of layer mappings."""
    lines = [
        f"{'layer':<16s}{'matrix':>12s}{'grid':>8s}{'X':>8s}"
        f"{'arrays':>10s}{'passes':>8s}"
    ]
    for mapping in mappings:
        layer = mapping.layer
        rows, cols = mapping.grid
        lines.append(
            f"{layer.name or layer.kind:<16s}"
            f"{f'{layer.matrix_rows}x{layer.matrix_cols}':>12s}"
            f"{f'{rows}x{cols}':>8s}"
            f"{mapping.duplication:>8d}"
            f"{mapping.total_arrays:>10d}"
            f"{mapping.passes_per_image:>8d}"
        )
    return "\n".join(lines)
