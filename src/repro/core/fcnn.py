"""Fractional-strided convolution mapping (Sec. III-B-1, Fig. 7).

The ReGAN insight that makes the generator run on the same crossbar
hardware as the discriminator:

* **Forward** (Fig. 7a): a fractional-strided convolution "can be taken
  the same way as a traditional convolution by first adding zeros
  between each input in the feature maps with zero padding and then
  computing the convolution between the extended input feature maps and
  the kernel."
* **Backward** (Fig. 7b): "the error propagation backwards in FCNN ...
  indeed is a typical convolution with strides."

This module implements the zero-insertion formulation explicitly and
provides the conversion between a transposed-convolution kernel and the
equivalent ordinary-convolution kernel (spatial flip + channel swap).
Tests and the Fig. 7 benchmark verify it against the adjoint
implementation in
:class:`repro.nn.layers.conv_transpose.FractionalStridedConv2D`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.im2col import im2col, insert_zeros, pad_nchw
from repro.utils.validation import check_non_negative, check_positive


def equivalent_conv_kernel(weight: np.ndarray) -> np.ndarray:
    """Ordinary-conv kernel equivalent to a transposed-conv kernel.

    A transposed convolution with weight ``(Cin, Cout, k, k)`` equals a
    stride-1 convolution (over the zero-inserted, zero-padded input)
    with the spatially flipped kernel viewed as ``(Cout, Cin, k, k)``.
    """
    if weight.ndim != 4:
        raise ValueError(f"weight must be 4-D, got shape {weight.shape}")
    return weight[:, :, ::-1, ::-1].transpose(1, 0, 2, 3)


def zero_insertion_padding(kernel: int, pad: int) -> int:
    """Outer zero padding of the extended map: ``k - 1 - pad``."""
    check_positive("kernel", kernel)
    check_non_negative("pad", pad)
    out = kernel - 1 - pad
    if out < 0:
        raise ValueError(
            f"pad ({pad}) exceeds kernel - 1 ({kernel - 1}); such a "
            "transposed convolution crops more than the kernel covers"
        )
    return out


def fcnn_forward_zero_insertion(
    inputs: np.ndarray,
    weight: np.ndarray,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Fig. 7(a): transposed conv as zero-inserted ordinary conv.

    Parameters
    ----------
    inputs:
        NCHW input feature maps.
    weight:
        Transposed-convolution kernel ``(Cin, Cout, k, k)``.
    stride, pad:
        Transposed-convolution (output-side) stride and padding.

    Returns the same result as
    :class:`~repro.nn.layers.conv_transpose.FractionalStridedConv2D`
    (without bias): output extent ``(H - 1) * stride - 2 * pad + k``.
    """
    inputs = np.asarray(inputs, dtype=np.float64)
    if inputs.ndim != 4:
        raise ValueError(f"inputs must be NCHW, got shape {inputs.shape}")
    in_channels, out_channels, kernel, kernel_w = weight.shape
    if kernel != kernel_w:
        raise ValueError("only square kernels are supported")
    if inputs.shape[1] != in_channels:
        raise ValueError(
            f"inputs have {inputs.shape[1]} channels, weight expects "
            f"{in_channels}"
        )
    check_positive("stride", stride)

    # Step 1: insert (stride - 1) zeros between input pixels.
    extended = insert_zeros(inputs, stride)
    # Step 2: outer zero padding of k - 1 - pad.
    outer = zero_insertion_padding(kernel, pad)
    extended = pad_nchw(extended, outer)
    # Step 3: ordinary stride-1 convolution with the flipped kernel.
    conv_kernel = equivalent_conv_kernel(weight)
    cols = im2col(extended, kernel, kernel, stride=1, pad=0)
    weight_matrix = conv_kernel.reshape(out_channels, -1).T
    out = cols @ weight_matrix

    batch = inputs.shape[0]
    out_h = (inputs.shape[2] - 1) * stride - 2 * pad + kernel
    out_w = (inputs.shape[3] - 1) * stride - 2 * pad + kernel
    out = out.reshape(batch, out_h, out_w, out_channels)
    return out.transpose(0, 3, 1, 2)


def fcnn_backward_strided_conv(
    grad_output: np.ndarray,
    weight: np.ndarray,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Fig. 7(b): FCNN error back-propagation as a strided convolution.

    Given the gradient at the (large) output of a transposed
    convolution, the gradient at its (small) input is an ordinary
    convolution of ``grad_output`` with the *unflipped* kernel at the
    transposed convolution's stride and padding.
    """
    grad_output = np.asarray(grad_output, dtype=np.float64)
    in_channels, out_channels, kernel, _ = weight.shape
    if grad_output.shape[1] != out_channels:
        raise ValueError(
            f"grad_output has {grad_output.shape[1]} channels, weight "
            f"produces {out_channels}"
        )
    cols = im2col(grad_output, kernel, kernel, stride=stride, pad=pad)
    # (Cin, Cout*k*k) weight view: same layout as the adjoint layer.
    weight_matrix = weight.reshape(in_channels, -1)
    rows = cols @ weight_matrix.T

    batch = grad_output.shape[0]
    in_h = (grad_output.shape[2] + 2 * pad - kernel) // stride + 1
    in_w = (grad_output.shape[3] + 2 * pad - kernel) // stride + 1
    grad_input = rows.reshape(batch, in_h, in_w, in_channels)
    return grad_input.transpose(0, 3, 1, 2)


def extended_input_shape(
    input_shape: Tuple[int, int], kernel: int, stride: int, pad: int
) -> Tuple[int, int]:
    """Spatial shape of the zero-inserted, zero-padded map.

    Useful for sizing the crossbar input buffers: the FCNN layer's
    arrays see the extended map, not the raw one.
    """
    height, width = input_shape
    check_positive("height", height)
    check_positive("width", width)
    outer = zero_insertion_padding(kernel, pad)
    return (
        (height - 1) * stride + 1 + 2 * outer,
        (width - 1) * stride + 1 + 2 * outer,
    )


def zero_fraction(input_shape: Tuple[int, int], kernel: int, stride: int, pad: int) -> float:
    """Fraction of zeros in the extended map (wasted crossbar drive).

    The zero-insertion trick is computationally clean but drives the
    arrays with mostly-zero vectors at stride 2 (~75 % zeros); this
    metric feeds the ablation benchmark on FCNN mapping efficiency.
    """
    height, width = input_shape
    ext_h, ext_w = extended_input_shape(input_shape, kernel, stride, pad)
    return 1.0 - (height * width) / (ext_h * ext_w)
