"""The ReGAN accelerator model (Sec. III-B, Figs. 7-10).

Deploys a DCGAN (generator + discriminator) on ReRAM crossbars and
prices one training iteration under the four pipeline schemes of
Figs. 8-9 — the machinery behind Table I row 2.

Model assumptions (mirroring ReGAN [13]):

* FCNN layers map as their equivalent zero-inserted convolution
  (Fig. 7a), so their crossbar geometry is the ``Cin*k*k x Cout``
  matrix already encoded in :class:`~repro.workloads.specs.LayerSpec`.
* The iteration cycle counts come from
  :mod:`repro.core.gan_pipeline`; the cycle *time* is the slowest
  layer latency across both subnetworks.
* MVM sweep accounting per iteration (per batch element):

  - dataflow (1): D forward + D error backward + D weight-gradient
    = 3 D sweeps;
  - dataflow (2): 1 G forward + 3 D sweeps;
  - dataflow (3): G forward + D forward + D error backward (no dW) +
    G error backward + G weight-gradient = 2 D + 3 G sweeps.

  **Computation sharing** removes the duplicated forward pass of
  dataflows (2)/(3): minus one G forward and one D forward.
* **Spatial parallelism** duplicates D: twice the D arrays (static
  power, update writes) in exchange for hiding dataflow (1).
* D and G are each updated once per iteration; every cell of every
  copy is rewritten.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.arch.components import (
    EnergyBreakdown,
    array_subcycle_energy,
    buffer_transfer_energy,
    static_power,
    weight_write_energy,
)
from repro.arch.gpu import GpuModel
from repro.arch.params import DEFAULT_TECH, XbarTechParams
from repro.core.gan_pipeline import SCHEME_COSTS, SCHEMES, iteration_cycles
from repro.core.mapping import LayerMapping, MappingConfig, balance_duplication
from repro.core.pipelayer import ACCUMULATOR_BITS, TRAINING_ARRAY_FACTOR
from repro.utils.validation import check_choice, check_positive
from repro.workloads.suite import NetworkSpec


@dataclass(frozen=True)
class ReGANReport:
    """Timing/energy of one GAN training iteration on ReGAN."""

    dataset: str
    scheme: str
    batch: int
    cycle_time: float
    cycles_per_iteration: int
    time_per_iteration: float
    energy_per_iteration: EnergyBreakdown
    total_arrays: int
    gpu_time_per_iteration: float
    gpu_energy_per_iteration: float

    @property
    def speedup(self) -> float:
        """ReGAN speedup over the GPU baseline."""
        return self.gpu_time_per_iteration / self.time_per_iteration

    @property
    def energy_saving(self) -> float:
        """GPU energy / ReGAN energy per iteration."""
        return self.gpu_energy_per_iteration / self.energy_per_iteration.total

    def summary(self) -> str:
        return (
            f"{self.dataset} [{self.scheme}, B={self.batch}]: "
            f"{self.cycles_per_iteration} cycles x "
            f"{self.cycle_time * 1e6:.2f}us = "
            f"{self.time_per_iteration * 1e3:.3f} ms/iter; "
            f"speedup {self.speedup:.1f}x, "
            f"energy saving {self.energy_saving:.1f}x"
        )


class ReGANModel:
    """ReGAN deployed for one (G, D) pair under an array budget."""

    def __init__(
        self,
        generator: NetworkSpec,
        discriminator: NetworkSpec,
        array_budget: int = 262144,
        scheme: str = "sp_cs",
        tech: XbarTechParams = DEFAULT_TECH,
        mapping_config: Optional[MappingConfig] = None,
        gpu: Optional[GpuModel] = None,
        dataset: str = "gan",
    ) -> None:
        check_positive("array_budget", array_budget)
        check_choice("scheme", scheme, SCHEMES)
        self.generator = generator
        self.discriminator = discriminator
        self.scheme = scheme
        self.tech = tech
        self.config = mapping_config or MappingConfig()
        self.gpu = gpu or GpuModel()
        self.dataset = dataset
        self.d_copies = SCHEME_COSTS[scheme].d_copies
        self.storage_factor = SCHEME_COSTS[scheme].intermediate_storage_factor

        # Split the forward-copy budget between G and D in proportion to
        # their single-copy footprints, accounting for training
        # transposes and SP's duplicate of D.
        forward_budget = array_budget // TRAINING_ARRAY_FACTOR
        g_single = self._single_copy_arrays(generator)
        d_single = self._single_copy_arrays(discriminator) * self.d_copies
        total_single = g_single + d_single
        g_budget = max(g_single, forward_budget * g_single // total_single)
        d_budget = max(
            d_single, (forward_budget - g_budget)
        ) // self.d_copies
        self.g_mappings: Dict[str, LayerMapping] = balance_duplication(
            generator, g_budget, self.config
        )
        self.d_mappings: Dict[str, LayerMapping] = balance_duplication(
            discriminator, d_budget, self.config
        )

    def _single_copy_arrays(self, network: NetworkSpec) -> int:
        """Arrays for one undulplicated copy of a network."""
        return sum(
            LayerMapping(layer, self.config, 1).total_arrays
            for layer in network.matrix_layers
        )

    # -- structure ------------------------------------------------------------
    @property
    def total_arrays(self) -> int:
        """Deployed arrays: G + (copies of) D, with training transposes."""
        g_arrays = sum(m.total_arrays for m in self.g_mappings.values())
        d_arrays = sum(m.total_arrays for m in self.d_mappings.values())
        return TRAINING_ARRAY_FACTOR * (g_arrays + d_arrays * self.d_copies)

    @property
    def cycle_time(self) -> float:
        """Slowest layer latency across both subnetworks."""
        worst = max(
            m.subcycles_per_image
            for mappings in (self.g_mappings, self.d_mappings)
            for m in mappings.values()
        )
        return worst * self.tech.subcycle_time

    # -- timing ------------------------------------------------------------------
    def cycles_per_iteration(self, batch: int) -> int:
        """Fig. 8/9 cycle count for one iteration under the scheme."""
        return iteration_cycles(
            self.discriminator.depth, self.generator.depth, batch, self.scheme
        )

    def time_per_iteration(self, batch: int) -> float:
        """Wall time of one GAN training iteration."""
        return self.cycles_per_iteration(batch) * self.cycle_time

    # -- energy --------------------------------------------------------------------
    def _sweep_energy(self, mappings: Dict[str, LayerMapping]) -> float:
        """Dynamic energy of one full MVM sweep of one subnetwork."""
        per_subcycle = array_subcycle_energy(
            self.tech, self.config.array_rows, self.config.array_cols
        )
        activations = sum(
            m.array_activations_per_image for m in mappings.values()
        )
        return activations * per_subcycle

    def _sweep_counts(self) -> Dict[str, float]:
        """MVM sweeps of G and D per batch element per iteration."""
        g_sweeps = 1.0 + 3.0  # dataflow (2) forward + dataflow (3)
        d_sweeps = 3.0 + 3.0 + 2.0  # dataflows (1) + (2) + (3)
        if self.scheme in ("cs", "sp_cs"):
            g_sweeps -= 1.0  # shared G forward of dataflows (2)/(3)
            d_sweeps -= 1.0  # shared D forward
        return {"g": g_sweeps, "d": d_sweeps}

    def _buffer_energy_per_image(self, network_mappings) -> float:
        """Drive reads + result writes for one sweep of one network."""
        drive_bits = sum(
            m.layer.output_vectors
            * m.layer.matrix_rows
            * self.config.activation_bits
            for m in network_mappings.values()
        )
        result_bits = sum(
            m.layer.output_size * ACCUMULATOR_BITS
            for m in network_mappings.values()
        )
        return buffer_transfer_energy(self.tech, drive_bits + result_bits)

    def _update_energy(self) -> float:
        """Rewriting every weight cell of every copy once per iteration."""
        g_cells = sum(m.cells for m in self.g_mappings.values())
        d_cells = sum(m.cells for m in self.d_mappings.values())
        cells = TRAINING_ARRAY_FACTOR * (
            g_cells + d_cells * self.d_copies
        )
        return weight_write_energy(self.tech, cells)

    def static_power_watts(self) -> float:
        """Always-on chip power."""
        return static_power(self.tech, self.total_arrays)

    def energy_per_iteration(self, batch: int) -> EnergyBreakdown:
        """Full energy ledger of one training iteration."""
        check_positive("batch", batch)
        sweeps = self._sweep_counts()
        mvm = batch * (
            sweeps["g"] * self._sweep_energy(self.g_mappings)
            + sweeps["d"] * self._sweep_energy(self.d_mappings)
        )
        buffer = batch * self.storage_factor * (
            sweeps["g"] * self._buffer_energy_per_image(self.g_mappings)
            + sweeps["d"] * self._buffer_energy_per_image(self.d_mappings)
        )
        update = self._update_energy()
        static = self.static_power_watts() * self.time_per_iteration(batch)
        return EnergyBreakdown(
            mvm=mvm, buffer=buffer, weight_write=update, static=static
        )

    # -- event counters --------------------------------------------------------------
    def record_event_counters(self, tel, batch: int = 32) -> None:
        """Emit one training iteration's work as physical event counters.

        The ReGAN twin of
        :meth:`repro.core.pipelayer.PipeLayerModel.record_event_counters`:
        the same event grammar the crossbar engine emits, scaled to one
        iteration, so pricing the counters through
        :func:`repro.arch.components.event_costs` reconstructs
        :meth:`energy_per_iteration` exactly.
        """
        check_positive("batch", batch)
        sweeps = self._sweep_counts()

        def activations(mappings: Dict[str, LayerMapping]) -> float:
            return sum(
                m.array_activations_per_image for m in mappings.values()
            )

        def sweep_bits(mappings: Dict[str, LayerMapping]) -> float:
            drive_bits = sum(
                m.layer.output_vectors
                * m.layer.matrix_rows
                * self.config.activation_bits
                for m in mappings.values()
            )
            result_bits = sum(
                m.layer.output_size * ACCUMULATOR_BITS
                for m in mappings.values()
            )
            return drive_bits + result_bits

        reads = batch * (
            sweeps["g"] * activations(self.g_mappings)
            + sweeps["d"] * activations(self.d_mappings)
        )
        tel.count("array_reads", reads)
        tel.count("dac.line_fires", reads * self.config.array_rows)
        tel.count("adc.samples", reads * self.config.array_cols)
        tel.count("shift_adds", reads * self.config.array_cols)
        tel.count(
            "buffer.bits",
            batch * self.storage_factor * (
                sweeps["g"] * sweep_bits(self.g_mappings)
                + sweeps["d"] * sweep_bits(self.d_mappings)
            ),
        )
        g_cells = sum(m.cells for m in self.g_mappings.values())
        d_cells = sum(m.cells for m in self.d_mappings.values())
        tel.count(
            "cell_writes",
            TRAINING_ARRAY_FACTOR * (g_cells + d_cells * self.d_copies),
        )
        occupancy = self.time_per_iteration(batch) / self.tech.subcycle_time
        tel.count("static.array_subcycles", self.total_arrays * occupancy)
        tel.count("static.controller_subcycles", occupancy)

    # -- comparison ------------------------------------------------------------------
    def report(self, batch: int = 32) -> ReGANReport:
        """Full comparison record against the GPU baseline."""
        check_positive("batch", batch)
        return ReGANReport(
            dataset=self.dataset,
            scheme=self.scheme,
            batch=batch,
            cycle_time=self.cycle_time,
            cycles_per_iteration=self.cycles_per_iteration(batch),
            time_per_iteration=self.time_per_iteration(batch),
            energy_per_iteration=self.energy_per_iteration(batch),
            total_arrays=self.total_arrays,
            gpu_time_per_iteration=self.gpu.gan_iteration_time(
                self.generator, self.discriminator, batch
            ),
            gpu_energy_per_iteration=self.gpu.gan_iteration_energy(
                self.generator, self.discriminator, batch
            ),
        )
