"""Event-driven execution of the GAN training schedules (Figs. 8-9).

:mod:`repro.core.gan_pipeline` gives closed-form cycle counts for one
GAN training iteration under each scheme.  This module *executes* those
schedules — every batch element advances through every pipeline stage
of every dataflow, on explicit hardware resources (G's stage chain, one
or two copies of D's stage chain) — and returns an event table whose
makespan the tests compare against the formulas.

Resources are modelled at stage granularity: stage ``s`` of a network
copy can hold one batch element per cycle (the same structural-hazard
rule as :mod:`repro.core.schedule`).  The schemes differ in how the
three dataflows share those resources:

* ``pipelined`` — dataflows run back-to-back on a single D copy.
* ``sp`` — dataflow (1) uses D copy B while dataflow (2) uses copy A,
  concurrently.
* ``cs`` — dataflows (2) and (3) merge: one forward pass through G+D,
  then two backward branches; the D branch ends (and D updates) while
  the G branch continues.
* ``sp_cs`` — both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.gan_pipeline import (
    SCHEMES,
    iteration_cycles,
    sweep_d_fake,
    sweep_d_real,
    sweep_g,
)
from repro.telemetry import NULL_COLLECTOR, TelemetryLike
from repro.utils.validation import check_choice, check_positive


@dataclass(frozen=True)
class GanEvent:
    """One occupancy record: (cycle, resource, stage, element, dataflow).

    ``resource`` names the hardware chain (``"G"``, ``"D0"``, ``"D1"``);
    update events use resource ``"ctrl"`` and stage ``-1``.
    """

    cycle: int
    resource: str
    stage: int
    element: int
    dataflow: str


@dataclass
class GanScheduleResult:
    """Event table of one executed GAN iteration."""

    events: List[GanEvent]
    scheme: str
    l_d: int
    l_g: int
    batch: int

    @property
    def makespan(self) -> int:
        if not self.events:
            return 0
        return max(event.cycle for event in self.events) + 1

    def updates(self) -> List[GanEvent]:
        """The weight-update events (D and G), in cycle order."""
        return sorted(
            (e for e in self.events if e.dataflow.endswith("update")),
            key=lambda e: e.cycle,
        )

    def check_structural_hazards(self) -> None:
        """No (resource, stage) may hold two elements in one cycle."""
        seen: Set[Tuple[int, str, int]] = set()
        for event in self.events:
            if event.stage < 0:
                continue
            key = (event.cycle, event.resource, event.stage)
            if key in seen:
                raise AssertionError(
                    f"hazard: {event.resource} stage {event.stage} "
                    f"double-booked at cycle {event.cycle}"
                )
            seen.add(key)

    def check_update_ordering(self) -> None:
        """D updates after dataflows (1)+(2) drain; G updates after (3).

        In CS schemes the D update (T11) must precede the G update
        (T14), both inside the merged pass.
        """
        updates = {e.dataflow: e.cycle for e in self.updates()}
        if "D update" not in updates or "G update" not in updates:
            raise AssertionError(f"missing updates: {sorted(updates)}")
        d_inputs = [
            e.cycle
            for e in self.events
            if e.dataflow in ("d_real", "d_fake", "merged_d_branch")
            and e.stage >= 0
        ]
        if updates["D update"] <= max(d_inputs):
            raise AssertionError("D updated before its derivatives drained")
        g_inputs = [
            e.cycle
            for e in self.events
            if e.dataflow in ("g_train", "merged_g_branch") and e.stage >= 0
        ]
        if updates["G update"] <= max(g_inputs):
            raise AssertionError("G updated before its derivatives drained")
        if self.scheme in ("cs", "sp_cs"):
            if not updates["D update"] < updates["G update"]:
                raise AssertionError(
                    "computation sharing must update D (T11) before G (T14)"
                )

    def validate(self) -> None:
        """All structural checks."""
        self.check_structural_hazards()
        self.check_update_ordering()


def _run_phase(
    events: List[GanEvent],
    start: int,
    batch: int,
    stages: List[Tuple[str, int]],
    dataflow: str,
) -> int:
    """Pipeline a batch through a stage chain; returns drain cycle + 1.

    ``stages`` maps pipeline position to (resource, stage-in-resource).
    Element ``b`` enters at ``start + b``; the return value is the first
    cycle after the last element leaves the last stage.
    """
    for element in range(batch):
        entry = start + element
        for position, (resource, stage) in enumerate(stages):
            events.append(
                GanEvent(
                    cycle=entry + position,
                    resource=resource,
                    stage=stage,
                    element=element,
                    dataflow=dataflow,
                )
            )
    return start + batch - 1 + len(stages)


def _d_chain(l_d: int, copy: str) -> List[Tuple[str, int]]:
    """D forward + loss + backward stage chain on one copy."""
    forward = [(copy, s) for s in range(l_d)]
    loss = [(copy, l_d)]
    backward = [(copy, l_d + 1 + s) for s in range(l_d)]
    return forward + loss + backward


def _g_forward(l_g: int) -> List[Tuple[str, int]]:
    return [("G", s) for s in range(l_g)]


def _g_backward(l_g: int) -> List[Tuple[str, int]]:
    return [("G", l_g + s) for s in range(l_g)]


def _d_forward(l_d: int, copy: str) -> List[Tuple[str, int]]:
    return [(copy, s) for s in range(l_d)]


def _d_backward(l_d: int, copy: str) -> List[Tuple[str, int]]:
    return [(copy, l_d + 1 + s) for s in range(l_d)]


def _record_gan_telemetry(
    tel: TelemetryLike, result: GanScheduleResult
) -> None:
    """Publish one executed GAN iteration's occupancy counters.

    Per-resource busy cycles (``resource[<name>].busy_cycles``), event
    and update totals, and the makespan gauge — all derived from the
    deterministic event table.
    """
    if not tel:
        return
    busy: Dict[str, int] = {}
    updates = 0
    for event in result.events:
        if event.stage >= 0:
            busy[event.resource] = busy.get(event.resource, 0) + 1
        elif event.dataflow.endswith("update"):
            updates += 1
    for resource in sorted(busy):
        tel.count(f"resource[{resource}].busy_cycles", busy[resource])
    tel.count("events", len(result.events))
    tel.count("updates", updates)
    tel.set("makespan_cycles", result.makespan)


def simulate_gan_iteration(
    l_d: int,
    l_g: int,
    batch: int,
    scheme: str,
    collector: Optional[TelemetryLike] = None,
) -> GanScheduleResult:
    """Execute one GAN training iteration under ``scheme``.

    Returns the full event table; ``makespan`` equals
    :func:`repro.core.gan_pipeline.iteration_cycles` for every scheme
    (asserted by the test suite).  ``collector`` receives per-resource
    occupancy counters and a ``simulate[<scheme>]`` timing span.
    """
    check_positive("l_d", l_d)
    check_positive("l_g", l_g)
    check_positive("batch", batch)
    check_choice("scheme", scheme, SCHEMES)
    tel = collector if collector is not None else NULL_COLLECTOR
    with tel.span(f"simulate[{scheme}]"):
        result = _simulate_gan_iteration(l_d, l_g, batch, scheme)
    _record_gan_telemetry(tel, result)
    return result


def _simulate_gan_iteration(
    l_d: int, l_g: int, batch: int, scheme: str
) -> GanScheduleResult:
    """The schedule executor proper (validated args, no telemetry)."""
    events: List[GanEvent] = []

    d_real_chain = _d_chain(l_d, "D0")
    d_real_chain_copy1 = _d_chain(l_d, "D1")
    d_fake_chain = (
        _g_forward(l_g) + _d_chain(l_d, "D0")
    )
    g_chain = (
        _g_forward(l_g)
        + _d_forward(l_d, "D0")
        + [("D0", l_d)]            # loss stage
        + _d_backward(l_d, "D0")
        + _g_backward(l_g)
    )

    if scheme == "unpipelined":
        cycle = 0
        for element in range(batch):
            for position, (resource, stage) in enumerate(d_real_chain):
                events.append(GanEvent(cycle + position, resource, stage,
                                       element, "d_real"))
            cycle += len(d_real_chain)
            for position, (resource, stage) in enumerate(d_fake_chain):
                events.append(GanEvent(cycle + position, resource, stage,
                                       element, "d_fake"))
            cycle += len(d_fake_chain)
        events.append(GanEvent(cycle, "ctrl", -1, 0, "D update"))
        cycle += 1
        for element in range(batch):
            for position, (resource, stage) in enumerate(g_chain):
                events.append(GanEvent(cycle + position, resource, stage,
                                       element, "g_train"))
            cycle += len(g_chain)
        events.append(GanEvent(cycle, "ctrl", -1, 0, "G update"))
        return GanScheduleResult(events, scheme, l_d, l_g, batch)

    if scheme == "pipelined":
        end1 = _run_phase(events, 0, batch, d_real_chain, "d_real")
        end2 = _run_phase(events, end1, batch, d_fake_chain, "d_fake")
        events.append(GanEvent(end2, "ctrl", -1, 0, "D update"))
        end3 = _run_phase(events, end2 + 1, batch, g_chain, "g_train")
        events.append(GanEvent(end3, "ctrl", -1, 0, "G update"))
        return GanScheduleResult(events, scheme, l_d, l_g, batch)

    if scheme == "sp":
        # Phase (1) on D copy 1, phase (2) on D copy 0, concurrently.
        end1 = _run_phase(events, 0, batch, d_real_chain_copy1, "d_real")
        end2 = _run_phase(events, 0, batch, d_fake_chain, "d_fake")
        d_update = max(end1, end2)
        events.append(GanEvent(d_update, "ctrl", -1, 0, "D update"))
        end3 = _run_phase(events, d_update + 1, batch, g_chain, "g_train")
        events.append(GanEvent(end3, "ctrl", -1, 0, "G update"))
        return GanScheduleResult(events, scheme, l_d, l_g, batch)

    # cs / sp_cs: merged pass.  One shared forward (G then D) feeds two
    # backward branches; the D branch drains sweep_d_fake stages after
    # entry, the G branch sweep_g stages.  The branch stages after the
    # shared prefix occupy different hardware (stored derivatives vs
    # G's backward chain), so only the shared prefix is hazard-relevant.
    shared_prefix = _g_forward(l_g) + _d_forward(l_d, "D0") + [("D0", l_d)]
    d_branch_tail = _d_backward(l_d, "D0")
    g_branch_tail = [("Dbwd2", s) for s in range(l_d)] + _g_backward(l_g)

    phase1_chain = d_real_chain_copy1 if scheme == "sp_cs" else d_real_chain
    phase1_start = 0 if scheme == "sp_cs" else None

    if scheme == "cs":
        # Phase (1) first, then the merged pass, on the single D copy.
        merged_start = _run_phase(events, 0, batch, phase1_chain, "d_real")
    else:
        _run_phase(events, 0, batch, phase1_chain, "d_real")
        merged_start = 0

    d_branch_end = _run_phase(
        events, merged_start, batch, shared_prefix + d_branch_tail,
        "merged_d_branch",
    )
    # Re-run bookkeeping for the G branch without double-booking the
    # shared prefix: only the tail stages are emitted as G-branch events.
    for element in range(batch):
        entry = merged_start + element + len(shared_prefix)
        for position, (resource, stage) in enumerate(g_branch_tail):
            events.append(
                GanEvent(entry + position, resource, stage, element,
                         "merged_g_branch")
            )
    g_branch_end = (
        merged_start + batch - 1 + len(shared_prefix) + len(g_branch_tail)
    )

    # T11: D updates right after its branch (and, for sp_cs, after
    # phase (1), which always drains earlier or at the same cycle since
    # its sweep is the shortest).
    phase1_end = (0 if scheme == "cs" else batch - 1 + len(phase1_chain))
    d_update_cycle = max(d_branch_end, phase1_end)
    events.append(GanEvent(d_update_cycle, "ctrl", -1, 0, "D update"))
    # T14: G updates after its branch drains.
    events.append(GanEvent(g_branch_end, "ctrl", -1, 0, "G update"))
    return GanScheduleResult(events, scheme, l_d, l_g, batch)


def verify_scheme(
    l_d: int,
    l_g: int,
    batch: int,
    scheme: str,
    collector: Optional[TelemetryLike] = None,
) -> Dict:
    """Run one scheme and compare against the closed form.

    Returns a record with both cycle counts; raises on any structural
    violation.  Used by tests and the Fig. 8/9 benchmarks.
    """
    result = simulate_gan_iteration(l_d, l_g, batch, scheme, collector=collector)
    result.validate()
    formula = iteration_cycles(l_d, l_g, batch, scheme)
    return {
        "scheme": scheme,
        "simulated": result.makespan,
        "formula": formula,
        "match": result.makespan == formula,
    }
