"""Table I estimator: aggregate speedup / energy saving vs the GPU.

"Compared to the GPU platform, on average, PipeLayer achieves 42.45x
speedup and 7.17x energy saving ... ReGAN obtains even higher benefit —
240x improvement in performance and 94x energy reduction"
(Sec. III-C).  The functions here run the accelerator models over the
paper's workload suites and aggregate with the geometric mean, giving
the two rows of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.pipelayer import PipeLayerModel, PipeLayerReport
from repro.core.regan import ReGANModel, ReGANReport
from repro.arch.params import DEFAULT_TECH, XbarTechParams
from repro.utils.validation import check_positive
from repro.workloads.suite import pipelayer_suite, regan_suite

#: Table I, as printed in the paper.
PAPER_PIPELAYER_SPEEDUP = 42.45
PAPER_PIPELAYER_ENERGY = 7.17
PAPER_REGAN_SPEEDUP = 240.0
PAPER_REGAN_ENERGY = 94.0

#: Default deployment sizes (physical 128x128 arrays).  PipeLayer is a
#: per-bank design; ReGAN deploys across the whole ReRAM main memory,
#: hence the larger budget.
PIPELAYER_ARRAY_BUDGET = 262144
REGAN_ARRAY_BUDGET = 1048576


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        raise ValueError("geometric mean of an empty sequence")
    if np.any(array <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(array))))


@dataclass(frozen=True)
class TableOneRow:
    """One accelerator row of Table I (measured by this reproduction)."""

    accelerator: str
    speedup: float
    energy_saving: float
    paper_speedup: float
    paper_energy_saving: float
    per_workload: tuple

    @property
    def speedup_ratio_to_paper(self) -> float:
        """measured / paper speedup (1.0 = exact match)."""
        return self.speedup / self.paper_speedup

    @property
    def energy_ratio_to_paper(self) -> float:
        """measured / paper energy saving."""
        return self.energy_saving / self.paper_energy_saving

    def summary(self) -> str:
        lines = [
            f"{self.accelerator}: speedup {self.speedup:.2f}x "
            f"(paper {self.paper_speedup}x), energy saving "
            f"{self.energy_saving:.2f}x (paper {self.paper_energy_saving}x)"
        ]
        for name, speedup, energy in self.per_workload:
            lines.append(
                f"  {name:<16s} speedup {speedup:8.1f}x   "
                f"energy saving {energy:6.1f}x"
            )
        return "\n".join(lines)


def pipelayer_table1(
    array_budget: int = PIPELAYER_ARRAY_BUDGET,
    batch: int = 32,
    tech: XbarTechParams = DEFAULT_TECH,
    training: bool = True,
) -> TableOneRow:
    """Table I row 1: PipeLayer over the MNIST/ImageNet suite."""
    check_positive("batch", batch)
    reports: List[PipeLayerReport] = []
    for spec in pipelayer_suite():
        model = PipeLayerModel(spec, array_budget=array_budget, tech=tech)
        reports.append(model.report(batch=batch, training=training))
    return TableOneRow(
        accelerator="PipeLayer",
        speedup=geometric_mean([r.speedup for r in reports]),
        energy_saving=geometric_mean([r.energy_saving for r in reports]),
        paper_speedup=PAPER_PIPELAYER_SPEEDUP,
        paper_energy_saving=PAPER_PIPELAYER_ENERGY,
        per_workload=tuple(
            (r.network, r.speedup, r.energy_saving) for r in reports
        ),
    )


def regan_table1(
    array_budget: int = REGAN_ARRAY_BUDGET,
    batch: int = 32,
    scheme: str = "sp_cs",
    tech: XbarTechParams = DEFAULT_TECH,
) -> TableOneRow:
    """Table I row 2: ReGAN over the four-dataset DCGAN suite."""
    check_positive("batch", batch)
    reports: List[ReGANReport] = []
    for name, (generator, discriminator) in regan_suite().items():
        model = ReGANModel(
            generator,
            discriminator,
            array_budget=array_budget,
            scheme=scheme,
            tech=tech,
            dataset=name,
        )
        reports.append(model.report(batch=batch))
    return TableOneRow(
        accelerator="ReGAN",
        speedup=geometric_mean([r.speedup for r in reports]),
        energy_saving=geometric_mean([r.energy_saving for r in reports]),
        paper_speedup=PAPER_REGAN_SPEEDUP,
        paper_energy_saving=PAPER_REGAN_ENERGY,
        per_workload=tuple(
            (r.dataset, r.speedup, r.energy_saving) for r in reports
        ),
    )


def table1(
    batch: int = 32, tech: XbarTechParams = DEFAULT_TECH
) -> Dict[str, TableOneRow]:
    """Both rows of Table I."""
    return {
        "PipeLayer": pipelayer_table1(batch=batch, tech=tech),
        "ReGAN": regan_table1(batch=batch, tech=tech),
    }


#: Documented tolerance of the counter-vs-analytic consistency gate:
#: both paths multiply the same operation counts by the same
#: technology costs, differing only in float summation order, so the
#: relative disagreement must stay within a few ULP-scale rounding
#: steps.
MEASURED_CONSISTENCY_RTOL = 1e-9


def measured_table1(
    batch: int = 32,
    tech: XbarTechParams = DEFAULT_TECH,
    collector=None,
) -> Dict[str, Any]:
    """Table I energy savings derived from *counters*, not formulas.

    Runs both accelerator models in event-counter mode
    (``record_event_counters``), prices the counters through
    :func:`repro.telemetry.attribute_energy` with the
    :func:`repro.arch.components.event_costs` table, and rebuilds the
    energy-saving ratios from the attributed totals.  The closed-form
    :func:`table1` path is the consistency oracle: per workload,
    ``consistency`` records the worst relative disagreement between
    the counter-derived total and the analytic
    ``EnergyBreakdown.total``, and the gate asserts it stays within
    :data:`MEASURED_CONSISTENCY_RTOL`.

    Counters land under ``table1/pipelayer[<net>]/`` and
    ``table1/regan[<dataset>]/`` on ``collector`` when given (and on a
    private collector otherwise), so the same counter tree feeds
    ``repro report --energy`` and the ``energy_attribution`` bench.
    """
    from repro.arch.components import event_costs
    from repro.telemetry import Collector, attribute_energy

    check_positive("batch", batch)
    tel = collector if collector is not None else Collector(
        record_spans=False
    )
    costs = event_costs(tech)
    analytic = table1(batch=batch, tech=tech)
    rows: Dict[str, Any] = {}
    worst = 0.0

    def measure(prefix: str, analytic_total: float,
                gpu_energy: float) -> Dict[str, Any]:
        nonlocal worst
        report = attribute_energy(
            {
                path: value
                for path, value in tel.counters().items()
                if path.startswith(prefix + "/")
            },
            costs,
            source_name=prefix,
        )
        measured = report["totals"]["total_joules"]
        error = abs(measured - analytic_total) / analytic_total
        worst = max(worst, error)
        return {
            "measured_joules": measured,
            "analytic_joules": analytic_total,
            "consistency": error,
            "energy_saving": gpu_energy / measured,
            "average_watts": report["totals"]["average_watts"],
        }

    pipelayer_workloads: Dict[str, Any] = {}
    for spec in pipelayer_suite():
        model = PipeLayerModel(
            spec, array_budget=PIPELAYER_ARRAY_BUDGET, tech=tech
        )
        scope = tel.scope(f"table1/pipelayer[{spec.name.lower()}]")
        model.record_event_counters(scope, batch=batch, training=True)
        report = model.report(batch=batch, training=True)
        pipelayer_workloads[spec.name] = measure(
            f"table1/pipelayer[{spec.name.lower()}]",
            report.energy_per_image.total,
            report.gpu_energy_per_image,
        )
    regan_workloads: Dict[str, Any] = {}
    for name, (generator, discriminator) in regan_suite().items():
        model = ReGANModel(
            generator,
            discriminator,
            array_budget=REGAN_ARRAY_BUDGET,
            scheme="sp_cs",
            tech=tech,
            dataset=name,
        )
        scope = tel.scope(f"table1/regan[{name.lower()}]")
        model.record_event_counters(scope, batch=batch)
        report = model.report(batch=batch)
        regan_workloads[name] = measure(
            f"table1/regan[{name.lower()}]",
            report.energy_per_iteration.total,
            report.gpu_energy_per_iteration,
        )
    rows = {
        "PipeLayer": {
            "workloads": pipelayer_workloads,
            "energy_saving_geomean": geometric_mean(
                [w["energy_saving"] for w in pipelayer_workloads.values()]
            ),
            "analytic_energy_saving_geomean": analytic[
                "PipeLayer"
            ].energy_saving,
            "paper_energy_saving": PAPER_PIPELAYER_ENERGY,
        },
        "ReGAN": {
            "workloads": regan_workloads,
            "energy_saving_geomean": geometric_mean(
                [w["energy_saving"] for w in regan_workloads.values()]
            ),
            "analytic_energy_saving_geomean": analytic[
                "ReGAN"
            ].energy_saving,
            "paper_energy_saving": PAPER_REGAN_ENERGY,
        },
    }
    if worst > MEASURED_CONSISTENCY_RTOL:
        raise ValueError(
            f"counter-derived Table I energy disagrees with the "
            f"analytic estimator: worst relative error {worst:.3e} > "
            f"{MEASURED_CONSISTENCY_RTOL}"
        )
    return {
        "batch": batch,
        "consistency_rtol": MEASURED_CONSISTENCY_RTOL,
        "worst_consistency": worst,
        "rows": rows,
    }
