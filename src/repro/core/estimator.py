"""Table I estimator: aggregate speedup / energy saving vs the GPU.

"Compared to the GPU platform, on average, PipeLayer achieves 42.45x
speedup and 7.17x energy saving ... ReGAN obtains even higher benefit —
240x improvement in performance and 94x energy reduction"
(Sec. III-C).  The functions here run the accelerator models over the
paper's workload suites and aggregate with the geometric mean, giving
the two rows of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.pipelayer import PipeLayerModel, PipeLayerReport
from repro.core.regan import ReGANModel, ReGANReport
from repro.arch.params import DEFAULT_TECH, XbarTechParams
from repro.utils.validation import check_positive
from repro.workloads.suite import pipelayer_suite, regan_suite

#: Table I, as printed in the paper.
PAPER_PIPELAYER_SPEEDUP = 42.45
PAPER_PIPELAYER_ENERGY = 7.17
PAPER_REGAN_SPEEDUP = 240.0
PAPER_REGAN_ENERGY = 94.0

#: Default deployment sizes (physical 128x128 arrays).  PipeLayer is a
#: per-bank design; ReGAN deploys across the whole ReRAM main memory,
#: hence the larger budget.
PIPELAYER_ARRAY_BUDGET = 262144
REGAN_ARRAY_BUDGET = 1048576


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        raise ValueError("geometric mean of an empty sequence")
    if np.any(array <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(array))))


@dataclass(frozen=True)
class TableOneRow:
    """One accelerator row of Table I (measured by this reproduction)."""

    accelerator: str
    speedup: float
    energy_saving: float
    paper_speedup: float
    paper_energy_saving: float
    per_workload: tuple

    @property
    def speedup_ratio_to_paper(self) -> float:
        """measured / paper speedup (1.0 = exact match)."""
        return self.speedup / self.paper_speedup

    @property
    def energy_ratio_to_paper(self) -> float:
        """measured / paper energy saving."""
        return self.energy_saving / self.paper_energy_saving

    def summary(self) -> str:
        lines = [
            f"{self.accelerator}: speedup {self.speedup:.2f}x "
            f"(paper {self.paper_speedup}x), energy saving "
            f"{self.energy_saving:.2f}x (paper {self.paper_energy_saving}x)"
        ]
        for name, speedup, energy in self.per_workload:
            lines.append(
                f"  {name:<16s} speedup {speedup:8.1f}x   "
                f"energy saving {energy:6.1f}x"
            )
        return "\n".join(lines)


def pipelayer_table1(
    array_budget: int = PIPELAYER_ARRAY_BUDGET,
    batch: int = 32,
    tech: XbarTechParams = DEFAULT_TECH,
    training: bool = True,
) -> TableOneRow:
    """Table I row 1: PipeLayer over the MNIST/ImageNet suite."""
    check_positive("batch", batch)
    reports: List[PipeLayerReport] = []
    for spec in pipelayer_suite():
        model = PipeLayerModel(spec, array_budget=array_budget, tech=tech)
        reports.append(model.report(batch=batch, training=training))
    return TableOneRow(
        accelerator="PipeLayer",
        speedup=geometric_mean([r.speedup for r in reports]),
        energy_saving=geometric_mean([r.energy_saving for r in reports]),
        paper_speedup=PAPER_PIPELAYER_SPEEDUP,
        paper_energy_saving=PAPER_PIPELAYER_ENERGY,
        per_workload=tuple(
            (r.network, r.speedup, r.energy_saving) for r in reports
        ),
    )


def regan_table1(
    array_budget: int = REGAN_ARRAY_BUDGET,
    batch: int = 32,
    scheme: str = "sp_cs",
    tech: XbarTechParams = DEFAULT_TECH,
) -> TableOneRow:
    """Table I row 2: ReGAN over the four-dataset DCGAN suite."""
    check_positive("batch", batch)
    reports: List[ReGANReport] = []
    for name, (generator, discriminator) in regan_suite().items():
        model = ReGANModel(
            generator,
            discriminator,
            array_budget=array_budget,
            scheme=scheme,
            tech=tech,
            dataset=name,
        )
        reports.append(model.report(batch=batch))
    return TableOneRow(
        accelerator="ReGAN",
        speedup=geometric_mean([r.speedup for r in reports]),
        energy_saving=geometric_mean([r.energy_saving for r in reports]),
        paper_speedup=PAPER_REGAN_SPEEDUP,
        paper_energy_saving=PAPER_REGAN_ENERGY,
        per_workload=tuple(
            (r.dataset, r.speedup, r.energy_saving) for r in reports
        ),
    )


def table1(
    batch: int = 32, tech: XbarTechParams = DEFAULT_TECH
) -> Dict[str, TableOneRow]:
    """Both rows of Table I."""
    return {
        "PipeLayer": pipelayer_table1(batch=batch, tech=tech),
        "ReGAN": regan_table1(batch=batch, tech=tech),
    }
