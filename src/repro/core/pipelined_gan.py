"""Functional execution of ReGAN's GAN training pipeline (Fig. 8).

The GAN analogue of :mod:`repro.core.pipelined_trainer`: each of the
three dataflows is compiled to a *stage program* — forward stages
through G and/or D, a loss stage, backward stages — and a batch is
pushed through it as a pipeline wavefront, a new sample entering every
cycle, with per-(sample, stage) cache stashing and frozen weights.
The D update fires one cycle after dataflow (2) drains (the paper's
T11-equivalent), the G update after dataflow (3) (T14).

The point, as with the DNN pipeline, is a proof by execution: the
pipelined iteration produces *bit-identical* weights to the sequential
:class:`~repro.nn.gan.GANTrainer` step given the same noise — the
correctness property behind ReGAN's cycle counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.gan_pipeline import sweep_d_fake, sweep_d_real, sweep_g
from repro.core.pipelined_trainer import group_into_stages
from repro.nn.losses import BinaryCrossEntropyWithLogits
from repro.nn.network import Sequential
from repro.nn.optim import Optimizer
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class _StageOp:
    """One pipeline-stage operation of a dataflow's stage program.

    ``kind`` is ``"forward"``, ``"loss"`` or ``"backward"``;
    ``stage_index`` selects the layer group (forward/backward);
    ``forward_op`` links a backward op to the op whose caches it needs;
    ``propagate`` controls whether a backward op passes its input
    gradient on (False at the boundary where D's error does not enter
    G, dataflow 2).
    """

    kind: str
    network: Optional[str] = None
    stage_index: int = -1
    label: float = 0.0
    forward_op: int = -1
    propagate: bool = True
    training: bool = True
    keep_cache: bool = True


def fix_vbn_references(
    generator: Sequential, reference_noise: np.ndarray
) -> None:
    """Fix the generator's virtual-batch-norm statistics up front.

    ReGAN: "The reference batch is chosen once and fixed at the start
    of training" (Sec. III-B-4).  Pipelined execution *requires* this —
    a VBN layer that lazily adopts its first input would see a single
    in-flight sample rather than a batch.  Run once, before training,
    with the chosen reference noise; both the pipelined and sequential
    trainers then normalise identically.
    """
    generator.forward(
        np.asarray(reference_noise, dtype=np.float64), training=True
    )


class PipelinedGANTrainer:
    """Executes one GAN training iteration as Fig. 8's pipelines."""

    def __init__(
        self,
        generator: Sequential,
        discriminator: Sequential,
        g_optimizer: Optimizer,
        d_optimizer: Optimizer,
    ) -> None:
        self.generator = generator
        self.discriminator = discriminator
        self.g_optimizer = g_optimizer
        self.d_optimizer = d_optimizer
        self.g_stages = group_into_stages(generator)
        self.d_stages = group_into_stages(discriminator)
        self.cycles = 0

    # -- stage programs ------------------------------------------------------
    @property
    def l_g(self) -> int:
        return len(self.g_stages)

    @property
    def l_d(self) -> int:
        return len(self.d_stages)

    def _stages(self, network: str) -> List:
        return self.g_stages if network == "G" else self.d_stages

    def _program_d_real(self) -> List[_StageOp]:
        """Dataflow (1): real sample through D, label '1', D backward."""
        ops = [
            _StageOp("forward", "D", index) for index in range(self.l_d)
        ]
        ops.append(_StageOp("loss", label=1.0))
        for index in reversed(range(self.l_d)):
            ops.append(
                _StageOp(
                    "backward", "D", index,
                    forward_op=index, propagate=index > 0,
                )
            )
        return ops

    def _program_d_fake(self) -> List[_StageOp]:
        """Dataflow (2): G forward (not updated), D trained at label '0'.

        "G is used but not updated": G runs in inference mode and the
        error stops at D's first layer.
        """
        # G's caches are never consumed (no backward into G here).
        ops = [
            _StageOp(
                "forward", "G", index, training=False, keep_cache=False
            )
            for index in range(self.l_g)
        ]
        d_forward_base = len(ops)
        ops.extend(
            _StageOp("forward", "D", index) for index in range(self.l_d)
        )
        ops.append(_StageOp("loss", label=0.0))
        for index in reversed(range(self.l_d)):
            ops.append(
                _StageOp(
                    "backward", "D", index,
                    forward_op=d_forward_base + index, propagate=index > 0,
                )
            )
        return ops

    def _program_g_train(self) -> List[_StageOp]:
        """Dataflow (3): label '1', error returns through D into G."""
        ops = [
            _StageOp("forward", "G", index) for index in range(self.l_g)
        ]
        d_forward_base = len(ops)
        ops.extend(
            _StageOp("forward", "D", index) for index in range(self.l_d)
        )
        ops.append(_StageOp("loss", label=1.0))
        for index in reversed(range(self.l_d)):
            ops.append(
                _StageOp(
                    "backward", "D", index,
                    forward_op=d_forward_base + index,
                )
            )
        for index in reversed(range(self.l_g)):
            ops.append(
                _StageOp(
                    "backward", "G", index,
                    forward_op=index, propagate=index > 0,
                )
            )
        return ops

    # -- wavefront executor --------------------------------------------------
    def _run_program(
        self, program: List[_StageOp], batch_inputs: np.ndarray, batch: int
    ) -> Tuple[List[float], int]:
        """Pipeline ``batch`` samples through a stage program.

        Returns (per-sample losses, cycles consumed by the phase:
        ``len(program) + batch - 1``).
        """
        caches: Dict[Tuple[int, int], List[dict]] = {}
        values: Dict[int, np.ndarray] = {}
        losses: List[float] = [0.0] * batch
        loss_fns = [BinaryCrossEntropyWithLogits() for _ in range(batch)]
        span = len(program) + batch - 1
        for cycle in range(span):
            for sample in range(batch):
                position = cycle - sample
                if position < 0 or position >= len(program):
                    continue
                op = program[position]
                if op.kind == "forward":
                    stage = self._stages(op.network)[op.stage_index]
                    value = (
                        batch_inputs[sample : sample + 1]
                        if position == 0
                        else values[sample]
                    )
                    for layer in stage:
                        value = layer.forward(value, training=op.training)
                    if op.keep_cache:
                        caches[(sample, position)] = [
                            layer.save_cache() for layer in stage
                        ]
                    values[sample] = value
                elif op.kind == "loss":
                    loss_fn = loss_fns[sample]
                    logits = values[sample]
                    losses[sample] = loss_fn.forward(
                        logits, np.full(logits.shape, op.label)
                    )
                    values[sample] = loss_fn.backward() / batch
                else:  # backward
                    stage = self._stages(op.network)[op.stage_index]
                    stashed = caches.pop((sample, op.forward_op))
                    for layer, cache in zip(stage, stashed):
                        layer.load_cache(cache)
                    grad = values[sample]
                    for layer in reversed(stage):
                        grad = layer.backward(grad)
                    if op.propagate:
                        values[sample] = grad
                    else:
                        values.pop(sample)
        if caches:
            raise AssertionError(
                f"{len(caches)} caches left in flight after the phase"
            )
        self.cycles += span
        return losses, span

    # -- the iteration ------------------------------------------------------------
    def train_iteration(
        self,
        real_samples: np.ndarray,
        fake_noise: np.ndarray,
        g_noise: np.ndarray,
    ) -> Dict[str, float]:
        """One full iteration: dataflows (1), (2), D update, (3), G update.

        ``fake_noise`` feeds dataflow (2), ``g_noise`` dataflow (3)
        (pass the same array to emulate computation sharing's single
        draw).  Returns the mean losses and the total cycle count,
        which equals the paper's pipelined formula
        ``(2L_D + B) + (L_G + 2L_D + B) + 1 + (2L_G + 2L_D + B + 1)``.
        """
        batch = real_samples.shape[0]
        check_positive("batch", batch)
        if fake_noise.shape[0] != batch or g_noise.shape[0] != batch:
            raise ValueError("noise batches must match the real batch")
        start_cycles = self.cycles

        # Dataflow (1): real samples, derivatives accumulate in D.
        self.discriminator.zero_grad()
        real_losses, _ = self._run_program(
            self._program_d_real(), real_samples, batch
        )
        # Dataflow (2): generated samples; G accumulates nothing (its
        # backward is never invoked).
        fake_losses, _ = self._run_program(
            self._program_d_fake(), fake_noise, batch
        )
        # T11: one cycle to update D from the summed derivatives.
        self.d_optimizer.step()
        self.cycles += 1

        # Dataflow (3): G trained through a fixed D.
        self.generator.zero_grad()
        self.discriminator.zero_grad()
        g_losses, _ = self._run_program(
            self._program_g_train(), g_noise, batch
        )
        self.discriminator.zero_grad()  # D stays fixed
        self.g_optimizer.step()
        self.cycles += 1

        expected = (
            (sweep_d_real(self.l_d) + batch - 1)
            + (sweep_d_fake(self.l_d, self.l_g) + batch - 1)
            + 1
            + (sweep_g(self.l_d, self.l_g) + batch - 1)
            + 1
        )
        consumed = self.cycles - start_cycles
        if consumed != expected:
            raise AssertionError(
                f"iteration consumed {consumed} cycles, formula says "
                f"{expected}"
            )
        return {
            "d_loss_real": float(np.mean(real_losses)),
            "d_loss_fake": float(np.mean(fake_losses)),
            "g_loss": float(np.mean(g_losses)),
            "cycles": consumed,
        }
