"""Inter-layer pipeline cycle models (Sec. III-A-2, Fig. 5).

Closed-form cycle counts for training an ``L``-layer network on ``N``
inputs with batch size ``B``:

* **Sequential** (no pipeline): each input occupies the machine for its
  full forward (+backward) sweep before the next enters.  The paper:
  "the forward process takes ``L x B`` cycles, the backward computation
  takes ``(L + 1) x B`` cycles, and each weight update needs one
  cycle", i.e. ``(2L + 1)B + 1`` per batch and ``(2L + 1)N + N/B``
  total.
* **Pipelined** (Fig. 5b): a new input enters every cycle within a
  batch; the next batch waits for the weight update.  "The first weight
  update is generated after ``(2L + 1)`` cycles.  Then there will be
  ``(B - 1)`` cycles until the end of batch.  Finally, one cycle is
  needed to update all weights" — ``2L + B + 1`` per batch and
  ``(N/B)(2L + B + 1)`` total.

Inference (testing) pipelines similarly: ``N x L`` sequential,
``L + N - 1`` pipelined.

These formulas are cross-checked against the event-driven simulator in
:mod:`repro.core.schedule` by the test suite and the Fig. 5 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


def _check_batching(n_inputs: int, batch: int) -> None:
    check_positive("n_inputs", n_inputs)
    check_positive("batch", batch)
    if n_inputs % batch:
        raise ValueError(
            f"n_inputs ({n_inputs}) must be a multiple of batch ({batch}); "
            "pad the final batch upstream"
        )


def training_cycles_sequential(layers: int, n_inputs: int, batch: int) -> int:
    """Unpipelined training cycles: ``(2L + 1)N + N/B``."""
    check_positive("layers", layers)
    _check_batching(n_inputs, batch)
    return (2 * layers + 1) * n_inputs + n_inputs // batch


def training_cycles_pipelined(layers: int, n_inputs: int, batch: int) -> int:
    """Pipelined training cycles: ``(N/B)(2L + B + 1)``."""
    check_positive("layers", layers)
    _check_batching(n_inputs, batch)
    return (n_inputs // batch) * (2 * layers + batch + 1)


def training_cycles_per_batch_pipelined(layers: int, batch: int) -> int:
    """One batch through the training pipeline: ``2L + B + 1``."""
    check_positive("layers", layers)
    check_positive("batch", batch)
    return 2 * layers + batch + 1


def inference_cycles_sequential(layers: int, n_inputs: int) -> int:
    """Unpipelined testing cycles: each input sweeps all L layers."""
    check_positive("layers", layers)
    check_positive("n_inputs", n_inputs)
    return layers * n_inputs


def inference_cycles_pipelined(layers: int, n_inputs: int) -> int:
    """Pipelined testing cycles: fill latency plus one per input."""
    check_positive("layers", layers)
    check_positive("n_inputs", n_inputs)
    return layers + n_inputs - 1


def training_speedup(layers: int, n_inputs: int, batch: int) -> float:
    """Cycle-count ratio sequential / pipelined for training."""
    return training_cycles_sequential(
        layers, n_inputs, batch
    ) / training_cycles_pipelined(layers, n_inputs, batch)


def asymptotic_training_speedup(layers: int, batch: int) -> float:
    """Large-N limit of :func:`training_speedup`.

    ``((2L + 1)B + 1) / (2L + B + 1)`` — approaches ``2L + 1`` for
    large batches and 1 for ``B = 1`` as the pipeline drains every
    input; this is the crossover structure the Fig. 5 benchmark sweeps.
    """
    check_positive("layers", layers)
    check_positive("batch", batch)
    return ((2 * layers + 1) * batch + 1) / (2 * layers + batch + 1)


@dataclass(frozen=True)
class PipelineSummary:
    """Cycle accounting for one (L, N, B) training configuration."""

    layers: int
    n_inputs: int
    batch: int

    @property
    def sequential_cycles(self) -> int:
        return training_cycles_sequential(self.layers, self.n_inputs, self.batch)

    @property
    def pipelined_cycles(self) -> int:
        return training_cycles_pipelined(self.layers, self.n_inputs, self.batch)

    @property
    def speedup(self) -> float:
        return self.sequential_cycles / self.pipelined_cycles

    @property
    def pipeline_occupancy(self) -> float:
        """Fraction of pipeline slots doing useful work.

        Useful work per batch is the sequential per-batch cycle count
        ``(2L + 1)B + 1`` spread over ``(2L + B + 1)`` pipeline cycles
        with up to ``min(B, ...)`` concurrent inputs; expressed as the
        ratio of work cycles to (cycles x depth) with depth ``2L + 1``.
        """
        work = (2 * self.layers + 1) * self.batch + 1
        slots = training_cycles_per_batch_pipelined(self.layers, self.batch) * (
            2 * self.layers + 1
        )
        return work / slots
