"""Compiler: bridge between live networks and the accelerator models.

Two jobs:

* :func:`spec_from_network` — derive a shape-level
  :class:`~repro.workloads.suite.NetworkSpec` from a live
  :class:`~repro.nn.network.Sequential`, so any network built with the
  DNN substrate can be priced by the PipeLayer/ReGAN models.
* :func:`deploy_network` — attach a :class:`~repro.xbar.engine.
  CrossbarEngine` to every weight layer, so the same network *executes*
  its forward matmuls through the simulated PIM datapath (the
  functional counterpart of programming morphable subarrays into
  compute mode).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.nn.layers import (
    AvgPool2D,
    Conv2D,
    Dense,
    FractionalStridedConv2D,
    MaxPool2D,
)
from repro.nn.network import Sequential
from repro.telemetry import TelemetryLike
from repro.utils.rng import RngLike, spawn_rngs
from repro.workloads.specs import LayerSpec
from repro.workloads.suite import NetworkSpec
from repro.xbar.engine import CrossbarEngine, CrossbarEngineConfig


def spec_from_network(
    network: Sequential, input_shape: Tuple[int, ...]
) -> NetworkSpec:
    """Derive the shape-level spec of a live network.

    ``input_shape`` is batch-free, ``(C, H, W)`` or ``(features,)``.
    Shape-only layers (activations, flatten, batch norm, dropout)
    contribute nothing; pooling and weighted layers become
    :class:`LayerSpec` entries.
    """
    specs: List[LayerSpec] = []
    shape = tuple(input_shape)
    for layer in network.layers:
        if isinstance(layer, Conv2D):
            specs.append(
                LayerSpec(
                    kind="conv",
                    in_channels=shape[0],
                    in_height=shape[1],
                    in_width=shape[2],
                    out_channels=layer.out_channels,
                    kernel=layer.kernel_size,
                    stride=layer.stride,
                    pad=layer.pad,
                    name=layer.name,
                )
            )
        elif isinstance(layer, FractionalStridedConv2D):
            specs.append(
                LayerSpec(
                    kind="fcnn",
                    in_channels=shape[0],
                    in_height=shape[1],
                    in_width=shape[2],
                    out_channels=layer.out_channels,
                    kernel=layer.kernel_size,
                    stride=layer.stride,
                    pad=layer.pad,
                    name=layer.name,
                )
            )
        elif isinstance(layer, Dense):
            specs.append(
                LayerSpec(
                    kind="fc",
                    in_channels=layer.in_features,
                    in_height=1,
                    in_width=1,
                    out_channels=layer.out_features,
                    name=layer.name,
                )
            )
        elif isinstance(layer, (MaxPool2D, AvgPool2D)):
            specs.append(
                LayerSpec(
                    kind="pool",
                    in_channels=shape[0],
                    in_height=shape[1],
                    in_width=shape[2],
                    out_channels=shape[0],
                    kernel=layer.window,
                    stride=layer.stride,
                    name=layer.name,
                )
            )
        shape = layer.output_shape(shape)
    if not specs:
        raise ValueError("network contains no layers with a hardware cost")
    input_3d = (
        tuple(input_shape)
        if len(input_shape) == 3
        else (int(input_shape[0]), 1, 1)
    )
    return NetworkSpec(
        name=network.name, layers=tuple(specs), input_shape=input_3d
    )


@dataclass
class Deployment:
    """Record of a network deployed onto crossbar engines."""

    network: Sequential
    engines: Dict[str, CrossbarEngine] = field(default_factory=dict)

    @property
    def array_count(self) -> int:
        """Physical arrays across all deployed layers (after priming)."""
        return sum(engine.array_count for engine in self.engines.values())

    def total_stats(self) -> Dict[str, int]:
        """Aggregate operation counters across all engines."""
        totals = {
            "mvm_calls": 0,
            "subcycles": 0,
            "array_reads": 0,
            "array_programs": 0,
            "adc_conversions": 0,
        }
        for engine in self.engines.values():
            stats = engine.stats
            totals["mvm_calls"] += stats.mvm_calls
            totals["subcycles"] += stats.subcycles
            totals["array_reads"] += stats.array_reads
            totals["array_programs"] += stats.array_programs
            totals["adc_conversions"] += stats.adc_conversions
        return totals

    def engine_info(self) -> Dict[str, dict]:
        """Per-layer engine descriptions (backend, array counts, ...)."""
        return {
            name: engine.info() for name, engine in self.engines.items()
        }

    def undeploy(self) -> None:
        """Detach all engines (layers fall back to exact matmul)."""
        for layer in self.network.layers:
            if isinstance(layer, (Dense, Conv2D, FractionalStridedConv2D)):
                layer.engine = None
        self.engines.clear()


def deploy_network(
    network: Sequential,
    config: Optional[CrossbarEngineConfig] = None,
    rng: RngLike = None,
    backend: Optional[str] = None,
    collector: Optional[TelemetryLike] = None,
) -> Deployment:
    """Attach crossbar engines to every Dense/Conv2D layer.

    Each layer gets its own engine (its own arrays), seeded
    independently so device noise is uncorrelated across layers.
    Fractional-strided convolutions run through the crossbars via their
    Fig. 7(a) mapping: the equivalent flipped kernel is programmed and
    the zero-inserted input drives it as an ordinary convolution.

    ``backend`` (``"loop"`` or ``"vectorized"``) overrides the
    evaluation backend of ``config`` without the caller having to
    rebuild the config — the two are bit-identical under a shared
    seed, so this is purely a throughput knob.

    ``collector`` attaches a :class:`repro.telemetry.Collector` (or a
    scoped view): each layer's engine writes its counters and timing
    spans under ``engine/<layer name>/...``, giving one hierarchical
    telemetry tree for the whole deployment.  Counter telemetry is
    part of the backend bit-identity contract; spans are wall-clock.

    The engines are *lazy*: arrays are programmed at the first forward
    pass (when ``prepare`` first sees the weights).
    """
    config = config or CrossbarEngineConfig()
    if backend is not None and backend != config.backend:
        config = replace(config, backend=backend)
    targets = [
        layer
        for layer in network.layers
        if isinstance(layer, (Dense, Conv2D, FractionalStridedConv2D))
    ]
    if not targets:
        raise ValueError("network has no weight layers to deploy")
    deployment = Deployment(network=network)
    rngs = iter(spawn_rngs(rng, len(targets)))
    for layer in targets:
        engine = CrossbarEngine(
            config,
            rng=next(rngs),
            collector=(
                collector.scope(f"engine/{layer.name}")
                if collector is not None
                else None
            ),
        )
        layer.engine = engine
        deployment.engines[layer.name] = engine
    return deployment
