"""Functional execution of PipeLayer's training pipeline on real data.

:mod:`repro.core.schedule` executes Fig. 5(b) *structurally*; this
module executes it *numerically*: a real :class:`~repro.nn.network.
Sequential` is trained with several inputs genuinely in flight, one
pipeline stage per cycle, exactly as the architecture would run it —

* the network's layers are grouped into ``L`` pipeline stages, one per
  weighted layer (peripheral layers — activation, pooling, flatten —
  ride in the same stage, as PipeLayer folds them into the morphable
  subarray's periphery);
* within a batch, a new input enters every cycle; each input's
  intermediate results are stashed per (input, stage) after its forward
  pass and restored before its backward pass (the role of the memory
  subarrays in Fig. 6);
* weights are *frozen* for the whole batch ("the inputs in the same
  batch are all processed based on the same weights at the start of the
  batch"); per-input gradients accumulate and the update applies in the
  single cycle after the last input drains.

Because no dependency exists among inputs of a batch, this pipelined
execution must produce *bit-identical* weights to conventional batched
training — the correctness property behind the paper's entire speedup,
and the property the test suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.pipeline import training_cycles_per_batch_pipelined
from repro.nn.layers import Conv2D, Dense, FractionalStridedConv2D
from repro.nn.layers.base import Layer
from repro.nn.losses import Loss
from repro.nn.network import Sequential
from repro.nn.optim import Optimizer
from repro.nn.parameter import ParameterSnapshot
from repro.utils.validation import check_positive

#: Layer types that anchor a pipeline stage.
_STAGE_ANCHORS = (Dense, Conv2D, FractionalStridedConv2D)


def group_into_stages(network: Sequential) -> List[List[Layer]]:
    """Partition a network's layers into pipeline stages.

    Each weighted layer starts a new stage; stateless layers attach to
    the stage of the preceding weighted layer (layers before the first
    weighted layer join the first stage).
    """
    stages: List[List[Layer]] = []
    pending: List[Layer] = []
    for layer in network.layers:
        if isinstance(layer, _STAGE_ANCHORS):
            stages.append(pending + [layer])
            pending = []
        elif stages:
            stages[-1].append(layer)
        else:
            pending.append(layer)
    if pending:
        if not stages:
            raise ValueError("network has no weighted layers to pipeline")
        stages[-1].extend(pending)
    return stages


@dataclass
class PipelineTickLog:
    """What happened in one cycle (for inspection and tests)."""

    cycle: int
    forward: List[Tuple[int, int]] = field(default_factory=list)
    loss: List[int] = field(default_factory=list)
    backward: List[Tuple[int, int]] = field(default_factory=list)
    update: bool = False


class PipelinedTrainer:
    """Executes Fig. 5(b) batch training cycle by cycle.

    Parameters
    ----------
    network, optimizer, loss:
        The model, its optimizer, and the training loss.
    """

    def __init__(
        self, network: Sequential, optimizer: Optimizer, loss: Loss
    ) -> None:
        self.network = network
        self.optimizer = optimizer
        self.loss = loss
        self.stages = group_into_stages(network)
        self.ticks: List[PipelineTickLog] = []
        self.total_cycles = 0

    @property
    def depth(self) -> int:
        """Pipeline depth L (weighted layers)."""
        return len(self.stages)

    # -- per-stage operations -----------------------------------------------
    def _stage_forward(
        self,
        stage_index: int,
        value: np.ndarray,
        caches: Dict[Tuple[int, int], List[dict]],
        input_id: int,
    ) -> np.ndarray:
        """Run one input through one stage; stash the layer caches."""
        stage = self.stages[stage_index]
        for layer in stage:
            value = layer.forward(value, training=True)
        caches[(input_id, stage_index)] = [
            layer.save_cache() for layer in stage
        ]
        return value

    def _stage_backward(
        self,
        stage_index: int,
        grad: np.ndarray,
        caches: Dict[Tuple[int, int], List[dict]],
        input_id: int,
    ) -> np.ndarray:
        """Back-propagate one input through one stage from its caches."""
        stage = self.stages[stage_index]
        stashed = caches.pop((input_id, stage_index))
        for layer, cache in zip(stage, stashed):
            layer.load_cache(cache)
        for layer in reversed(stage):
            grad = layer.backward(grad)
        return grad

    # -- the batch schedule ------------------------------------------------------
    def train_batch(
        self, inputs: np.ndarray, targets: np.ndarray
    ) -> Tuple[float, int]:
        """Train one batch through the pipeline.

        Returns ``(mean loss, cycles)``; cycles always equals the
        paper's ``2L + B + 1``.  Raises if the weights move before the
        update cycle (they must stay frozen within the batch).
        """
        batch = inputs.shape[0]
        check_positive("batch", batch)
        if targets.shape[0] != batch:
            raise ValueError(
                f"targets ({targets.shape[0]}) do not match batch ({batch})"
            )
        depth = self.depth
        caches: Dict[Tuple[int, int], List[dict]] = {}
        values: Dict[int, np.ndarray] = {}
        grads: Dict[int, np.ndarray] = {}
        losses: List[Optional[float]] = [None] * batch
        frozen = ParameterSnapshot(self.network.parameters())
        self.network.zero_grad()

        total_cycles = training_cycles_per_batch_pipelined(depth, batch)
        for relative in range(total_cycles):
            tick = PipelineTickLog(cycle=self.total_cycles + relative)
            for input_id in range(batch):
                position = relative - input_id
                if position < 0 or position > 2 * depth:
                    continue
                if position < depth:
                    source = (
                        inputs[input_id : input_id + 1]
                        if position == 0
                        else values[input_id]
                    )
                    values[input_id] = self._stage_forward(
                        position, source, caches, input_id
                    )
                    tick.forward.append((input_id, position))
                elif position == depth:
                    losses[input_id] = self.loss.forward(
                        values.pop(input_id),
                        targets[input_id : input_id + 1],
                    )
                    # Mean-over-batch semantics: scale each per-input
                    # gradient so the accumulated total equals one
                    # batched backward pass.
                    grads[input_id] = self.loss.backward() / batch
                    tick.loss.append(input_id)
                else:
                    stage_index = 2 * depth - position
                    grads[input_id] = self._stage_backward(
                        stage_index, grads[input_id], caches, input_id
                    )
                    if stage_index == 0:
                        grads.pop(input_id)
                    tick.backward.append((input_id, position))
            if relative == total_cycles - 1:
                # The single update cycle at the end of the batch.
                if frozen.max_abs_delta() != 0.0:
                    raise AssertionError(
                        "weights changed before the batch update cycle"
                    )
                self.optimizer.step()
                tick.update = True
            self.ticks.append(tick)
        self.total_cycles += total_cycles
        if caches:
            raise AssertionError(
                f"{len(caches)} stage caches left in flight after the batch"
            )
        return float(np.mean([value for value in losses])), total_cycles

    def train(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        batch_size: int,
        epochs: int = 1,
    ) -> List[float]:
        """Train over a dataset; returns per-batch mean losses.

        ``len(images)`` must divide into whole batches (the pipeline
        formula assumes it; pad upstream otherwise).
        """
        check_positive("batch_size", batch_size)
        if images.shape[0] % batch_size:
            raise ValueError(
                f"{images.shape[0]} inputs do not divide into batches of "
                f"{batch_size}"
            )
        losses: List[float] = []
        for _ in range(epochs):
            for start in range(0, images.shape[0], batch_size):
                value, _ = self.train_batch(
                    images[start : start + batch_size],
                    labels[start : start + batch_size],
                )
                self.network.zero_grad()
                losses.append(value)
        return losses

    # -- inspection ----------------------------------------------------------------
    def max_inputs_in_flight(self) -> int:
        """Peak number of concurrent inputs across recorded cycles."""
        peak = 0
        for tick in self.ticks:
            active = {i for i, _ in tick.forward}
            active |= set(tick.loss)
            active |= {i for i, _ in tick.backward}
            peak = max(peak, len(active))
        return peak
