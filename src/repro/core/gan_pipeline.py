"""GAN training pipeline cycle models (Sec. III-B-2/3, Figs. 8-9).

One GAN training iteration comprises three dataflows (Fig. 8):

1. **Train D on real samples** — sweep length ``2L_D + 1`` stages
   (L_D forward, loss, L_D backward).
2. **Train D on generated samples** — G prepended: ``L_G + 2L_D + 1``
   stages.  G is used but not updated.
3. **Train G** — error returns through D into G:
   ``2L_G + 2L_D + 1`` stages.

With the ReGAN pipeline a new input enters each cycle, so a phase with
sweep ``S`` over a batch ``B`` costs ``S + B - 1`` cycles, plus one
cycle per weight update.  The paper's counts follow:

* train D on real: ``2L_D + 1 + B - 1``
* train D on fake: ``L_G + 2L_D + 1 + B - 1``; then 1 cycle updates D
* train G: ``2L_G + 2L_D + B + 1`` (update included)

Without the pipeline the three phases cost ``(4L_D + L_G + 2)B`` and
``(2L_G + 2L_D + 1)B`` cycles (D resp. G), plus updates.

Two further optimizations (Sec. III-B-3):

* **Spatial parallelism (SP)**: D is duplicated, so phases 1 and 2 run
  concurrently; phase 1's latency hides under phase 2's.
* **Computation sharing (CS)** (Fig. 9): phases 2 and 3 share the
  forward path; the two backward branches run in parallel; D updates at
  T11, G at T14.  Costs double intermediate storage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.utils.validation import check_choice, check_positive

#: Pipeline schemes in increasing sophistication.
SCHEMES = ("unpipelined", "pipelined", "sp", "cs", "sp_cs")


def _check(l_d: int, l_g: int, batch: int) -> None:
    check_positive("l_d", l_d)
    check_positive("l_g", l_g)
    check_positive("batch", batch)


# -- sweep lengths (stages per input) ---------------------------------------

def sweep_d_real(l_d: int) -> int:
    """Stages for one real sample through dataflow (1)."""
    check_positive("l_d", l_d)
    return 2 * l_d + 1


def sweep_d_fake(l_d: int, l_g: int) -> int:
    """Stages for one noise vector through dataflow (2)."""
    check_positive("l_d", l_d)
    check_positive("l_g", l_g)
    return l_g + 2 * l_d + 1


def sweep_g(l_d: int, l_g: int) -> int:
    """Stages for one noise vector through dataflow (3)."""
    check_positive("l_d", l_d)
    check_positive("l_g", l_g)
    return 2 * l_g + 2 * l_d + 1


# -- per-iteration cycle counts ----------------------------------------------

def d_training_cycles_pipelined(l_d: int, l_g: int, batch: int) -> int:
    """Pipelined D update: phases (1) + (2) sequential + 1 update.

    ``(2L_D + B) + (L_G + 2L_D + B) + 1``.
    """
    _check(l_d, l_g, batch)
    phase1 = sweep_d_real(l_d) + batch - 1
    phase2 = sweep_d_fake(l_d, l_g) + batch - 1
    return phase1 + phase2 + 1


def g_training_cycles_pipelined(l_d: int, l_g: int, batch: int) -> int:
    """Pipelined G update: ``2L_G + 2L_D + B + 1`` (paper's count)."""
    _check(l_d, l_g, batch)
    return sweep_g(l_d, l_g) + batch - 1 + 1


def d_training_cycles_unpipelined(l_d: int, l_g: int, batch: int) -> int:
    """Unpipelined D training: ``(4L_D + L_G + 2)B`` plus one update.

    Each input fully drains dataflow (1) then (2) before the next
    enters; the paper quotes the per-batch sweep total
    ``(4L_D + L_G + 2)B``; we add the single update cycle.
    """
    _check(l_d, l_g, batch)
    return (sweep_d_real(l_d) + sweep_d_fake(l_d, l_g)) * batch + 1


def g_training_cycles_unpipelined(l_d: int, l_g: int, batch: int) -> int:
    """Unpipelined G training: ``(2L_G + 2L_D + 1)B`` plus one update."""
    _check(l_d, l_g, batch)
    return sweep_g(l_d, l_g) * batch + 1


def iteration_cycles(l_d: int, l_g: int, batch: int, scheme: str) -> int:
    """Cycles of one full GAN iteration (update D then update G).

    Schemes:

    * ``unpipelined`` — everything sequential, input by input.
    * ``pipelined``   — Fig. 8 intra-phase pipelining.
    * ``sp``          — + duplicated D: phase (1) hides under (2).
    * ``cs``          — + shared forward: phases (2), (3) merge into a
      single pass whose length is the longer G branch.
    * ``sp_cs``       — both: phase (1) also hides under the merged
      pass, leaving just the G-branch latency.
    """
    _check(l_d, l_g, batch)
    check_choice("scheme", scheme, SCHEMES)
    if scheme == "unpipelined":
        return d_training_cycles_unpipelined(
            l_d, l_g, batch
        ) + g_training_cycles_unpipelined(l_d, l_g, batch)
    if scheme == "pipelined":
        return d_training_cycles_pipelined(
            l_d, l_g, batch
        ) + g_training_cycles_pipelined(l_d, l_g, batch)
    phase1 = sweep_d_real(l_d) + batch - 1
    merged = g_training_cycles_pipelined(l_d, l_g, batch)  # G branch + update
    if scheme == "sp":
        # Phases (1) and (2) concurrent on two copies of D, then the D
        # update, then phase (3).
        phase2 = sweep_d_fake(l_d, l_g) + batch - 1
        return max(phase1, phase2) + 1 + merged
    if scheme == "cs":
        # Phases (2) and (3) share the forward pass; the merged pass
        # lasts the G branch (D's shorter branch and its update, T11,
        # complete inside it).  Phase (1) still runs first.
        return phase1 + merged
    # sp_cs: phase (1) on the duplicate of D runs under the merged pass.
    return max(phase1 + 1, merged)


def iteration_speedup(l_d: int, l_g: int, batch: int, scheme: str) -> float:
    """Cycle-count speedup of ``scheme`` over the unpipelined schedule."""
    return iteration_cycles(l_d, l_g, batch, "unpipelined") / iteration_cycles(
        l_d, l_g, batch, scheme
    )


@dataclass(frozen=True)
class SchemeCost:
    """Hardware price of a pipeline scheme (relative units)."""

    scheme: str
    d_copies: int
    g_copies: int
    intermediate_storage_factor: float

    @property
    def description(self) -> str:
        return (
            f"{self.scheme}: {self.d_copies}x D arrays, "
            f"{self.g_copies}x G arrays, "
            f"{self.intermediate_storage_factor:g}x intermediate storage"
        )


#: Hardware cost of each scheme: SP duplicates D ("we proposed to
#: duplicate D into two copies"); CS doubles the storage for errors and
#: partial derivatives.
SCHEME_COSTS: Dict[str, SchemeCost] = {
    "unpipelined": SchemeCost("unpipelined", 1, 1, 1.0),
    "pipelined": SchemeCost("pipelined", 1, 1, 1.0),
    "sp": SchemeCost("sp", 2, 1, 1.0),
    "cs": SchemeCost("cs", 1, 1, 2.0),
    "sp_cs": SchemeCost("sp_cs", 2, 1, 2.0),
}


def scheme_table(l_d: int, l_g: int, batch: int) -> List[dict]:
    """Cycles, speedup and hardware cost for every scheme (Fig. 9 data)."""
    rows = []
    for scheme in SCHEMES:
        cycles = iteration_cycles(l_d, l_g, batch, scheme)
        rows.append(
            {
                "scheme": scheme,
                "cycles": cycles,
                "speedup": iteration_speedup(l_d, l_g, batch, scheme),
                "d_copies": SCHEME_COSTS[scheme].d_copies,
                "storage_factor": SCHEME_COSTS[
                    scheme
                ].intermediate_storage_factor,
            }
        )
    return rows
