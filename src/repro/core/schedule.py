"""Event-driven pipeline schedule simulator (validates Fig. 5 / Fig. 8).

The closed-form cycle counts in :mod:`repro.core.pipeline` and
:mod:`repro.core.gan_pipeline` are easy to get subtly wrong (fill,
drain, batch barriers, update cycles), so this module *executes* the
schedule: inputs advance through a linear chain of stages one cycle at
a time, a new input may enter every cycle within a batch, the weight
update fires one cycle after the last input drains, and the next batch
waits for it.  The simulator returns the full event table, which tests
check for structural hazards and dependency violations before comparing
its makespan with the formulas.

This is the executable form of Fig. 5: the rectangles (per-layer
compute) are stages, the red dashed lines are our cycle boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.telemetry import NULL_COLLECTOR, TelemetryLike
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ScheduleEvent:
    """One (cycle, stage, input) occupancy record.

    ``stage`` is 0-based along the pipeline; ``input_id`` is global
    across batches.  Update events use ``stage = -1`` and
    ``input_id = batch index``.
    """

    cycle: int
    stage: int
    input_id: int
    kind: str = "compute"


@dataclass
class ScheduleResult:
    """Full event table plus derived metrics."""

    events: List[ScheduleEvent]
    stages: int
    n_inputs: int
    batch: int
    updates_expected: bool = True

    @property
    def makespan(self) -> int:
        """Total cycles: last event cycle + 1."""
        if not self.events:
            return 0
        return max(event.cycle for event in self.events) + 1

    def events_at(self, cycle: int) -> List[ScheduleEvent]:
        """All events in one cycle."""
        return [event for event in self.events if event.cycle == cycle]

    def occupancy(self) -> float:
        """Mean fraction of stages busy per cycle."""
        if not self.events:
            return 0.0
        compute = [e for e in self.events if e.kind == "compute"]
        return len(compute) / (self.makespan * self.stages)

    # -- validation ------------------------------------------------------------
    def check_structural_hazards(self) -> None:
        """Raise if two inputs ever occupy the same stage in a cycle."""
        seen: Set[Tuple[int, int]] = set()
        for event in self.events:
            if event.kind != "compute":
                continue
            key = (event.cycle, event.stage)
            if key in seen:
                raise AssertionError(
                    f"structural hazard: stage {event.stage} double-booked "
                    f"at cycle {event.cycle}"
                )
            seen.add(key)

    def check_stage_progression(self) -> None:
        """Raise unless each input advances one stage per cycle."""
        per_input: Dict[int, List[ScheduleEvent]] = {}
        for event in self.events:
            if event.kind == "compute":
                per_input.setdefault(event.input_id, []).append(event)
        for input_id, events in per_input.items():
            events.sort(key=lambda e: e.stage)
            if [e.stage for e in events] != list(range(self.stages)):
                raise AssertionError(
                    f"input {input_id} skipped stages: "
                    f"{[e.stage for e in events]}"
                )
            for earlier, later in zip(events, events[1:]):
                if later.cycle != earlier.cycle + 1:
                    raise AssertionError(
                        f"input {input_id} stalled between stages "
                        f"{earlier.stage} and {later.stage}"
                    )

    def check_batch_barrier(self) -> None:
        """Raise unless updates separate batches correctly."""
        if not self.updates_expected:
            return
        updates = sorted(
            (e for e in self.events if e.kind == "update"),
            key=lambda e: e.cycle,
        )
        expected_batches = self.n_inputs // self.batch
        if len(updates) != expected_batches:
            raise AssertionError(
                f"{len(updates)} updates for {expected_batches} batches"
            )
        for batch_index, update in enumerate(updates):
            members = [
                e
                for e in self.events
                if e.kind == "compute"
                and batch_index * self.batch
                <= e.input_id
                < (batch_index + 1) * self.batch
            ]
            last_compute = max(e.cycle for e in members)
            if update.cycle != last_compute + 1:
                raise AssertionError(
                    f"batch {batch_index} update at {update.cycle}, last "
                    f"compute at {last_compute}"
                )
            next_members = [
                e
                for e in self.events
                if e.kind == "compute"
                and e.input_id >= (batch_index + 1) * self.batch
            ]
            if next_members:
                first_next = min(e.cycle for e in next_members)
                if first_next <= update.cycle:
                    raise AssertionError(
                        f"batch {batch_index + 1} started at {first_next} "
                        f"before update at {update.cycle}"
                    )

    def validate(self) -> None:
        """Run all structural checks."""
        self.check_structural_hazards()
        self.check_stage_progression()
        self.check_batch_barrier()


def _record_schedule_telemetry(
    tel: TelemetryLike, result: ScheduleResult
) -> None:
    """Publish one executed schedule's occupancy counters.

    Counter paths follow the component-path convention of
    :mod:`repro.telemetry`: per-stage busy cycles
    (``stage[<s>].busy_cycles``), event/update totals, and the
    makespan gauge.  Everything here is derived from the deterministic
    event table, so the counters inherit the simulator's determinism.
    """
    if not tel:
        return
    busy: Dict[int, int] = {}
    updates = 0
    for event in result.events:
        if event.kind == "compute":
            busy[event.stage] = busy.get(event.stage, 0) + 1
        elif event.kind == "update":
            updates += 1
    for stage in sorted(busy):
        tel.count(f"stage[{stage}].busy_cycles", busy[stage])
    tel.count("events", len(result.events))
    tel.count("updates", updates)
    tel.set("makespan_cycles", result.makespan)


def simulate_training_pipeline(
    layers: int,
    n_inputs: int,
    batch: int,
    collector: Optional[TelemetryLike] = None,
) -> ScheduleResult:
    """Execute the Fig. 5(b) pipelined training schedule.

    The per-input sweep is ``2L + 1`` stages (L forward, one
    loss/error stage, L backward); a new input enters every cycle
    within a batch; the weight update takes the cycle after the last
    input drains; the next batch starts the cycle after the update.
    ``collector`` receives the per-stage occupancy counters and a
    timing span (see :mod:`repro.telemetry`).
    """
    check_positive("layers", layers)
    check_positive("n_inputs", n_inputs)
    check_positive("batch", batch)
    if n_inputs % batch:
        raise ValueError("n_inputs must be a multiple of batch")
    tel = collector if collector is not None else NULL_COLLECTOR
    stages = 2 * layers + 1
    events: List[ScheduleEvent] = []
    with tel.span("simulate_training_pipeline"):
        batch_start = 0
        for batch_index in range(n_inputs // batch):
            last_drain = 0
            for position in range(batch):
                input_id = batch_index * batch + position
                entry = batch_start + position
                for stage in range(stages):
                    events.append(
                        ScheduleEvent(
                            cycle=entry + stage, stage=stage, input_id=input_id
                        )
                    )
                last_drain = entry + stages - 1
            update_cycle = last_drain + 1
            events.append(
                ScheduleEvent(
                    cycle=update_cycle, stage=-1, input_id=batch_index, kind="update"
                )
            )
            batch_start = update_cycle + 1
    result = ScheduleResult(
        events=events, stages=stages, n_inputs=n_inputs, batch=batch
    )
    _record_schedule_telemetry(tel, result)
    return result


def simulate_training_sequential(
    layers: int,
    n_inputs: int,
    batch: int,
    collector: Optional[TelemetryLike] = None,
) -> ScheduleResult:
    """Execute the unpipelined schedule: one input at a time."""
    check_positive("layers", layers)
    check_positive("n_inputs", n_inputs)
    check_positive("batch", batch)
    if n_inputs % batch:
        raise ValueError("n_inputs must be a multiple of batch")
    tel = collector if collector is not None else NULL_COLLECTOR
    stages = 2 * layers + 1
    events: List[ScheduleEvent] = []
    with tel.span("simulate_training_sequential"):
        cycle = 0
        for batch_index in range(n_inputs // batch):
            for position in range(batch):
                input_id = batch_index * batch + position
                for stage in range(stages):
                    events.append(
                        ScheduleEvent(cycle=cycle, stage=stage, input_id=input_id)
                    )
                    cycle += 1
            events.append(
                ScheduleEvent(
                    cycle=cycle, stage=-1, input_id=batch_index, kind="update"
                )
            )
            cycle += 1
    result = ScheduleResult(
        events=events, stages=stages, n_inputs=n_inputs, batch=batch
    )
    _record_schedule_telemetry(tel, result)
    return result


def simulate_inference_pipeline(
    layers: int,
    n_inputs: int,
    collector: Optional[TelemetryLike] = None,
) -> ScheduleResult:
    """Execute the testing pipeline: L stages, no updates."""
    check_positive("layers", layers)
    check_positive("n_inputs", n_inputs)
    tel = collector if collector is not None else NULL_COLLECTOR
    with tel.span("simulate_inference_pipeline"):
        events = [
            ScheduleEvent(cycle=input_id + stage, stage=stage, input_id=input_id)
            for input_id in range(n_inputs)
            for stage in range(layers)
        ]
    result = ScheduleResult(
        events=events,
        stages=layers,
        n_inputs=n_inputs,
        batch=n_inputs,
        updates_expected=False,
    )
    _record_schedule_telemetry(tel, result)
    return result
