"""Architecture cost models: technology tables, components, GPU baseline."""

from repro.arch.components import (
    EnergyBreakdown,
    array_subcycle_energy,
    buffer_transfer_energy,
    chip_area_mm2,
    static_power,
    weight_write_energy,
)
from repro.arch.endurance import (
    LifetimeReport,
    lifetime_for,
    training_lifetime,
)
from repro.arch.gpu import BACKWARD_FLOP_FACTOR, GpuLayerTiming, GpuModel
from repro.arch.report import (
    GTX1080_DIE_MM2,
    AreaPowerReport,
    pipelayer_report,
    regan_report,
)
from repro.arch.params import DEFAULT_TECH, GTX1080, GpuParams, XbarTechParams
from repro.arch.sensitivity import (
    SWEEPABLE_FIELDS,
    SensitivityRow,
    conclusion_robustness,
    scaled_tech,
    tech_sensitivity,
)
from repro.arch.subarray import Bank, Subarray, SubarrayKind, SubarrayMode

__all__ = [
    "EnergyBreakdown",
    "array_subcycle_energy",
    "buffer_transfer_energy",
    "weight_write_energy",
    "static_power",
    "chip_area_mm2",
    "LifetimeReport",
    "training_lifetime",
    "lifetime_for",
    "GpuModel",
    "GpuLayerTiming",
    "BACKWARD_FLOP_FACTOR",
    "XbarTechParams",
    "GpuParams",
    "DEFAULT_TECH",
    "GTX1080",
    "GTX1080_DIE_MM2",
    "AreaPowerReport",
    "pipelayer_report",
    "regan_report",
    "SensitivityRow",
    "SWEEPABLE_FIELDS",
    "tech_sensitivity",
    "scaled_tech",
    "conclusion_robustness",
    "Bank",
    "Subarray",
    "SubarrayKind",
    "SubarrayMode",
]
