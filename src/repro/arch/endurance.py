"""ReRAM write-endurance lifetime analysis.

Training on a ReRAM PIM accelerator rewrites weight cells once per
batch (Sec. III-A-2's batched update); ReRAM cells survive a bounded
number of write cycles (~1e6-1e12 depending on device).  This module
estimates how long a deployment can *train* before its weight cells
wear out — the practical limit the PipeLayer line of work inherits from
the device, and a standard concern in follow-up literature.

The model is deliberately simple and explicit: every weight cell of
every duplicated copy is rewritten once per batch (the pessimistic
no-delta-encoding case the papers assume), so

    lifetime_batches = endurance          (writes per cell)
    lifetime_seconds = lifetime_batches * seconds_per_batch
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.utils.validation import check_positive

if TYPE_CHECKING:  # annotation-only: core sits above arch (ARCH001)
    from repro.core.pipelayer import PipeLayerModel

SECONDS_PER_DAY = 86_400.0
SECONDS_PER_YEAR = 365.25 * SECONDS_PER_DAY


@dataclass(frozen=True)
class LifetimeReport:
    """Wear-out estimate for one training deployment."""

    network: str
    endurance: float
    batch: int
    seconds_per_batch: float
    writes_per_batch_per_cell: float = 1.0

    def __post_init__(self) -> None:
        check_positive("endurance", self.endurance)
        check_positive("batch", self.batch)
        check_positive("seconds_per_batch", self.seconds_per_batch)
        check_positive(
            "writes_per_batch_per_cell", self.writes_per_batch_per_cell
        )

    @property
    def lifetime_batches(self) -> float:
        """Training batches until the weight cells hit their limit."""
        return self.endurance / self.writes_per_batch_per_cell

    @property
    def lifetime_seconds(self) -> float:
        """Wall-clock training time until wear-out."""
        return self.lifetime_batches * self.seconds_per_batch

    @property
    def lifetime_days(self) -> float:
        return self.lifetime_seconds / SECONDS_PER_DAY

    @property
    def lifetime_years(self) -> float:
        return self.lifetime_seconds / SECONDS_PER_YEAR

    @property
    def lifetime_examples(self) -> float:
        """Training examples processed before wear-out."""
        return self.lifetime_batches * self.batch

    def summary(self) -> str:
        return (
            f"{self.network}: endurance {self.endurance:.1e} writes/cell, "
            f"B={self.batch} -> {self.lifetime_batches:.3g} batches "
            f"({self.lifetime_examples:.3g} examples, "
            f"{self.lifetime_days:.3g} days of continuous training)"
        )


def training_lifetime(
    model: PipeLayerModel, batch: int = 32, endurance: float = 1e9
) -> LifetimeReport:
    """Lifetime of a PipeLayer deployment under continuous training.

    Uses the deployment's own cycle model for the batch time and the
    given per-cell ``endurance`` rating (write cycles; 1e9 is a typical
    optimistic metal-oxide ReRAM figure, 1e6 a pessimistic one).
    """
    check_positive("batch", batch)
    check_positive("endurance", endurance)
    seconds_per_batch = model.training_time_per_image(batch) * batch
    return LifetimeReport(
        network=model.network.name,
        endurance=endurance,
        batch=batch,
        seconds_per_batch=seconds_per_batch,
    )


def lifetime_for(
    network_name: str,
    endurance: float,
    seconds_per_batch: float,
    batch: int = 32,
) -> LifetimeReport:
    """Direct lifetime computation from raw quantities."""
    return LifetimeReport(
        network=network_name,
        endurance=endurance,
        batch=batch,
        seconds_per_batch=seconds_per_batch,
    )
