"""Area and power reporting for accelerator deployments.

The PipeLayer/ReGAN papers report area and power alongside speedup;
the overview paper's Table I keeps only speedup/energy, but any
credible deployment answer needs the physical budget too.  This module
derives both from a :class:`~repro.core.pipelayer.PipeLayerModel` or
:class:`~repro.core.regan.ReGANModel`:

* **area** — deployed arrays x per-array area (crossbar + periphery
  share), plus the memory/buffer subarray share;
* **power** — static (always-on) plus average dynamic (energy per
  image over time per image).

The GPU comparison point is the GTX 1080's GP104 die (314 mm^2,
180 W board power).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.arch.components import chip_area_mm2
from repro.utils.validation import check_positive

if TYPE_CHECKING:  # annotation-only: core sits above arch (ARCH001)
    from repro.core.pipelayer import PipeLayerModel
    from repro.core.regan import ReGANModel

#: GP104 die area (mm^2), the GTX 1080's silicon.
GTX1080_DIE_MM2 = 314.0
#: Fraction of extra area for memory/buffer subarrays and interconnect,
#: relative to the compute arrays (PipeLayer-style banks devote a
#: comparable region to memory subarrays).
MEMORY_REGION_FACTOR = 0.5


@dataclass(frozen=True)
class AreaPowerReport:
    """Physical budget of one deployment."""

    name: str
    array_count: int
    compute_area_mm2: float
    memory_area_mm2: float
    static_power_w: float
    dynamic_power_w: float

    @property
    def total_area_mm2(self) -> float:
        return self.compute_area_mm2 + self.memory_area_mm2

    @property
    def total_power_w(self) -> float:
        return self.static_power_w + self.dynamic_power_w

    @property
    def area_vs_gpu(self) -> float:
        """Deployment area relative to the GP104 die."""
        return self.total_area_mm2 / GTX1080_DIE_MM2

    def summary(self) -> str:
        return (
            f"{self.name}: {self.array_count:,} arrays, "
            f"{self.total_area_mm2:,.1f} mm^2 "
            f"({self.area_vs_gpu:.2f}x GP104), "
            f"{self.total_power_w:,.1f} W "
            f"(static {self.static_power_w:,.1f}, "
            f"dynamic {self.dynamic_power_w:,.1f})"
        )


def pipelayer_report(
    model: PipeLayerModel, batch: int = 32, training: bool = True
) -> AreaPowerReport:
    """Area/power budget of a PipeLayer deployment."""
    check_positive("batch", batch)
    arrays = model.total_arrays
    compute_area = chip_area_mm2(model.tech, arrays)
    time_per_image = (
        model.training_time_per_image(batch)
        if training
        else model.inference_time_per_image()
    )
    energy = model.energy_per_image(batch, training)
    dynamic_power = energy.dynamic / time_per_image
    return AreaPowerReport(
        name=model.network.name,
        array_count=arrays,
        compute_area_mm2=compute_area,
        memory_area_mm2=compute_area * MEMORY_REGION_FACTOR,
        static_power_w=model.static_power_watts(),
        dynamic_power_w=dynamic_power,
    )


def regan_report(model: ReGANModel, batch: int = 32) -> AreaPowerReport:
    """Area/power budget of a ReGAN deployment."""
    check_positive("batch", batch)
    arrays = model.total_arrays
    compute_area = chip_area_mm2(model.tech, arrays)
    time = model.time_per_iteration(batch)
    energy = model.energy_per_iteration(batch)
    return AreaPowerReport(
        name=model.dataset,
        array_count=arrays,
        compute_area_mm2=compute_area,
        memory_area_mm2=compute_area * MEMORY_REGION_FACTOR,
        static_power_w=model.static_power_watts(),
        dynamic_power_w=energy.dynamic / time,
    )
