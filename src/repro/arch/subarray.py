"""Bank organisation: morphable / memory / buffer subarrays (Figs. 6, 10).

PipeLayer divides each memory bank into *morphable* subarrays (switch
between memory and compute modes), *memory* subarrays (intermediate
results) and *bank buffers*; ReGAN's equivalent regions are *FF*,
*Mem* and *Buffer* subarrays.  This module provides a functional model
of that organisation: subarrays with an operating mode, a bank that
allocates them, and the mode-switch bookkeeping the control unit
performs between pipeline phases.

The cycle/energy models do not depend on this module (they count
operations directly); it exists so the *implementation* sections of the
paper are represented as executable structure, exercised by tests and
the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.utils.validation import check_positive


class SubarrayMode(Enum):
    """Operating mode of a morphable (FF) subarray."""

    MEMORY = "memory"
    COMPUTE = "compute"


class SubarrayKind(Enum):
    """Region a subarray belongs to within a bank."""

    MORPHABLE = "morphable"
    MEMORY = "memory"
    BUFFER = "buffer"


@dataclass
class Subarray:
    """One ReRAM subarray of ``rows x cols`` cells.

    Morphable subarrays start in memory mode ("a morphable unit behaves
    the same as a regular ReRAM subarray in the memory mode"); memory
    and buffer subarrays are fixed-function and refuse mode switches.
    """

    index: int
    kind: SubarrayKind
    rows: int = 128
    cols: int = 128
    mode: SubarrayMode = SubarrayMode.MEMORY
    assigned_to: Optional[str] = None
    mode_switches: int = 0

    def switch_mode(self, mode: SubarrayMode) -> None:
        """Change operating mode (morphable subarrays only)."""
        if self.kind is not SubarrayKind.MORPHABLE:
            raise ValueError(
                f"{self.kind.value} subarray {self.index} cannot switch modes"
            )
        if mode is not self.mode:
            self.mode = mode
            self.mode_switches += 1

    @property
    def cells(self) -> int:
        """Cell capacity of the subarray."""
        return self.rows * self.cols


@dataclass
class Bank:
    """A memory bank: the three-region division of Fig. 6 / Fig. 10.

    The bank control unit "decodes the incoming instructions and
    determines the operation mode of morphable subarrays"; here that is
    the :meth:`assign_compute` / :meth:`release` pair, which the
    accelerator compiler drives when placing layers.
    """

    morphable_count: int
    memory_count: int
    buffer_count: int
    rows: int = 128
    cols: int = 128
    subarrays: List[Subarray] = field(default_factory=list)

    def __post_init__(self) -> None:
        check_positive("morphable_count", self.morphable_count)
        check_positive("memory_count", self.memory_count)
        check_positive("buffer_count", self.buffer_count)
        if not self.subarrays:
            index = 0
            for kind, count in (
                (SubarrayKind.MORPHABLE, self.morphable_count),
                (SubarrayKind.MEMORY, self.memory_count),
                (SubarrayKind.BUFFER, self.buffer_count),
            ):
                for _ in range(count):
                    self.subarrays.append(
                        Subarray(
                            index=index, kind=kind, rows=self.rows, cols=self.cols
                        )
                    )
                    index += 1

    # -- queries ------------------------------------------------------------
    def of_kind(self, kind: SubarrayKind) -> List[Subarray]:
        """All subarrays in one region."""
        return [s for s in self.subarrays if s.kind is kind]

    def free_morphable(self) -> List[Subarray]:
        """Morphable subarrays not assigned to any layer."""
        return [
            s
            for s in self.of_kind(SubarrayKind.MORPHABLE)
            if s.assigned_to is None
        ]

    @property
    def compute_capacity_cells(self) -> int:
        """Cells available for weights if every morphable unit computes."""
        return sum(s.cells for s in self.of_kind(SubarrayKind.MORPHABLE))

    # -- control ---------------------------------------------------------------
    def assign_compute(self, owner: str, count: int) -> List[Subarray]:
        """Switch ``count`` free morphable subarrays to compute for ``owner``."""
        check_positive("count", count)
        free = self.free_morphable()
        if len(free) < count:
            raise RuntimeError(
                f"bank has {len(free)} free morphable subarrays, "
                f"{owner} needs {count}"
            )
        taken = free[:count]
        for subarray in taken:
            subarray.switch_mode(SubarrayMode.COMPUTE)
            subarray.assigned_to = owner
        return taken

    def release(self, owner: str) -> int:
        """Return ``owner``'s subarrays to memory mode; counts released."""
        released = 0
        for subarray in self.of_kind(SubarrayKind.MORPHABLE):
            if subarray.assigned_to == owner:
                subarray.switch_mode(SubarrayMode.MEMORY)
                subarray.assigned_to = None
                released += 1
        return released

    def utilisation(self) -> Dict[str, float]:
        """Fraction of morphable subarrays in compute mode, per owner."""
        morphable = self.of_kind(SubarrayKind.MORPHABLE)
        owners: Dict[str, int] = {}
        for subarray in morphable:
            if subarray.assigned_to is not None:
                owners[subarray.assigned_to] = (
                    owners.get(subarray.assigned_to, 0) + 1
                )
        return {
            owner: count / len(morphable) for owner, count in owners.items()
        }
