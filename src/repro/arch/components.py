"""Component-level cost helpers for the PIM datapath (Fig. 6 circuits).

Each function prices one hardware event in terms of the technology
table: a spike-driven array sub-cycle (spike drivers + crossbar + I&F
ADCs + shift-add), a weight write, a buffer transfer.  The accelerator
models compose these with their operation counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.params import XbarTechParams
from repro.utils.validation import check_non_negative, check_positive


def array_subcycle_energy(
    tech: XbarTechParams, rows: int, cols: int
) -> float:
    """Dynamic energy of one bit-serial read of one ``rows x cols`` array.

    Covers the spike drivers firing every word line, the crossbar
    itself, one I&F conversion per bit line, and the digital
    shift-and-add that merges the column result into the accumulator.
    """
    check_positive("rows", rows)
    check_positive("cols", cols)
    return (
        tech.array_read_energy
        + rows * tech.driver_energy_per_line
        + cols * tech.adc_energy_per_conversion
        + cols * tech.shift_add_energy_per_column
    )


def weight_write_energy(tech: XbarTechParams, cells: int) -> float:
    """Energy to (re)program ``cells`` ReRAM cells."""
    check_non_negative("cells", cells)
    return cells * tech.cell_write_energy


def buffer_transfer_energy(tech: XbarTechParams, bits: float) -> float:
    """Energy to move ``bits`` through a memory/buffer subarray port."""
    check_non_negative("bits", bits)
    return bits * tech.buffer_energy_per_bit


def static_power(tech: XbarTechParams, array_count: int) -> float:
    """Always-on chip power for ``array_count`` deployed arrays."""
    check_non_negative("array_count", array_count)
    return (
        array_count * tech.array_static_power + tech.controller_static_power
    )


def chip_area_mm2(tech: XbarTechParams, array_count: int) -> float:
    """Die area estimate for ``array_count`` arrays plus periphery."""
    check_non_negative("array_count", array_count)
    return array_count * tech.array_area_mm2


def event_costs(tech: XbarTechParams) -> "dict[str, float]":
    """Per-event cost table for counter-based energy attribution.

    Flattens the technology table into the plain ``name -> cost`` dict
    that :func:`repro.telemetry.attribute_energy` prices event counters
    with (the telemetry layer takes a dict, not a tech object, so it
    never imports :mod:`repro.arch`).  The keys mirror the event
    counters the crossbar engine and the analytic models emit; by
    construction one array read priced through this table —
    ``array_read + rows * dac_line + cols * (adc_sample + shift_add)``
    — equals :func:`array_subcycle_energy` exactly.
    """
    return {
        "array_read_joules": tech.array_read_energy,
        "dac_line_joules": tech.driver_energy_per_line,
        "adc_sample_joules": tech.adc_energy_per_conversion,
        "shift_add_joules": tech.shift_add_energy_per_column,
        "cell_write_joules": tech.cell_write_energy,
        "buffer_bit_joules": tech.buffer_energy_per_bit,
        "array_static_watts": tech.array_static_power,
        "controller_static_watts": tech.controller_static_power,
        "subcycle_seconds": tech.subcycle_time,
    }


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy ledger for one workload execution (joules).

    The models fill the dynamic categories; ``static`` is power x
    makespan.  ``total`` sums everything — the figure Table I's energy
    ratios are computed from.
    """

    mvm: float = 0.0
    buffer: float = 0.0
    weight_write: float = 0.0
    static: float = 0.0

    def __post_init__(self) -> None:
        for name in ("mvm", "buffer", "weight_write", "static"):
            check_non_negative(name, getattr(self, name))

    @property
    def total(self) -> float:
        return self.mvm + self.buffer + self.weight_write + self.static

    @property
    def dynamic(self) -> float:
        return self.mvm + self.buffer + self.weight_write

    def scaled(self, factor: float) -> "EnergyBreakdown":
        """All categories multiplied by ``factor`` (e.g. per-image)."""
        check_non_negative("factor", factor)
        return EnergyBreakdown(
            mvm=self.mvm * factor,
            buffer=self.buffer * factor,
            weight_write=self.weight_write * factor,
            static=self.static * factor,
        )

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            mvm=self.mvm + other.mvm,
            buffer=self.buffer + other.buffer,
            weight_write=self.weight_write + other.weight_write,
            static=self.static + other.static,
        )
