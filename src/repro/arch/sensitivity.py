"""Sensitivity of the Table I conclusions to the technology constants.

DESIGN.md's substitution table replaces the papers' circuit-level
numbers with parameter tables assembled from the public literature.
That substitution is only honest if the *conclusions* — who wins, by
roughly what factor — survive plausible perturbations of those
constants.  This module quantifies that: each technology parameter is
scaled down/up by a factor and the Table I metrics recomputed, giving a
tornado-style table of metric swings.

Reading the output: parameters whose swing is small are "don't-care"
constants; a parameter whose halving/doubling flips a conclusion would
demand a sourced value.  (Spoiler, recorded by the benchmark: speedup
is insensitive to every energy constant and linear only in
``subcycle_time``; the energy ratio moves with ADC energy, write
energy, and static power — but stays an order of magnitude above 1x
throughout, so "large speedup, modest energy saving" is robust.)
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Callable, Dict, List, Sequence, Tuple

from repro.arch.params import DEFAULT_TECH, XbarTechParams
from repro.utils.validation import check_positive

#: Technology fields that are scalable costs (area field excluded from
#: the default sweep: it has no effect on speedup/energy).
SWEEPABLE_FIELDS = (
    "subcycle_time",
    "array_read_energy",
    "adc_energy_per_conversion",
    "driver_energy_per_line",
    "shift_add_energy_per_column",
    "cell_write_energy",
    "buffer_energy_per_bit",
    "array_static_power",
    "controller_static_power",
)


@dataclass(frozen=True)
class SensitivityRow:
    """Metric values for one parameter at (low, nominal, high)."""

    field: str
    low_factor: float
    high_factor: float
    metric_low: float
    metric_nominal: float
    metric_high: float

    @property
    def swing(self) -> float:
        """Relative metric range across the sweep (tornado width)."""
        return (
            abs(self.metric_high - self.metric_low) / self.metric_nominal
        )

    @property
    def direction(self) -> str:
        """Whether increasing the parameter raises or lowers the metric."""
        if self.metric_high > self.metric_low:
            return "increasing"
        if self.metric_high < self.metric_low:
            return "decreasing"
        return "flat"


def scaled_tech(
    tech: XbarTechParams, field_name: str, factor: float
) -> XbarTechParams:
    """Copy of ``tech`` with one field multiplied by ``factor``."""
    check_positive("factor", factor)
    if field_name not in {f.name for f in fields(XbarTechParams)}:
        raise ValueError(f"unknown technology field {field_name!r}")
    value = getattr(tech, field_name) * factor
    return replace(tech, **{field_name: value})


def tech_sensitivity(
    metric: Callable[[XbarTechParams], float],
    tech: XbarTechParams = DEFAULT_TECH,
    field_names: Sequence[str] = SWEEPABLE_FIELDS,
    low_factor: float = 0.5,
    high_factor: float = 2.0,
) -> List[SensitivityRow]:
    """Tornado sweep: ``metric`` under per-field scaling.

    ``metric`` maps a technology table to a scalar (e.g. the geomean
    PipeLayer speedup).  Returns one row per field, sorted by swing,
    widest first.
    """
    check_positive("low_factor", low_factor)
    check_positive("high_factor", high_factor)
    nominal = metric(tech)
    if nominal == 0:
        raise ValueError("metric is zero at the nominal point")
    rows = []
    for field_name in field_names:
        low = metric(scaled_tech(tech, field_name, low_factor))
        high = metric(scaled_tech(tech, field_name, high_factor))
        rows.append(
            SensitivityRow(
                field=field_name,
                low_factor=low_factor,
                high_factor=high_factor,
                metric_low=low,
                metric_nominal=nominal,
                metric_high=high,
            )
        )
    rows.sort(key=lambda row: row.swing, reverse=True)
    return rows


def conclusion_robustness(
    metrics: Dict[str, Callable[[XbarTechParams], float]],
    predicates: Dict[str, Callable[[Dict[str, float]], bool]],
    tech: XbarTechParams = DEFAULT_TECH,
    field_names: Sequence[str] = SWEEPABLE_FIELDS,
    factors: Tuple[float, float] = (0.5, 2.0),
) -> Dict[str, bool]:
    """Check that named conclusions hold at every sweep corner.

    ``metrics`` are named scalar functions of the tech table;
    ``predicates`` receive the metric dict and return whether a
    conclusion holds.  Each field is perturbed one-at-a-time; the
    return maps conclusion name -> held at every point.
    """
    held = {name: True for name in predicates}
    points = [tech] + [
        scaled_tech(tech, field_name, factor)
        for field_name in field_names
        for factor in factors
    ]
    for point in points:
        values = {name: fn(point) for name, fn in metrics.items()}
        for name, predicate in predicates.items():
            if not predicate(values):
                held[name] = False
    return held
