"""Sensitivity of the Table I conclusions to the technology constants.

DESIGN.md's substitution table replaces the papers' circuit-level
numbers with parameter tables assembled from the public literature.
That substitution is only honest if the *conclusions* — who wins, by
roughly what factor — survive plausible perturbations of those
constants.  This module quantifies that: each technology parameter is
scaled down/up by a factor and the Table I metrics recomputed, giving a
tornado-style table of metric swings.

Reading the output: parameters whose swing is small are "don't-care"
constants; a parameter whose halving/doubling flips a conclusion would
demand a sourced value.  (Spoiler, recorded by the benchmark: speedup
is insensitive to every energy constant and linear only in
``subcycle_time``; the energy ratio moves with ADC energy, write
energy, and static power — but stays an order of magnitude above 1x
throughout, so "large speedup, modest energy saving" is robust.)
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.arch.params import DEFAULT_TECH, XbarTechParams
from repro.telemetry import TelemetryLike
from repro.utils.validation import check_positive

#: Technology fields that are scalable costs (area field excluded from
#: the default sweep: it has no effect on speedup/energy).
SWEEPABLE_FIELDS = (
    "subcycle_time",
    "array_read_energy",
    "adc_energy_per_conversion",
    "driver_energy_per_line",
    "shift_add_energy_per_column",
    "cell_write_energy",
    "buffer_energy_per_bit",
    "array_static_power",
    "controller_static_power",
)


@dataclass(frozen=True)
class SensitivityRow:
    """Metric values for one parameter at (low, nominal, high)."""

    field: str
    low_factor: float
    high_factor: float
    metric_low: float
    metric_nominal: float
    metric_high: float

    @property
    def swing(self) -> float:
        """Relative metric range across the sweep (tornado width)."""
        return (
            abs(self.metric_high - self.metric_low) / self.metric_nominal
        )

    @property
    def direction(self) -> str:
        """Whether increasing the parameter raises or lowers the metric."""
        if self.metric_high > self.metric_low:
            return "increasing"
        if self.metric_high < self.metric_low:
            return "decreasing"
        return "flat"


def scaled_tech(
    tech: XbarTechParams, field_name: str, factor: float
) -> XbarTechParams:
    """Copy of ``tech`` with one field multiplied by ``factor``."""
    check_positive("factor", factor)
    if field_name not in {f.name for f in fields(XbarTechParams)}:
        raise ValueError(f"unknown technology field {field_name!r}")
    value = getattr(tech, field_name) * factor
    return replace(tech, **{field_name: value})


def _metric_speedup(tech: XbarTechParams) -> float:
    from repro.core.estimator import pipelayer_table1

    return float(pipelayer_table1(tech=tech).speedup)


def _metric_energy(tech: XbarTechParams) -> float:
    from repro.core.estimator import pipelayer_table1

    return float(pipelayer_table1(tech=tech).energy_saving)


#: Named Table I metrics — the pickleable vocabulary a sensitivity
#: *cell spec* may reference (a bare lambda cannot cross a process
#: boundary or be content-hashed, a name can).
METRICS: Dict[str, Callable[[XbarTechParams], float]] = {
    "speedup": _metric_speedup,
    "energy": _metric_energy,
}


def resolve_metric(
    metric: Union[str, Callable[[XbarTechParams], float]]
) -> Callable[[XbarTechParams], float]:
    """A metric callable from a :data:`METRICS` name (callables pass through)."""
    if callable(metric):
        return metric
    function = METRICS.get(metric)
    if function is None:
        raise ValueError(
            f"unknown sensitivity metric {metric!r}; "
            f"known metrics: {sorted(METRICS)}"
        )
    return function


def run_sensitivity_cell(
    spec: Dict[str, Any], collector: TelemetryLike
) -> Dict[str, Any]:
    """Sweep cell function for one tornado field (kind ``"sensitivity_point"``).

    The spec names the metric (a :data:`METRICS` key), the field, the
    scaling factors, and the full technology table as a dict — a pure
    function of plain data, so the point computes identically in any
    process.
    """
    metric = resolve_metric(str(spec["metric"]))
    tech = XbarTechParams(**spec["tech"])
    field_name = str(spec["field"])
    low_factor = float(spec["low_factor"])
    high_factor = float(spec["high_factor"])
    nominal = metric(tech)
    low = metric(scaled_tech(tech, field_name, low_factor))
    high = metric(scaled_tech(tech, field_name, high_factor))
    collector.count("points", 3)
    return {
        "field": field_name,
        "low_factor": low_factor,
        "high_factor": high_factor,
        "metric_low": low,
        "metric_nominal": nominal,
        "metric_high": high,
    }


def tech_sensitivity(
    metric: Union[str, Callable[[XbarTechParams], float]],
    tech: XbarTechParams = DEFAULT_TECH,
    field_names: Sequence[str] = SWEEPABLE_FIELDS,
    low_factor: float = 0.5,
    high_factor: float = 2.0,
    workers: int = 1,
    collector: Optional[TelemetryLike] = None,
    shard_order: Optional[Sequence[int]] = None,
    mp_context: Optional[str] = None,
) -> List[SensitivityRow]:
    """Tornado sweep: ``metric`` under per-field scaling.

    ``metric`` maps a technology table to a scalar — either a
    :data:`METRICS` name (``"speedup"``, ``"energy"``) or a bare
    callable.  Returns one row per field, sorted by swing, widest
    first.

    A *named* metric runs through the sweep-cell machinery
    (:func:`run_sensitivity_cell`), so ``workers=N`` shards the fields
    over a process pool with the same result for any worker count; a
    bare callable cannot be pickled to a worker and therefore only
    supports ``workers=1`` (the in-process legacy path).
    """
    check_positive("low_factor", low_factor)
    check_positive("high_factor", high_factor)
    if isinstance(metric, str):
        # Lazy: sweep sits above arch in the layer DAG (ARCH001);
        # only the sharded path needs the cell machinery.
        from repro.sweep import SweepCell, run_sweep

        cells = [
            SweepCell(
                "sensitivity_point",
                {
                    "name": field_name,
                    "metric": metric,
                    "field": field_name,
                    "low_factor": float(low_factor),
                    "high_factor": float(high_factor),
                    "tech": asdict(tech),
                },
            )
            for field_name in field_names
        ]
        sweep = run_sweep(
            cells,
            workers=workers,
            collector=collector,
            scope_for=lambda index, cell: f"field[{cell.spec['field']}]",
            shard_order=shard_order,
            mp_context=mp_context,
        )
        results = sweep.results()
        if any(point["metric_nominal"] == 0 for point in results):
            raise ValueError("metric is zero at the nominal point")
        rows = [
            SensitivityRow(
                field=point["field"],
                low_factor=point["low_factor"],
                high_factor=point["high_factor"],
                metric_low=point["metric_low"],
                metric_nominal=point["metric_nominal"],
                metric_high=point["metric_high"],
            )
            for point in results
        ]
        rows.sort(key=lambda row: row.swing, reverse=True)
        return rows
    if workers != 1:
        raise ValueError(
            "workers > 1 needs a named metric (a METRICS key); a bare "
            "callable cannot be shipped to worker processes"
        )
    nominal = metric(tech)
    if nominal == 0:
        raise ValueError("metric is zero at the nominal point")
    rows = []
    for field_name in field_names:
        low = metric(scaled_tech(tech, field_name, low_factor))
        high = metric(scaled_tech(tech, field_name, high_factor))
        rows.append(
            SensitivityRow(
                field=field_name,
                low_factor=low_factor,
                high_factor=high_factor,
                metric_low=low,
                metric_nominal=nominal,
                metric_high=high,
            )
        )
    rows.sort(key=lambda row: row.swing, reverse=True)
    return rows


def conclusion_robustness(
    metrics: Dict[str, Callable[[XbarTechParams], float]],
    predicates: Dict[str, Callable[[Dict[str, float]], bool]],
    tech: XbarTechParams = DEFAULT_TECH,
    field_names: Sequence[str] = SWEEPABLE_FIELDS,
    factors: Tuple[float, float] = (0.5, 2.0),
) -> Dict[str, bool]:
    """Check that named conclusions hold at every sweep corner.

    ``metrics`` are named scalar functions of the tech table;
    ``predicates`` receive the metric dict and return whether a
    conclusion holds.  Each field is perturbed one-at-a-time; the
    return maps conclusion name -> held at every point.
    """
    held = {name: True for name in predicates}
    points = [tech] + [
        scaled_tech(tech, field_name, factor)
        for field_name in field_names
        for factor in factors
    ]
    for point in points:
        values = {name: fn(point) for name, fn in metrics.items()}
        for name, predicate in predicates.items():
            if not predicate(values):
                held[name] = False
    return held
