"""Technology parameter tables for the accelerator and GPU models.

The paper's evaluation (Sec. III-C) compares PipeLayer and ReGAN
against a GTX 1080.  The original studies drew circuit numbers from
fabricated-device data plus NVSim/CACTI; we cannot re-run those tools,
so this module carries parameter tables assembled from the public
PipeLayer [12], ISAAC [9] and PRIME [8] papers (see DESIGN.md,
"Substitutions").  All downstream models consume only these dataclasses,
so sensitivity studies can sweep any constant.

Units: seconds, joules, watts, square millimetres.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class XbarTechParams:
    """Per-component costs of the ReRAM PIM datapath.

    Parameters
    ----------
    subcycle_time:
        One bit-serial array read, including I&F conversion — ISAAC's
        100 ns IMA read.
    array_read_energy:
        Crossbar dynamic energy per 128x128 array activation.
    adc_energy_per_conversion:
        One 8-bit I&F/counter conversion (~2 mW at 1.28 GS/s).
    driver_energy_per_line:
        One spike-driver (binary word-line) fire.
    shift_add_energy_per_column:
        Digital shift-and-add merge per column result.
    cell_write_energy:
        Programming one ReRAM cell (set/reset incl. verify).
    cell_write_time:
        Per-cell program pulse (rows written in parallel per column
        group; the update of a whole layer is the paper's one cycle).
    buffer_energy_per_bit:
        Read or write of one bit in a memory/buffer subarray.
    array_static_power:
        Always-on power per physical array (shared ADC slice, sense
        amps, decoders).
    controller_static_power:
        Bank control units, I/O and clocking for the whole chip.
    array_area_mm2:
        Die area of one 128x128 array plus its share of periphery.
    """

    subcycle_time: float = 100e-9
    array_read_energy: float = 2.0e-12
    adc_energy_per_conversion: float = 1.6e-12
    driver_energy_per_line: float = 0.05e-12
    shift_add_energy_per_column: float = 0.2e-12
    cell_write_energy: float = 50.0e-12
    cell_write_time: float = 50e-9
    buffer_energy_per_bit: float = 1.0e-12
    array_static_power: float = 2.0e-3
    controller_static_power: float = 2.0
    array_area_mm2: float = 0.0025

    def __post_init__(self) -> None:
        for name in (
            "subcycle_time",
            "array_read_energy",
            "adc_energy_per_conversion",
            "cell_write_energy",
            "cell_write_time",
            "buffer_energy_per_bit",
            "array_area_mm2",
        ):
            check_positive(name, getattr(self, name))
        for name in (
            "driver_energy_per_line",
            "shift_add_energy_per_column",
            "array_static_power",
            "controller_static_power",
        ):
            check_non_negative(name, getattr(self, name))

    def scaled(self, **overrides) -> "XbarTechParams":
        """Copy with selected fields replaced (for ablations)."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class GpuParams:
    """Roofline parameters of the baseline GPU.

    Defaults describe the GTX 1080 the paper compares against:
    8873 GFLOPS peak fp32, 320 GB/s GDDR5X, 180 W board power.
    Utilisation factors reflect typical cuDNN efficiency by layer
    type (convolutions vectorise well; FC layers at inference batch
    sizes are bandwidth-bound).
    """

    name: str = "GTX 1080"
    peak_flops: float = 8.873e12
    memory_bandwidth: float = 320e9
    board_power: float = 180.0
    conv_utilization: float = 0.55
    fc_utilization: float = 0.30
    pool_utilization: float = 0.10
    kernel_launch_overhead: float = 5e-6
    bytes_per_value: int = 4

    def __post_init__(self) -> None:
        check_positive("peak_flops", self.peak_flops)
        check_positive("memory_bandwidth", self.memory_bandwidth)
        check_positive("board_power", self.board_power)
        for name in ("conv_utilization", "fc_utilization", "pool_utilization"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        check_non_negative("kernel_launch_overhead", self.kernel_launch_overhead)
        check_positive("bytes_per_value", self.bytes_per_value)

    def utilization_for(self, kind: str) -> float:
        """Peak-FLOPS fraction achievable for a layer kind."""
        if kind in ("conv", "fcnn"):
            return self.conv_utilization
        if kind == "fc":
            return self.fc_utilization
        return self.pool_utilization


#: Default PIM technology (PipeLayer/ISAAC-derived constants).
DEFAULT_TECH = XbarTechParams()

#: Default GPU baseline (GTX 1080, the paper's comparator).
GTX1080 = GpuParams()
