"""Analytic roofline model of the baseline GPU (GTX 1080).

The paper's Table I reports speedup and energy saving *relative to* a
GTX 1080 running the same workloads (Sec. III-C).  Without the physical
card, we model it with a per-layer roofline: a layer takes the larger
of its compute time (FLOPs over achievable FLOP/s) and its memory time
(bytes moved over DRAM bandwidth), plus a kernel-launch overhead;
energy is board power times time.  This keeps exactly the two regimes
that decide who wins in the papers' analyses — compute-bound
convolutions and bandwidth-bound FC layers — which is what the
reproduction needs to preserve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.arch.params import GTX1080, GpuParams
from repro.utils.validation import check_positive
from repro.workloads.specs import LayerSpec
from repro.workloads.suite import NetworkSpec

#: Backward work per layer relative to forward: grad-input + grad-weight
#: are each one convolution-sized job.
BACKWARD_FLOP_FACTOR = 2.0


@dataclass(frozen=True)
class GpuLayerTiming:
    """Roofline breakdown for one layer at one batch size."""

    name: str
    compute_time: float
    memory_time: float
    overhead: float

    @property
    def time(self) -> float:
        """Layer wall time: roofline max plus launch overhead."""
        return max(self.compute_time, self.memory_time) + self.overhead

    @property
    def bound(self) -> str:
        """Which roofline leg dominates."""
        return "compute" if self.compute_time >= self.memory_time else "memory"


class GpuModel:
    """Roofline timing and energy for a network on the baseline GPU."""

    def __init__(self, params: GpuParams = GTX1080) -> None:
        self.params = params

    # -- per layer ---------------------------------------------------------
    def layer_timing(
        self, layer: LayerSpec, batch: int, training: bool = False
    ) -> GpuLayerTiming:
        """Roofline timing of one layer over a batch.

        Weights are read once per batch; activations move per image.
        Training multiplies compute by ``1 + BACKWARD_FLOP_FACTOR`` and
        roughly doubles activation traffic (outputs and their errors).
        """
        check_positive("batch", batch)
        params = self.params
        flops = float(layer.flops) * batch
        activation_values = (layer.input_size + layer.output_size) * batch
        weight_values = layer.weight_count
        if training:
            flops *= 1.0 + BACKWARD_FLOP_FACTOR
            activation_values *= 2
            weight_values *= 2  # read for forward, written at update
        compute_time = flops / (
            params.peak_flops * params.utilization_for(layer.kind)
        )
        bytes_moved = params.bytes_per_value * (
            activation_values + weight_values
        )
        memory_time = bytes_moved / params.memory_bandwidth
        return GpuLayerTiming(
            name=layer.name or layer.kind,
            compute_time=compute_time,
            memory_time=memory_time,
            overhead=params.kernel_launch_overhead,
        )

    # -- per network ----------------------------------------------------------
    def network_time(
        self, network: NetworkSpec, batch: int, training: bool = False
    ) -> float:
        """Wall time for one batch through the whole network."""
        return sum(
            self.layer_timing(layer, batch, training).time
            for layer in network.layers
        )

    def layer_breakdown(
        self, network: NetworkSpec, batch: int, training: bool = False
    ) -> List[GpuLayerTiming]:
        """Per-layer roofline records (for reports and tests)."""
        return [
            self.layer_timing(layer, batch, training)
            for layer in network.layers
        ]

    def time_per_image(
        self, network: NetworkSpec, batch: int, training: bool = False
    ) -> float:
        """Amortised time per image at the given batch size."""
        return self.network_time(network, batch, training) / batch

    def energy_per_image(
        self, network: NetworkSpec, batch: int, training: bool = False
    ) -> float:
        """Board energy per image (power x time)."""
        return self.time_per_image(network, batch, training) * (
            self.params.board_power
        )

    def throughput(
        self, network: NetworkSpec, batch: int, training: bool = False
    ) -> float:
        """Images per second."""
        return 1.0 / self.time_per_image(network, batch, training)

    # -- GAN training -----------------------------------------------------------
    def gan_iteration_time(
        self,
        generator: NetworkSpec,
        discriminator: NetworkSpec,
        batch: int,
    ) -> float:
        """One GAN training iteration (Fig. 8's three dataflows).

        Train D on real (D fwd+bwd), train D on fake (G fwd, D
        fwd+bwd), train G (G fwd+bwd, D fwd+bwd) — the standard
        sequential GPU schedule with no cross-phase overlap.
        """
        d_train = self.network_time(discriminator, batch, training=True)
        g_forward = self.network_time(generator, batch, training=False)
        g_train = self.network_time(generator, batch, training=True)
        phase1 = d_train
        phase2 = g_forward + d_train
        phase3 = g_train + self.network_time(
            discriminator, batch, training=True
        )
        return phase1 + phase2 + phase3

    def gan_iteration_energy(
        self,
        generator: NetworkSpec,
        discriminator: NetworkSpec,
        batch: int,
    ) -> float:
        """Board energy of one GAN training iteration."""
        return (
            self.gan_iteration_time(generator, discriminator, batch)
            * self.params.board_power
        )
