"""Counter-tree energy attribution: events x cost table -> joules.

The telemetry layer counts every physical event the simulated
accelerator performs — crossbar array reads, spike-driver (DAC) line
fires, I&F ADC samples, shift-add merges, ReRAM cell writes, buffer
bit transfers, and static-power occupancy sub-cycles.  This module
multiplies those counters by a per-event cost table (built by
:func:`repro.arch.components.event_costs`, passed in as a plain dict
so this module never imports the arch layer) and assembles a
schema-versioned ``energy`` report: per-group and per-tile energy
breakdowns, energy-per-inference / energy-per-epoch, and average
power.

Everything here is a pure function of ``(counter map, cost table)``:
deterministic, byte-identical across engine backends and sweep worker
counts, and exactly consistent with the closed-form analytic models —
one array read priced through the cost table equals
:func:`repro.arch.components.array_subcycle_energy` by construction,
which is what the consistency gates in the estimator and the
``energy_attribution`` benchmark assert.

Event-counter grammar (leaves under any group prefix)
-----------------------------------------------------
======================  ============================================
leaf                     meaning
======================  ============================================
``array_reads``          bit-serial reads of one physical array
``dac.line_fires``       spike-driver word-line activations
``adc.samples``          I&F ADC conversions (one per bit line read)
``shift_adds``           shift-and-add column merges
``cell_writes``          ReRAM cells programmed (write pulses)
``buffer.bits``          bits moved through buffer subarray ports
``static.array_subcycles``       array-subcycle occupancy (idle too)
``static.controller_subcycles``  controller/chip busy sub-cycles
======================  ============================================
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.telemetry.collector import Number, SCHEMA_VERSION, TelemetryLike

#: Keys a cost table must carry (values: joules per event, watts for
#: static power, seconds per sub-cycle).
COST_KEYS = (
    "array_read_joules",
    "dac_line_joules",
    "adc_sample_joules",
    "shift_add_joules",
    "cell_write_joules",
    "buffer_bit_joules",
    "array_static_watts",
    "controller_static_watts",
    "subcycle_seconds",
)

#: Components every energy breakdown reports, in render order: the
#: crossbar array itself, the I&F ADC column periphery (conversions +
#: shift-add merges), the spike-driver/DAC row periphery, weight-write
#: pulses, buffer transfers, and static power.
ENERGY_COMPONENTS = (
    "array", "adc", "driver", "write", "buffer", "static",
)

#: Event-counter leaf -> the component its energy lands in.
_EVENT_COMPONENT = {
    "array_reads": "array",
    "adc.samples": "adc",
    "shift_adds": "adc",
    "dac.line_fires": "driver",
    "cell_writes": "write",
    "buffer.bits": "buffer",
    "static.array_subcycles": "static",
    "static.controller_subcycles": "static",
}

#: Event-counter leaf -> joules per counted event given a cost table.
_EVENT_PRICE = {
    "array_reads": lambda c: c["array_read_joules"],
    "adc.samples": lambda c: c["adc_sample_joules"],
    "shift_adds": lambda c: c["shift_add_joules"],
    "dac.line_fires": lambda c: c["dac_line_joules"],
    "cell_writes": lambda c: c["cell_write_joules"],
    "buffer.bits": lambda c: c["buffer_bit_joules"],
    "static.array_subcycles": lambda c: (
        c["array_static_watts"] * c["subcycle_seconds"]
    ),
    "static.controller_subcycles": lambda c: (
        c["controller_static_watts"] * c["subcycle_seconds"]
    ),
}


def validate_cost_table(costs: Mapping[str, float]) -> Dict[str, float]:
    """Check a cost table's keys/values; returns a plain float dict."""
    table: Dict[str, float] = {}
    for key in COST_KEYS:
        if key not in costs:
            raise ValueError(f"cost table missing key {key!r}")
        value = costs[key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(
                f"cost table {key!r} must be a number, got {value!r}"
            )
        if value < 0:
            raise ValueError(f"cost table {key!r} must be >= 0")
        table[key] = float(value)
    return table


def _split_leaf(path: str) -> Tuple[str, str]:
    prefix, _, leaf = path.rpartition("/")
    return prefix, leaf


def _tile_rows(
    counters: Mapping[str, Number],
    prefix: str,
    dynamic_mvm_joules: float,
) -> List[Dict[str, Any]]:
    """Per-tile shares of one group's MVM-path dynamic energy.

    Tiles record only ``reads`` (and ``adc.conversions``); their share
    of the group's array+ADC+driver energy is attributed
    proportionally to reads — exact when tiles are homogeneous, which
    the balanced Fig. 4 mapping guarantees per layer.
    """
    marker = f"{prefix}/tile[" if prefix else "tile["
    tiles: Dict[str, Number] = {}
    for path, value in counters.items():
        if not path.startswith(marker):
            continue
        inner, bracket, leaf = path[len(marker):].partition("]/")
        if not bracket or leaf != "reads":
            continue
        tiles[inner] = value
    total_reads = float(sum(tiles.values()))
    rows = []
    for tile in sorted(tiles):
        share = float(tiles[tile]) / total_reads if total_reads else 0.0
        rows.append(
            {
                "tile": tile,
                "reads": tiles[tile],
                "read_share": share,
                "energy_joules": share * dynamic_mvm_joules,
            }
        )
    return rows


def attribute_energy(
    counters: Mapping[str, Number],
    costs: Mapping[str, float],
    source_name: str = "counters",
) -> Dict[str, Any]:
    """Walk a counter tree and price every event: the ``energy`` report.

    Any prefix directly owning at least one event-counter leaf (see
    the module docstring) becomes a *group* with its own component
    breakdown; groups nest naturally (an engine layer under a serve
    tenant under the collector root each resolve separately).  The
    report's ``totals`` sum every group, derive ``average_watts`` from
    static occupancy (simulated seconds = controller sub-cycles x
    sub-cycle time), and — when ``inference.inputs`` / ``epochs``
    counters are present anywhere in the tree — energy-per-inference
    and energy-per-epoch.
    """
    table = validate_cost_table(costs)
    groups: Dict[str, Dict[str, Any]] = {}
    inference_inputs = 0.0
    epochs = 0.0
    for path, value in counters.items():
        prefix, leaf = _split_leaf(path)
        if leaf == "inference.inputs":
            inference_inputs += float(value)
        elif leaf == "epochs":
            epochs += float(value)
        component = _EVENT_COMPONENT.get(leaf)
        if component is None:
            continue
        group = groups.setdefault(
            prefix,
            {
                "prefix": prefix,
                "events": {},
                "components": {name: 0.0 for name in ENERGY_COMPONENTS},
            },
        )
        group["events"][leaf] = value
        group["components"][component] += (
            float(value) * _EVENT_PRICE[leaf](table)
        )
    rows: List[Dict[str, Any]] = []
    totals = {name: 0.0 for name in ENERGY_COMPONENTS}
    total_controller_subcycles = 0.0
    for prefix in sorted(groups):
        group = groups[prefix]
        components = group["components"]
        dynamic = sum(
            components[name] for name in ENERGY_COMPONENTS
            if name != "static"
        )
        total = dynamic + components["static"]
        controller_subcycles = float(
            group["events"].get("static.controller_subcycles", 0)
        )
        seconds = controller_subcycles * table["subcycle_seconds"]
        group_row = {
            "prefix": prefix,
            "events": {
                leaf: group["events"][leaf]
                for leaf in sorted(group["events"])
            },
            "components": components,
            "dynamic_joules": dynamic,
            "total_joules": total,
            "simulated_seconds": seconds,
            "average_watts": total / seconds if seconds else 0.0,
            "tiles": _tile_rows(
                counters,
                prefix,
                components["array"] + components["adc"]
                + components["driver"],
            ),
        }
        rows.append(group_row)
        for name in ENERGY_COMPONENTS:
            totals[name] += components[name]
        total_controller_subcycles += controller_subcycles
    dynamic = sum(
        totals[name] for name in ENERGY_COMPONENTS if name != "static"
    )
    total = dynamic + totals["static"]
    seconds = total_controller_subcycles * table["subcycle_seconds"]
    summary: Dict[str, Any] = {
        "components": totals,
        "dynamic_joules": dynamic,
        "total_joules": total,
        "simulated_seconds": seconds,
        "average_watts": total / seconds if seconds else 0.0,
    }
    if inference_inputs:
        summary["inference_inputs"] = inference_inputs
        summary["energy_per_inference_joules"] = total / inference_inputs
    if epochs:
        summary["epochs"] = epochs
        summary["energy_per_epoch_joules"] = total / epochs
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "energy",
        "source": str(source_name),
        "costs": table,
        "groups": rows,
        "totals": summary,
    }


def validate_energy_report(document: Dict[str, Any]) -> Dict[str, Any]:
    """Raise ``ValueError`` unless ``document`` is a valid energy report."""
    if not isinstance(document, dict):
        raise ValueError(
            f"energy report must be a dict, got {type(document).__name__}"
        )
    if document.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"energy schema_version {document.get('schema_version')!r} "
            f"!= supported {SCHEMA_VERSION}"
        )
    if document.get("kind") != "energy":
        raise ValueError(
            f"energy kind {document.get('kind')!r} != 'energy'"
        )
    for key, key_type in (
        ("source", str), ("costs", dict), ("groups", list),
        ("totals", dict),
    ):
        if key not in document:
            raise ValueError(f"energy report missing key {key!r}")
        if not isinstance(document[key], key_type):
            raise ValueError(
                f"energy key {key!r} must be {key_type.__name__}, got "
                f"{type(document[key]).__name__}"
            )
    validate_cost_table(document["costs"])
    records = list(document["groups"]) + [document["totals"]]
    for record in records:
        for key in ("components", "dynamic_joules", "total_joules",
                    "simulated_seconds", "average_watts"):
            if key not in record:
                raise ValueError(
                    f"energy record missing key {key!r}: {record!r}"
                )
        components = record["components"]
        for name in ENERGY_COMPONENTS:
            if name not in components:
                raise ValueError(
                    f"energy components missing {name!r}: {components!r}"
                )
            if components[name] < 0:
                raise ValueError(
                    f"energy component {name!r} must be >= 0"
                )
        reconstructed = sum(components[name] for name in ENERGY_COMPONENTS)
        if abs(reconstructed - record["total_joules"]) > max(
            1e-9 * abs(record["total_joules"]), 1e-18
        ):
            raise ValueError(
                f"energy components do not sum to total_joules: {record!r}"
            )
    return document


def energy_counter_map(
    report: Mapping[str, Any], prefix: str = "energy"
) -> Dict[str, float]:
    """Flat ``energy/..._joules`` counters summarising one report.

    The counter form of the report's ``totals`` — what the serve layer
    and sweep cells publish so priced energy flows through the same
    merge/exposition machinery as every other counter.  All values are
    totals, so additive :meth:`~repro.telemetry.Collector.merge_counters`
    aggregation stays order-independent.
    """
    totals = report["totals"]
    counters = {
        f"{prefix}/{name}_joules": float(totals["components"][name])
        for name in ENERGY_COMPONENTS
    }
    counters[f"{prefix}/total_joules"] = float(totals["total_joules"])
    counters[f"{prefix}/simulated_seconds"] = float(
        totals["simulated_seconds"]
    )
    return counters


def emit_energy_counters(
    tel: TelemetryLike,
    counters: Mapping[str, Number],
    costs: Mapping[str, float],
    source_name: str = "counters",
) -> Dict[str, Any]:
    """Attribute ``counters`` and publish the totals onto ``tel``.

    Returns the full energy report; the ``energy/*`` counters land via
    ``count`` so repeated emission (e.g. one per sweep cell into a
    shared collector) accumulates additively and order-independently.
    """
    report = attribute_energy(counters, costs, source_name=source_name)
    for path, value in energy_counter_map(report).items():
        tel.count(path, value)
    return report


__all__ = [
    "COST_KEYS",
    "ENERGY_COMPONENTS",
    "attribute_energy",
    "emit_energy_counters",
    "energy_counter_map",
    "validate_cost_table",
    "validate_energy_report",
]
