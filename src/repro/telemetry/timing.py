"""The one sanctioned wall-clock read for instrumented subsystems.

``repro check`` rule DET001 bans wall-clock reads outside
``repro/telemetry/`` (and the CLI's timing shims) so simulation
results can never depend on the host clock.  Subsystems that *do*
legitimately measure host latency — the serve stack's queue-wait and
end-to-end histograms — therefore read the clock through this module
instead of importing :mod:`time` themselves: the dependency is
explicit, grep-able, and stays inside the allow-listed package.

Wall-clock values feed *histograms and spans only*; they are excluded
from every determinism contract (the same rule that has always
applied to :meth:`repro.telemetry.Collector.span`).
"""

from __future__ import annotations

import time


def wall_clock() -> float:
    """Monotonic host time in seconds (``time.perf_counter``).

    Only meaningful as a difference between two reads; never persist
    the absolute value into a deterministic document.
    """
    return time.perf_counter()


__all__ = ["wall_clock"]
