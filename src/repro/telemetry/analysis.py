"""Derived performance metrics over telemetry counter maps.

:mod:`repro.telemetry` records *raw* counted events — per-stage busy
cycles, per-tile reads and ADC conversions, MVM calls.  This module
turns those counters into the derived efficiency metrics the source
papers argue with (stage utilization and bubble cycles for the Fig. 5
and Fig. 8 pipelines, ADC conversions per MAC and tile occupancy for
the crossbar engine, parallelism/efficiency roll-ups), without
re-running any simulation: every function here is pure and operates on
a flat ``path -> value`` counter map.

The entry point is :func:`analyze_counters`, which scans a counter map
for every recognisable subtree and assembles a schema-versioned
``analysis`` document (validated by
:func:`repro.telemetry.validate_analysis_report`); the ``repro
report`` CLI subcommand is a thin wrapper that renders that document.

Counter-path patterns recognised
--------------------------------
* ``<prefix>/stage[<s>].busy_cycles`` + ``<prefix>/makespan_cycles`` —
  a linear pipeline recorded by
  :func:`repro.core.schedule.simulate_training_pipeline` (Fig. 5) at
  any scope depth (``pipeline/...`` under ``repro trace``, nested
  scopes under campaigns).
* ``<prefix>/resource[<r>].busy_cycles`` — a GAN schedule recorded by
  :func:`repro.core.gan_schedule.simulate_gan_iteration` (Fig. 8).
* ``<group>/<layer>/mvm_calls`` (+ ``macs``, ``adc_conversions``,
  ``array_reads``, ``subcycles``, ``tile[<t>]/...``) — a deployed
  crossbar engine layer (any group prefix, usually ``engine``).
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.telemetry.collector import Collector, Number, SCHEMA_VERSION

_STAGE_RE = re.compile(r"stage\[(\d+)\]\.busy_cycles$")
_RESOURCE_RE = re.compile(r"resource\[([^\]]+)\]\.busy_cycles$")
_TILE_RE = re.compile(r"^tile\[([^\]]+)\]/(.+)$")

#: Engine-level counters copied verbatim into each layer record.
_ENGINE_FIELDS = (
    "mvm_calls",
    "macs",
    "subcycles",
    "array_reads",
    "array_programs",
    "adc_conversions",
    "weights_programmed",
    "fast_ideal_calls",
)

CounterSource = Union[Collector, Mapping[str, Any]]


def counters_from(source: CounterSource) -> Dict[str, Number]:
    """Flat counter map from a collector, counter dict, or document.

    Accepts a :class:`~repro.telemetry.Collector`, a flat
    ``path -> value`` mapping, or any telemetry JSON document carrying
    a ``"counters"`` section (profile reports, collector reports,
    bench documents).
    """
    if isinstance(source, Collector):
        return source.counters()
    if isinstance(source, Mapping):
        if "counters" in source and isinstance(source["counters"], Mapping):
            return dict(source["counters"])
        return dict(source)
    raise TypeError(
        f"cannot extract counters from {type(source).__name__}; pass a "
        "Collector, a flat counter map, or a document with a 'counters' "
        "section"
    )


def _prefix_of(path: str, leaf_match: "re.Match[str]") -> str:
    prefix = path[: leaf_match.start()].rstrip("/")
    return prefix


def _scoped(counters: Mapping[str, Number], prefix: str, leaf: str,
            default: Number = 0) -> Number:
    path = f"{prefix}/{leaf}" if prefix else leaf
    return counters.get(path, default)


# -- linear pipelines (Fig. 5) ----------------------------------------------
def schedule_prefixes(counters: Mapping[str, Number]) -> List[str]:
    """Every prefix owning ``stage[<s>].busy_cycles`` counters."""
    prefixes = set()
    for path in counters:
        match = _STAGE_RE.search(path)
        if match and match.start() == _stage_leaf_start(path):
            prefixes.add(_prefix_of(path, match))
    return sorted(prefixes)


def _stage_leaf_start(path: str) -> int:
    """Offset where the leaf segment of ``path`` begins."""
    return path.rfind("/") + 1


def stage_utilization(
    counters: Mapping[str, Number], prefix: str = ""
) -> Dict[str, Any]:
    """Per-stage utilization of one executed linear-pipeline schedule.

    ``prefix`` names the subtree (``"pipeline"`` under ``repro
    trace``; ``""`` when the schedule simulator wrote to the collector
    root).  For each stage ``s``: ``utilization = busy_cycles /
    makespan`` and ``bubble_cycles = makespan - busy_cycles`` (cycles
    the stage sat idle while the schedule ran).  The roll-ups:
    ``parallelism`` is the mean number of busy stages per cycle and
    ``mean_utilization`` (= parallelism / stage count) is the pipeline
    efficiency.
    """
    stages: Dict[int, Number] = {}
    for path, value in counters.items():
        match = _STAGE_RE.search(path)
        if not match or match.start() != _stage_leaf_start(path):
            continue
        if _prefix_of(path, match) != prefix:
            continue
        stages[int(match.group(1))] = value
    if not stages:
        raise ValueError(
            f"no stage[<s>].busy_cycles counters under prefix {prefix!r}"
        )
    makespan = int(_scoped(counters, prefix, "makespan_cycles"))
    rows = []
    for stage in sorted(stages):
        busy = int(stages[stage])
        rows.append(
            {
                "stage": stage,
                "busy_cycles": busy,
                "utilization": busy / makespan if makespan else 0.0,
                "bubble_cycles": max(makespan - busy, 0),
            }
        )
    total_busy = sum(row["busy_cycles"] for row in rows)
    total_bubble = sum(row["bubble_cycles"] for row in rows)
    parallelism = total_busy / makespan if makespan else 0.0
    return {
        "prefix": prefix,
        "makespan_cycles": makespan,
        "stage_count": len(rows),
        "stages": rows,
        "total_busy_cycles": total_busy,
        "total_bubble_cycles": total_bubble,
        "parallelism": parallelism,
        "mean_utilization": parallelism / len(rows),
        "events": int(_scoped(counters, prefix, "events")),
        "updates": int(_scoped(counters, prefix, "updates")),
    }


# -- GAN schedules (Fig. 8) -------------------------------------------------
def gan_prefixes(counters: Mapping[str, Number]) -> List[str]:
    """Every prefix owning ``resource[<r>].busy_cycles`` counters."""
    prefixes = set()
    for path in counters:
        match = _RESOURCE_RE.search(path)
        if match and match.start() == _stage_leaf_start(path):
            prefixes.add(_prefix_of(path, match))
    return sorted(prefixes)


def resource_utilization(
    counters: Mapping[str, Number], prefix: str = ""
) -> Dict[str, Any]:
    """Per-resource utilization of one executed GAN schedule.

    Resources are the hardware chains of
    :mod:`repro.core.gan_schedule` (``G``, ``D0``, ``D1``); their busy
    cycles count stage-occupancy events on each chain.  The chain
    depth is not part of the counter record, so the per-resource
    metric is ``mean_busy_stages = busy_cycles / makespan`` — the mean
    number of simultaneously busy stages on that chain per cycle
    (may exceed 1 for a deep, well-filled chain).
    """
    resources: Dict[str, Number] = {}
    for path, value in counters.items():
        match = _RESOURCE_RE.search(path)
        if not match or match.start() != _stage_leaf_start(path):
            continue
        if _prefix_of(path, match) != prefix:
            continue
        resources[match.group(1)] = value
    if not resources:
        raise ValueError(
            f"no resource[<r>].busy_cycles counters under prefix {prefix!r}"
        )
    makespan = int(_scoped(counters, prefix, "makespan_cycles"))
    rows = []
    for name in sorted(resources):
        busy = int(resources[name])
        rows.append(
            {
                "resource": name,
                "busy_cycles": busy,
                "mean_busy_stages": busy / makespan if makespan else 0.0,
            }
        )
    total_busy = sum(row["busy_cycles"] for row in rows)
    return {
        "prefix": prefix,
        "makespan_cycles": makespan,
        "resources": rows,
        "total_busy_cycles": total_busy,
        "parallelism": total_busy / makespan if makespan else 0.0,
        "events": int(_scoped(counters, prefix, "events")),
        "updates": int(_scoped(counters, prefix, "updates")),
    }


# -- crossbar engines -------------------------------------------------------
def engine_prefixes(counters: Mapping[str, Number]) -> List[str]:
    """Every group prefix holding ``<layer>/mvm_calls`` subtrees.

    ``engine/fc1/mvm_calls`` yields group ``engine``; a campaign's
    ``scenario[stuck=0.01]/engine/fc1/mvm_calls`` yields
    ``scenario[stuck=0.01]/engine``.
    """
    groups = set()
    for path in counters:
        if not path.endswith("/mvm_calls"):
            continue
        layer_prefix = path[: -len("/mvm_calls")]
        group, _, layer = layer_prefix.rpartition("/")
        if layer:
            groups.add(group)
    return sorted(groups)


def _layer_metrics(
    counters: Mapping[str, Number], layer_prefix: str, layer: str
) -> Dict[str, Any]:
    record: Dict[str, Any] = {"layer": layer}
    for field in _ENGINE_FIELDS:
        record[field] = int(_scoped(counters, layer_prefix, field))
    macs = record["macs"]
    mvm_calls = record["mvm_calls"]
    record["adc_per_mac"] = (
        record["adc_conversions"] / macs if macs else None
    )
    record["reads_per_mvm"] = (
        record["array_reads"] / mvm_calls if mvm_calls else None
    )
    record["fast_ideal_fraction"] = (
        record["fast_ideal_calls"] / mvm_calls if mvm_calls else None
    )
    tiles: Dict[str, Dict[str, Number]] = {}
    marker = f"{layer_prefix}/tile["
    for path, value in counters.items():
        if not path.startswith(marker):
            continue
        match = _TILE_RE.match(path[len(layer_prefix) + 1:])
        if not match:
            continue
        tile, metric = match.groups()
        tiles.setdefault(tile, {})[metric] = value
    tile_rows = []
    total_reads = sum(int(t.get("reads", 0)) for t in tiles.values())
    for tile in sorted(tiles):
        reads = int(tiles[tile].get("reads", 0))
        tile_rows.append(
            {
                "tile": tile,
                "reads": reads,
                "adc_conversions": int(
                    tiles[tile].get("adc.conversions", 0)
                ),
                "read_share": reads / total_reads if total_reads else 0.0,
            }
        )
    record["tiles"] = tile_rows
    reads = [row["reads"] for row in tile_rows]
    record["tile_read_balance"] = (
        min(reads) / max(reads) if reads and max(reads) else None
    )
    return record


def engine_metrics(
    counters: Mapping[str, Number], prefix: str = "engine"
) -> Dict[str, Any]:
    """Per-layer and total crossbar-engine efficiency metrics.

    ``adc_per_mac`` is the headline number: I&F ADC conversions per
    multiply-accumulate, the analog-to-digital cost of the balanced
    mapping.  ``tile_read_balance`` (min/max reads across the layer's
    tiles) shows whether the bit-slice/sign planes share load evenly
    — 1.0 is a perfectly balanced Fig. 4 mapping.
    """
    layers = []
    for path in sorted(counters):
        if not path.endswith("/mvm_calls"):
            continue
        layer_prefix = path[: -len("/mvm_calls")]
        group, _, layer = layer_prefix.rpartition("/")
        if group != prefix or not layer:
            continue
        layers.append(_layer_metrics(counters, layer_prefix, layer))
    if not layers:
        raise ValueError(
            f"no <layer>/mvm_calls counters under prefix {prefix!r}"
        )
    totals: Dict[str, Any] = {
        field: sum(record[field] for record in layers)
        for field in _ENGINE_FIELDS
    }
    totals["adc_per_mac"] = (
        totals["adc_conversions"] / totals["macs"]
        if totals["macs"]
        else None
    )
    return {"prefix": prefix, "layers": layers, "totals": totals}


# -- the assembled document -------------------------------------------------
def analyze_counters(
    source: CounterSource, source_name: str = "counters"
) -> Dict[str, Any]:
    """Scan a counter map and assemble the ``analysis`` document.

    Finds every linear-pipeline, GAN-schedule, and crossbar-engine
    subtree (at any scope depth) and derives the per-subtree metrics;
    the result validates against
    :func:`repro.telemetry.validate_analysis_report` and is what
    ``repro report --json`` prints.
    """
    counters = counters_from(source)
    pipelines = [
        stage_utilization(counters, prefix)
        for prefix in schedule_prefixes(counters)
    ]
    gans = [
        resource_utilization(counters, prefix)
        for prefix in gan_prefixes(counters)
    ]
    engines = [
        engine_metrics(counters, prefix)
        for prefix in engine_prefixes(counters)
    ]
    totals: Dict[str, Any] = {"counter_count": len(counters)}
    for key in ("macs", "adc_conversions", "mvm_calls", "array_reads"):
        totals[key] = sum(
            int(group["totals"][key]) for group in engines
        )
    totals["adc_per_mac"] = (
        totals["adc_conversions"] / totals["macs"]
        if totals["macs"]
        else None
    )
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "analysis",
        "source": str(source_name),
        "pipelines": pipelines,
        "gan_pipelines": gans,
        "engines": engines,
        "totals": totals,
    }


# -- rendering --------------------------------------------------------------
def _table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
           indent: str = "  ") -> List[str]:
    def cell(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        if value is None:
            return "-"
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(row[i]) for row in text_rows)) if text_rows
        else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        indent + "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    ]
    for row in text_rows:
        lines.append(
            indent + "  ".join(c.rjust(w) for c, w in zip(row, widths))
        )
    return lines


def render_analysis_report(report: Dict[str, Any]) -> str:
    """Human-readable rendering of an ``analysis`` document."""
    lines: List[str] = [f"analysis of {report['source']}"]
    for pipeline in report["pipelines"]:
        name = pipeline["prefix"] or "<root>"
        lines.append(
            f"\npipeline {name}: {pipeline['stage_count']} stages, "
            f"makespan {pipeline['makespan_cycles']} cycles, "
            f"parallelism {pipeline['parallelism']:.2f} "
            f"(efficiency {pipeline['mean_utilization']:.1%})"
        )
        lines += _table(
            ("stage", "busy", "bubble", "utilization"),
            [
                (
                    row["stage"],
                    row["busy_cycles"],
                    row["bubble_cycles"],
                    f"{row['utilization']:.1%}",
                )
                for row in pipeline["stages"]
            ],
        )
    for gan in report["gan_pipelines"]:
        name = gan["prefix"] or "<root>"
        lines.append(
            f"\nGAN schedule {name}: makespan "
            f"{gan['makespan_cycles']} cycles, parallelism "
            f"{gan['parallelism']:.2f}"
        )
        lines += _table(
            ("resource", "busy", "mean_busy_stages"),
            [
                (
                    row["resource"],
                    row["busy_cycles"],
                    row["mean_busy_stages"],
                )
                for row in gan["resources"]
            ],
        )
    for engine in report["engines"]:
        totals = engine["totals"]
        lines.append(
            f"\nengine {engine['prefix'] or '<root>'}: "
            f"{len(engine['layers'])} layers, "
            f"{totals['mvm_calls']} MVM calls, "
            f"ADC/MAC "
            + (
                f"{totals['adc_per_mac']:.4g}"
                if totals["adc_per_mac"] is not None
                else "-"
            )
        )
        lines += _table(
            ("layer", "mvm_calls", "macs", "adc_conv", "adc/mac",
             "tiles", "tile_balance"),
            [
                (
                    layer["layer"],
                    layer["mvm_calls"],
                    layer["macs"],
                    layer["adc_conversions"],
                    layer["adc_per_mac"],
                    len(layer["tiles"]),
                    layer["tile_read_balance"],
                )
                for layer in engine["layers"]
            ],
        )
    if not (report["pipelines"] or report["gan_pipelines"]
            or report["engines"]):
        lines.append(
            "no pipeline, GAN, or engine subtrees found in "
            f"{report['totals']['counter_count']} counters"
        )
    return "\n".join(lines)


def _si_joules(value: float) -> str:
    """Joules with an SI prefix (energy spans ~15 orders of magnitude)."""
    for scale, suffix in ((1.0, "J"), (1e-3, "mJ"), (1e-6, "uJ"),
                          (1e-9, "nJ"), (1e-12, "pJ")):
        if abs(value) >= scale:
            return f"{value / scale:.4g} {suffix}"
    return f"{value:.4g} J"


def render_energy_report(report: Dict[str, Any]) -> str:
    """Human-readable rendering of an ``energy`` document.

    The table half of the ``repro report --energy`` surface: one row
    per counter group with its component breakdown
    (:data:`repro.telemetry.energy.ENERGY_COMPONENTS`), the roll-up
    totals with average power, and — when the counter tree carried
    ``inference.inputs`` / ``epochs`` — the per-inference and
    per-epoch figures.
    """
    from repro.telemetry.energy import ENERGY_COMPONENTS

    totals = report["totals"]
    lines: List[str] = [
        f"energy attribution of {report['source']}"
        f" ({len(report['groups'])} group(s))"
    ]
    if report["groups"]:
        lines.append("")
        lines += _table(
            ("group",) + ENERGY_COMPONENTS + ("total", "avg_power"),
            [
                tuple(
                    [group["prefix"] or "<root>"]
                    + [
                        _si_joules(group["components"][name])
                        for name in ENERGY_COMPONENTS
                    ]
                    + [
                        _si_joules(group["total_joules"]),
                        f"{group['average_watts']:.4g} W"
                        if group["simulated_seconds"]
                        else "-",
                    ]
                )
                for group in report["groups"]
            ],
            indent="",
        )
    lines.append(
        f"\ntotal {_si_joules(totals['total_joules'])} "
        f"(dynamic {_si_joules(totals['dynamic_joules'])}, "
        f"static {_si_joules(totals['components']['static'])})"
        + (
            f"; {totals['average_watts']:.4g} W average over "
            f"{totals['simulated_seconds']:.4g} simulated s"
            if totals["simulated_seconds"]
            else ""
        )
    )
    if "energy_per_inference_joules" in totals:
        lines.append(
            f"per inference: "
            f"{_si_joules(totals['energy_per_inference_joules'])} "
            f"({int(totals['inference_inputs'])} inputs)"
        )
    if "energy_per_epoch_joules" in totals:
        lines.append(
            f"per epoch: {_si_joules(totals['energy_per_epoch_joules'])} "
            f"({int(totals['epochs'])} epochs)"
        )
    if not report["groups"]:
        lines.append("no event counters found to attribute")
    return "\n".join(lines)


# -- histogram percentiles ---------------------------------------------------

#: Percentiles every latency summary derives.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


def histogram_quantile(
    histogram: Mapping[str, Any], quantile: float
) -> float:
    """Estimate one quantile of a fixed-bucket histogram.

    The standard Prometheus-style estimator: find the bucket holding
    the ``quantile``-th observation and interpolate linearly inside
    it (the first bucket interpolates from 0; the overflow bucket
    clamps to the highest finite bound — fixed bounds cannot resolve
    beyond themselves).  Deterministic: a pure function of the bucket
    counts, so quantiles of deterministic histograms are themselves
    reproducible.  An empty histogram answers ``0.0``.
    """
    if not 0.0 <= quantile <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {quantile}")
    bounds = [float(bound) for bound in histogram["bounds"]]
    counts = [int(count) for count in histogram["counts"]]
    total = int(histogram["count"])
    if total <= 0:
        return 0.0
    rank = quantile * total
    cumulative = 0
    for index, count in enumerate(counts):
        previous = cumulative
        cumulative += count
        if cumulative >= rank and count > 0:
            if index >= len(bounds):
                return bounds[-1]
            lower = bounds[index - 1] if index > 0 else 0.0
            upper = bounds[index]
            fraction = (rank - previous) / count
            return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
    return bounds[-1]


def histogram_percentiles(
    histogram: Mapping[str, Any]
) -> Dict[str, float]:
    """The p50/p95/p99 summary of one histogram dict."""
    return {
        f"p{int(quantile * 100)}": histogram_quantile(
            histogram, quantile
        )
        for quantile in SUMMARY_QUANTILES
    }


def latency_summary(
    histograms: Mapping[str, Mapping[str, Any]],
) -> List[Dict[str, Any]]:
    """Percentile rows for every latency histogram in a report map.

    Selects ``*_seconds`` paths (the unit-suffix grammar enforced by
    ``repro check`` rule TEL002), sorted by path; each row carries the
    observation count, mean, and the :data:`SUMMARY_QUANTILES`.
    """
    rows: List[Dict[str, Any]] = []
    for path in sorted(histograms):
        if not path.rsplit("/", 1)[-1].endswith("_seconds"):
            continue
        histogram = histograms[path]
        count = int(histogram["count"])
        row: Dict[str, Any] = {
            "path": path,
            "count": count,
            "mean": (
                float(histogram["sum"]) / count if count else 0.0
            ),
        }
        row.update(histogram_percentiles(histogram))
        rows.append(row)
    return rows


__all__ = [
    "SUMMARY_QUANTILES",
    "analyze_counters",
    "counters_from",
    "engine_metrics",
    "engine_prefixes",
    "gan_prefixes",
    "histogram_percentiles",
    "histogram_quantile",
    "latency_summary",
    "render_analysis_report",
    "render_energy_report",
    "resource_utilization",
    "schedule_prefixes",
    "stage_utilization",
]
