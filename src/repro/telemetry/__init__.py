"""Hierarchical telemetry & profiling for the whole simulation stack.

The accelerator's claims are counted events, so counting is a layer,
not a logger: one :class:`Collector` threads through the crossbar
engine (both backends, bit-identical counters), the pipeline schedule
simulators, the training loop, and the reliability campaigns, keyed by
``/``-separated component paths.  Timing :meth:`~Collector.span`\\ s
ride along for profiling and export to the Chrome-trace format;
they are wall-clock and excluded from every determinism contract.

Raw counters are *consumed* by :mod:`repro.telemetry.analysis`, which
derives the paper-level efficiency metrics (stage utilization and
bubbles for the Fig. 5 / Fig. 8 pipelines, ADC conversions per MAC and
tile occupancy for the engine) from any counter map.

Quick start::

    from repro import Simulator
    from repro.telemetry import Collector, analyze_counters

    collector = Collector()
    sim = Simulator.from_workload("mlp", seed=0, collector=collector)
    sim.run_inference(count=32)
    print(collector.counters())          # engine/<layer>/... hierarchy
    report = analyze_counters(collector)  # derived metrics document
    collector.write_chrome_trace("trace.json")   # chrome://tracing

CLI: ``repro profile <subcommand> ...`` runs any existing subcommand's
workload under a collector and emits the raw report; ``repro report``
renders the derived-metrics analysis of a profile (or of a freshly
run subcommand).

Three further observability surfaces build on the collector for the
serve/sweep stack: deterministic distributed tracing
(:mod:`repro.telemetry.trace` — logical-clock spans that stitch across
processes), Prometheus text exposition
(:mod:`repro.telemetry.metrics` — ``GET /v1/metrics``), and a
structured JSONL job-lifecycle event log
(:mod:`repro.telemetry.events`).
"""

from repro.telemetry.analysis import (
    SUMMARY_QUANTILES,
    analyze_counters,
    counters_from,
    engine_metrics,
    engine_prefixes,
    gan_prefixes,
    histogram_percentiles,
    histogram_quantile,
    latency_summary,
    render_analysis_report,
    render_energy_report,
    resource_utilization,
    schedule_prefixes,
    stage_utilization,
)
from repro.telemetry.collector import (
    DEFAULT_MAX_SPANS,
    DROPPED_SPANS_COUNTER,
    LATENCY_BUCKET_BOUNDS,
    NULL_COLLECTOR,
    SCHEMA_VERSION,
    SIZE_BUCKET_BOUNDS,
    Collector,
    Histogram,
    ScopedCollector,
    SpanRecord,
    TelemetryLike,
    default_bucket_bounds,
)
from repro.telemetry.energy import (
    COST_KEYS,
    ENERGY_COMPONENTS,
    attribute_energy,
    emit_energy_counters,
    energy_counter_map,
    validate_cost_table,
    validate_energy_report,
)
from repro.telemetry.events import (
    EVENT_NAMES,
    EventLogWriter,
    event_record,
    read_event_log,
    validate_event_record,
)
from repro.telemetry.export import (
    bench_document,
    profile_report,
    trace_chrome_document,
    validate_analysis_report,
    validate_bench_document,
    validate_profile_report,
    validate_trace_chrome_document,
)
from repro.telemetry.metrics import (
    METRIC_NAMESPACE,
    metric_name,
    parse_prometheus,
    render_prometheus,
    sample_value,
)
from repro.telemetry.timing import wall_clock
from repro.telemetry.trace import (
    DEFAULT_MAX_TRACE_SPANS,
    TraceContext,
    TraceLog,
    TraceSpan,
    span_sort_key,
    trace_document,
    trace_id_for,
    validate_trace_document,
)

__all__ = [
    "Collector",
    "ScopedCollector",
    "SpanRecord",
    "TelemetryLike",
    "NULL_COLLECTOR",
    "SCHEMA_VERSION",
    "DEFAULT_MAX_SPANS",
    "DROPPED_SPANS_COUNTER",
    "Histogram",
    "LATENCY_BUCKET_BOUNDS",
    "SIZE_BUCKET_BOUNDS",
    "default_bucket_bounds",
    "profile_report",
    "bench_document",
    "trace_chrome_document",
    "validate_profile_report",
    "validate_bench_document",
    "validate_analysis_report",
    "validate_trace_chrome_document",
    "analyze_counters",
    "counters_from",
    "engine_metrics",
    "engine_prefixes",
    "gan_prefixes",
    "histogram_percentiles",
    "histogram_quantile",
    "latency_summary",
    "render_analysis_report",
    "resource_utilization",
    "schedule_prefixes",
    "stage_utilization",
    "SUMMARY_QUANTILES",
    "COST_KEYS",
    "ENERGY_COMPONENTS",
    "attribute_energy",
    "emit_energy_counters",
    "energy_counter_map",
    "validate_cost_table",
    "validate_energy_report",
    "render_energy_report",
    "DEFAULT_MAX_TRACE_SPANS",
    "TraceContext",
    "TraceLog",
    "TraceSpan",
    "span_sort_key",
    "trace_document",
    "trace_id_for",
    "validate_trace_document",
    "METRIC_NAMESPACE",
    "metric_name",
    "parse_prometheus",
    "render_prometheus",
    "sample_value",
    "EVENT_NAMES",
    "EventLogWriter",
    "event_record",
    "read_event_log",
    "validate_event_record",
    "wall_clock",
]
