"""Hierarchical telemetry & profiling for the whole simulation stack.

The accelerator's claims are counted events, so counting is a layer,
not a logger: one :class:`Collector` threads through the crossbar
engine (both backends, bit-identical counters), the pipeline schedule
simulators, the training loop, and the reliability campaigns, keyed by
``/``-separated component paths.  Timing :meth:`~Collector.span`\\ s
ride along for profiling and export to the Chrome-trace format;
they are wall-clock and excluded from every determinism contract.

Raw counters are *consumed* by :mod:`repro.telemetry.analysis`, which
derives the paper-level efficiency metrics (stage utilization and
bubbles for the Fig. 5 / Fig. 8 pipelines, ADC conversions per MAC and
tile occupancy for the engine) from any counter map.

Quick start::

    from repro import Simulator
    from repro.telemetry import Collector, analyze_counters

    collector = Collector()
    sim = Simulator.from_workload("mlp", seed=0, collector=collector)
    sim.run_inference(count=32)
    print(collector.counters())          # engine/<layer>/... hierarchy
    report = analyze_counters(collector)  # derived metrics document
    collector.write_chrome_trace("trace.json")   # chrome://tracing

CLI: ``repro profile <subcommand> ...`` runs any existing subcommand's
workload under a collector and emits the raw report; ``repro report``
renders the derived-metrics analysis of a profile (or of a freshly
run subcommand).
"""

from repro.telemetry.analysis import (
    analyze_counters,
    counters_from,
    engine_metrics,
    engine_prefixes,
    gan_prefixes,
    render_analysis_report,
    resource_utilization,
    schedule_prefixes,
    stage_utilization,
)
from repro.telemetry.collector import (
    DEFAULT_MAX_SPANS,
    DROPPED_SPANS_COUNTER,
    NULL_COLLECTOR,
    SCHEMA_VERSION,
    Collector,
    ScopedCollector,
    SpanRecord,
    TelemetryLike,
)
from repro.telemetry.export import (
    bench_document,
    profile_report,
    validate_analysis_report,
    validate_bench_document,
    validate_profile_report,
)

__all__ = [
    "Collector",
    "ScopedCollector",
    "SpanRecord",
    "TelemetryLike",
    "NULL_COLLECTOR",
    "SCHEMA_VERSION",
    "DEFAULT_MAX_SPANS",
    "DROPPED_SPANS_COUNTER",
    "profile_report",
    "bench_document",
    "validate_profile_report",
    "validate_bench_document",
    "validate_analysis_report",
    "analyze_counters",
    "counters_from",
    "engine_metrics",
    "engine_prefixes",
    "gan_prefixes",
    "render_analysis_report",
    "resource_utilization",
    "schedule_prefixes",
    "stage_utilization",
]
