"""Deterministic distributed tracing: one trace across many processes.

A *trace* is the tree of work done on behalf of one logical request —
a served job's path through queue, scheduler, cache, and engine, or a
sweep's fan-out across a process pool.  Unlike the wall-clock
:meth:`~repro.telemetry.Collector.span` timeline, traces here are
**deterministic by construction**:

* ``trace_id`` is a content hash of the root name
  (:func:`trace_id_for`), never wall-clock randomness;
* ``span_id`` is a hierarchical ``"0.2.1"`` path allocated by per-node
  sequence counters, so ids are unique across processes *without
  coordination* — a forked child allocates under its parent's id and
  its own sub-ids can never collide with a sibling's;
* timestamps are **logical ticks** from a per-process
  :class:`TraceLog` clock, not host time.

The result: the same seeded run produces byte-identical trace
documents and Chrome-trace exports regardless of worker count, shard
order, or cache state — traces join the repo's determinism contract
instead of being excluded from it.

Cross-process propagation uses the carrier pattern:
:meth:`TraceContext.fork` allocates a child span id and returns a
plain-JSON *carrier* dict; the worker process calls
:meth:`TraceContext.adopt` on it with its own :class:`TraceLog`,
records spans locally, and ships ``log.to_dicts()`` home inside its
payload; the parent :meth:`TraceLog.absorb`\\ s them in input order.
Each carrier names a ``proc`` lane, which the Chrome-trace exporter
(:func:`repro.telemetry.export.trace_chrome_document`) maps to a
distinct pid — worker spans render in their own swimlanes instead of
interleaving.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.telemetry.collector import SCHEMA_VERSION

#: Bound on spans one :class:`TraceLog` stores (same rationale as the
#: collector's span cap); overflow is counted in :attr:`TraceLog.dropped`.
DEFAULT_MAX_TRACE_SPANS = 100_000


def trace_id_for(name: str) -> str:
    """Deterministic 16-hex-digit trace id for a root ``name``.

    A truncated sha256 of the name under a fixed salt — two runs that
    trace the same logical root (``"job-00001"``, ``"sweep"``) get the
    same id, which is exactly what makes re-run traces comparable.
    """
    digest = hashlib.sha256(b"trace:" + name.encode("utf-8"))
    return digest.hexdigest()[:16]


def span_sort_key(span_id: str) -> Tuple[int, ...]:
    """Total order over hierarchical span ids (``"0.2" < "0.10"``)."""
    return tuple(int(part) for part in span_id.split("."))


@dataclass(frozen=True)
class TraceSpan:
    """One closed span of a trace (logical-clock interval).

    ``start`` / ``end`` are ticks of the *recording process's* logical
    clock — comparable within one ``proc`` lane, not across lanes.
    ``attrs`` is a sorted tuple of ``(key, value)`` pairs so the
    record stays hashable and its JSON form canonical.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    proc: str
    start: int
    end: int
    attrs: Tuple[Tuple[str, Any], ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "proc": self.proc,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "TraceSpan":
        attrs = record.get("attrs") or {}
        return cls(
            trace_id=str(record["trace_id"]),
            span_id=str(record["span_id"]),
            parent_id=(
                None if record.get("parent_id") is None
                else str(record["parent_id"])
            ),
            name=str(record["name"]),
            proc=str(record["proc"]),
            start=int(record["start"]),
            end=int(record["end"]),
            attrs=tuple(sorted(attrs.items())),
        )


class TraceLog:
    """Per-process span store plus the process's logical clock.

    One log per process (or per isolated unit of work): the server
    keeps one, each sweep worker builds a throwaway one around its
    cell.  :meth:`absorb` folds remote spans in without advancing the
    local clock — remote ticks live in their own lane.
    """

    def __init__(
        self,
        proc: str = "main",
        max_spans: int = DEFAULT_MAX_TRACE_SPANS,
    ) -> None:
        if max_spans < 0:
            raise ValueError(f"max_spans must be >= 0, got {max_spans}")
        self.proc = proc
        self.max_spans = max_spans
        self._clock = 0
        self._spans: List[TraceSpan] = []
        self._dropped = 0

    def tick(self) -> int:
        """Advance and return the logical clock (first tick is 1)."""
        self._clock += 1
        return self._clock

    def add(self, span: TraceSpan) -> None:
        """Store one closed span (dropped past ``max_spans``)."""
        if len(self._spans) < self.max_spans:
            self._spans.append(span)
        else:
            self._dropped += 1

    def absorb(
        self, records: Iterable[Mapping[str, Any]]
    ) -> int:
        """Fold remote span dicts in; returns how many were added."""
        added = 0
        for record in records:
            self.add(TraceSpan.from_dict(record))
            added += 1
        return added

    def spans(self) -> List[TraceSpan]:
        """Every stored span, in recording/absorption order."""
        return list(self._spans)

    def spans_for(self, trace_id: str) -> List[TraceSpan]:
        """One trace's spans, sorted by hierarchical span id."""
        return sorted(
            (span for span in self._spans if span.trace_id == trace_id),
            key=lambda span: span_sort_key(span.span_id),
        )

    def to_dicts(self) -> List[Dict[str, Any]]:
        """All spans as JSON-able dicts (the cross-process format)."""
        return [span.to_dict() for span in self._spans]

    @property
    def dropped(self) -> int:
        return self._dropped

    def __repr__(self) -> str:
        return (
            f"TraceLog(proc={self.proc!r}, spans={len(self._spans)}, "
            f"clock={self._clock})"
        )


class TraceContext:
    """One *open* span: the handle work holds while it runs.

    Create the root with :meth:`root`, children with :meth:`start` /
    :meth:`span`, cross-process children with :meth:`fork` (parent
    side) + :meth:`adopt` (worker side).  :meth:`finish` closes the
    span into the log exactly once.
    """

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        log: TraceLog,
        proc: Optional[str] = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.log = log
        self.proc = proc if proc is not None else log.proc
        self._children = 0
        self._start = log.tick()
        self._finished = False

    @classmethod
    def root(
        cls,
        name: str,
        log: TraceLog,
        trace_id: Optional[str] = None,
    ) -> "TraceContext":
        """Open the root span of a new trace (id derived from ``name``)."""
        return cls(
            trace_id=trace_id if trace_id is not None
            else trace_id_for(name),
            span_id="0",
            parent_id=None,
            name=name,
            log=log,
        )

    def _child_id(self) -> str:
        child_id = f"{self.span_id}.{self._children}"
        self._children += 1
        return child_id

    def start(self, name: str) -> "TraceContext":
        """Open a child span in the same process/log."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=self._child_id(),
            parent_id=self.span_id,
            name=name,
            log=self.log,
            proc=self.proc,
        )

    @contextmanager
    def span(
        self,
        name: str,
        attrs: Optional[Mapping[str, Any]] = None,
    ) -> Iterator["TraceContext"]:
        """Child span over a ``with`` block (closed even on raise)."""
        child = self.start(name)
        try:
            yield child
        finally:
            child.finish(attrs)

    def fork(self, name: str, proc: str) -> Dict[str, Any]:
        """Allocate a child destined for another process.

        Returns the plain-JSON *carrier*: ship it to the worker (it
        pickles and round-trips through canonical JSON) and
        :meth:`adopt` it there.  The parent records nothing — the
        worker owns the span.
        """
        return {
            "trace_id": self.trace_id,
            "span_id": self._child_id(),
            "parent_id": self.span_id,
            "name": name,
            "proc": proc,
        }

    @classmethod
    def adopt(
        cls, carrier: Mapping[str, Any], log: TraceLog
    ) -> "TraceContext":
        """Open the forked span in the worker, onto the worker's log."""
        return cls(
            trace_id=str(carrier["trace_id"]),
            span_id=str(carrier["span_id"]),
            parent_id=(
                None if carrier.get("parent_id") is None
                else str(carrier["parent_id"])
            ),
            name=str(carrier["name"]),
            log=log,
            proc=str(carrier["proc"]),
        )

    def finish(
        self, attrs: Optional[Mapping[str, Any]] = None
    ) -> TraceSpan:
        """Close the span into the log; idempotence is an error."""
        if self._finished:
            raise RuntimeError(
                f"span {self.span_id!r} ({self.name!r}) already finished"
            )
        self._finished = True
        span = TraceSpan(
            trace_id=self.trace_id,
            span_id=self.span_id,
            parent_id=self.parent_id,
            name=self.name,
            proc=self.proc,
            start=self._start,
            end=self.log.tick(),
            attrs=tuple(sorted((attrs or {}).items())),
        )
        self.log.add(span)
        return span

    def __repr__(self) -> str:
        return (
            f"TraceContext({self.trace_id}/{self.span_id} "
            f"{self.name!r} proc={self.proc!r})"
        )


def trace_document(
    trace_id: str, spans: Iterable[TraceSpan]
) -> Dict[str, Any]:
    """Schema-versioned JSON document for one trace.

    What ``GET /v1/traces/<job_id>`` answers: the trace's spans sorted
    by hierarchical span id, plus the distinct process lanes touched.
    """
    ordered = sorted(
        (span for span in spans if span.trace_id == trace_id),
        key=lambda span: span_sort_key(span.span_id),
    )
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "trace",
        "trace_id": trace_id,
        "span_count": len(ordered),
        "procs": sorted({span.proc for span in ordered}),
        "spans": [span.to_dict() for span in ordered],
    }


def validate_trace_document(document: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` unless ``document`` is a valid trace doc.

    Beyond shape, checks connectivity: every non-root span's parent
    must be present, so a validated trace is one connected tree (the
    cross-process stitching contract).
    """
    for key in ("schema_version", "kind", "trace_id", "span_count",
                "procs", "spans"):
        if key not in document:
            raise ValueError(f"trace document missing key {key!r}")
    if document["schema_version"] != SCHEMA_VERSION:
        raise ValueError(
            f"trace schema_version {document['schema_version']!r} != "
            f"{SCHEMA_VERSION}"
        )
    if document["kind"] != "trace":
        raise ValueError(f"trace kind {document['kind']!r} != 'trace'")
    spans = document["spans"]
    if document["span_count"] != len(spans):
        raise ValueError(
            f"trace span_count {document['span_count']} != "
            f"{len(spans)} spans"
        )
    ids = set()
    for record in spans:
        for key in ("trace_id", "span_id", "parent_id", "name", "proc",
                    "start", "end"):
            if key not in record:
                raise ValueError(f"trace span missing key {key!r}")
        if record["trace_id"] != document["trace_id"]:
            raise ValueError(
                f"span {record['span_id']!r} belongs to trace "
                f"{record['trace_id']!r}, not {document['trace_id']!r}"
            )
        if record["end"] < record["start"]:
            raise ValueError(
                f"span {record['span_id']!r} ends before it starts"
            )
        ids.add(record["span_id"])
    for record in spans:
        parent = record["parent_id"]
        if parent is not None and parent not in ids:
            raise ValueError(
                f"span {record['span_id']!r} has missing parent "
                f"{parent!r} — trace is not connected"
            )


__all__ = [
    "DEFAULT_MAX_TRACE_SPANS",
    "TraceContext",
    "TraceLog",
    "TraceSpan",
    "span_sort_key",
    "trace_document",
    "trace_id_for",
    "validate_trace_document",
]
