"""Hierarchical telemetry collector: counters and timing spans.

The accelerator's headline numbers are *counted events* — spike-driver
activations, I&F ADC conversions, crossbar reads and writes, pipeline
cycle occupancy — so observability is a first-class layer here rather
than a logger bolted on after the fact.  One :class:`Collector` holds

* **counters** — deterministic integer/float accumulators keyed by a
  ``/``-separated component path (``engine/fc1/tile[pos,0]/reads``,
  ``pipeline/stage[2].busy_cycles``).  Counters follow the simulation
  exactly: the loop and vectorized crossbar backends must produce
  **identical** counter telemetry under a shared seed (the
  bit-identity contract of :mod:`repro.xbar.engine`, extended to
  observability and enforced by the backend-equivalence tests).
* **timing spans** — wall-clock intervals opened with :meth:`span`.
  Spans are *non-deterministic by construction* (they measure the
  host, not the simulated hardware) and are therefore excluded from
  every equality check; exporters keep them in a separate section.
* **histograms** — fixed-bucket distributions recorded with
  :meth:`observe` (or the :meth:`timed` context manager for wall
  latencies).  Bucket *bounds* are deterministic constants chosen by
  the path's unit suffix (``*_seconds`` gets latency buckets,
  anything else size buckets), so a histogram of deterministic values
  (batch sizes, queue depths) is itself byte-identical across runs,
  while ``*_seconds`` histograms hold host time and follow the span
  rule: excluded from every determinism contract.

Component-path convention
-------------------------
Segments are joined with ``/`` and name the component hierarchy from
the outside in; the leaf may carry a dotted metric name::

    engine/<layer>/mvm_calls              engine-level totals
    engine/<layer>/tile[<plane>,<slice>]/adc.conversions
    pipeline/stage[<s>].busy_cycles       schedule occupancy
    train/epoch[<i>]                      (span) one training epoch
    reliability/scenario[stuck=0.01]/...  campaign sub-trees

Zero overhead when disabled
---------------------------
Every mutator begins with an ``enabled`` check, and the module-level
:data:`NULL_COLLECTOR` is a shared disabled instance: code paths take
an ``Optional[Collector]`` and fall back to it, so uninstrumented runs
execute one predictable-false branch per hook and allocate nothing.
A disabled collector records no counters, records no spans, and never
changes simulation outputs (pinned by tests).
"""

from __future__ import annotations

import json
import logging
import time
from bisect import bisect_left
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    ContextManager,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

Number = Union[int, float]

#: Version stamp of every JSON document the telemetry layer emits.
SCHEMA_VERSION = 1

#: Default bound on recorded spans: a long training run opens one span
#: per epoch and per profiled call, and an unbounded list would grow
#: without limit (same rationale as the bounded per-call history of
#: ``XbarStats``).  Past the cap, spans are counted but not stored.
DEFAULT_MAX_SPANS = 100_000

#: Counter path under which a collector accounts spans it had to drop
#: because ``max_spans`` was reached — the overflow is *visible* in
#: every counter report instead of silently truncating the timeline.
DROPPED_SPANS_COUNTER = "telemetry/dropped_spans"

#: Default bucket upper bounds for ``*_seconds`` histogram paths:
#: 100 µs .. 10 s, roughly logarithmic — wide enough for a cache probe
#: and a full reliability campaign on the same axis.
LATENCY_BUCKET_BOUNDS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default bucket upper bounds for everything else (counts, sizes):
#: powers of two up to 1024 — batch sizes, queue depths, byte-ish
#: magnitudes all land usefully.
SIZE_BUCKET_BOUNDS: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
)

_log = logging.getLogger("repro.telemetry")


def default_bucket_bounds(path: str) -> Tuple[float, ...]:
    """The fixed bucket bounds a histogram at ``path`` defaults to.

    Chosen by the path's unit suffix so wall-latency and size/count
    histograms each get sensible resolution without per-site tuning —
    and so the bounds are a pure function of the path (deterministic,
    identical in every process).
    """
    leaf = path.rsplit("/", 1)[-1]
    if leaf.endswith("_seconds"):
        return LATENCY_BUCKET_BOUNDS
    return SIZE_BUCKET_BOUNDS


class Histogram:
    """One fixed-bucket distribution (see the module docstring).

    ``bounds`` are the inclusive upper edges of the finite buckets, in
    strictly increasing order; an implicit overflow bucket catches
    everything above the last bound, so ``counts`` always has
    ``len(bounds) + 1`` entries.  Bounds are fixed at creation and
    never adapt to data — that is what keeps a histogram of
    deterministic observations byte-identical across runs, worker
    counts, and merge orders.
    """

    __slots__ = ("bounds", "bucket_counts", "total_count", "total_sum")

    def __init__(self, bounds: Sequence[float]) -> None:
        edges = tuple(float(bound) for bound in bounds)
        if not edges:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise ValueError(
                f"histogram bounds must strictly increase, got {edges}"
            )
        self.bounds: Tuple[float, ...] = edges
        self.bucket_counts: List[int] = [0] * (len(edges) + 1)
        self.total_count = 0
        self.total_sum = 0.0

    def observe(self, value: Number) -> None:
        """Record one observation into its bucket."""
        sample = float(value)
        self.bucket_counts[bisect_left(self.bounds, sample)] += 1
        self.total_count += 1
        self.total_sum += sample

    def merge(self, other: Mapping[str, Any]) -> None:
        """Fold another histogram's :meth:`to_dict` view into this one.

        Bounds must match exactly — merging histograms with different
        bucket layouts would silently misplace counts.
        """
        bounds = tuple(float(bound) for bound in other["bounds"])
        if bounds != self.bounds:
            raise ValueError(
                f"cannot merge histogram with bounds {bounds} into "
                f"bounds {self.bounds}"
            )
        counts = other["counts"]
        if len(counts) != len(self.bucket_counts):
            raise ValueError(
                f"histogram counts length {len(counts)} != "
                f"{len(self.bucket_counts)}"
            )
        for index, count in enumerate(counts):
            self.bucket_counts[index] += int(count)
        self.total_count += int(other["count"])
        self.total_sum += float(other["sum"])

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able view (the wire/merge format)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.bucket_counts),
            "count": self.total_count,
            "sum": self.total_sum,
        }

    def __repr__(self) -> str:
        return (
            f"Histogram(buckets={len(self.bounds)}, "
            f"count={self.total_count}, sum={self.total_sum:.6g})"
        )


@dataclass(frozen=True)
class SpanRecord:
    """One closed timing span (wall-clock, non-deterministic)."""

    path: str
    start_s: float
    duration_s: float
    depth: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "depth": self.depth,
        }


class Collector:
    """Hierarchical counter + span store (see module docstring).

    Parameters
    ----------
    enabled:
        ``False`` turns every mutator into a no-op — the collector
        records nothing and costs one branch per hook.
    record_spans:
        ``False`` keeps counters live but drops timing spans; the
        crossbar engine's *private* collector (the one backing
        ``engine.stats`` when no external collector is attached) runs
        in this mode so hot matmul loops never accumulate span
        records nobody asked for.
    max_spans:
        Bound on stored spans; further spans are timed but only
        counted in :attr:`spans_dropped`.
    """

    def __init__(
        self,
        enabled: bool = True,
        record_spans: bool = True,
        max_spans: int = DEFAULT_MAX_SPANS,
    ) -> None:
        if max_spans < 0:
            raise ValueError(f"max_spans must be >= 0, got {max_spans}")
        self.enabled = enabled
        self.record_spans = record_spans
        self.max_spans = max_spans
        self._counters: Dict[str, Number] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._spans: List[SpanRecord] = []
        self._span_depth = 0
        self._spans_dropped = 0
        self._drop_warned = False
        self._origin = time.perf_counter()

    # -- counters -----------------------------------------------------------
    def count(self, path: str, n: Number = 1) -> None:
        """Add ``n`` to the counter at ``path`` (creating it at 0)."""
        if not self.enabled:
            return
        self._counters[path] = self._counters.get(path, 0) + n

    def set(self, path: str, value: Number) -> None:
        """Set the counter at ``path`` to an absolute value (a gauge)."""
        if not self.enabled:
            return
        self._counters[path] = value

    def get(self, path: str, default: Number = 0) -> Number:
        """Current value of the counter at ``path``."""
        return self._counters.get(path, default)

    def clear(self, path: str) -> None:
        """Drop one counter (no-op if absent)."""
        self._counters.pop(path, None)

    def clear_tree(self, prefix: str) -> None:
        """Drop every counter whose path starts with ``prefix``."""
        for key in [k for k in self._counters if k.startswith(prefix)]:
            del self._counters[key]

    def counters(self) -> Dict[str, Number]:
        """Flat path -> value map, sorted by path (deterministic)."""
        return {path: self._counters[path] for path in sorted(self._counters)}

    def merge_counters(self, counters: Mapping[str, Number]) -> None:
        """Fold another collector's counter map into this one, additively.

        This is how deterministic counters cross a process boundary:
        a sweep cell runs under a private collector in its worker,
        ships :meth:`counters` back inside its payload, and the
        submitting process merges them here — in sorted-path order, so
        the merged state is identical no matter which process computed
        which cell.
        """
        if not self.enabled:
            return
        for path in sorted(counters):
            self._counters[path] = self._counters.get(path, 0) + counters[path]

    def counter_tree(self) -> Dict[str, Any]:
        """Counters nested by ``/`` path segment.

        A path that is both a node and a leaf keeps its leaf value
        under the empty-string key of the node dict.
        """
        tree: Dict[str, Any] = {}
        for path in sorted(self._counters):
            node = tree
            *parents, leaf = path.split("/")
            for segment in parents:
                child = node.get(segment)
                if not isinstance(child, dict):
                    child = {} if child is None else {"": child}
                    node[segment] = child
                node = child
            existing = node.get(leaf)
            if isinstance(existing, dict):
                existing[""] = self._counters[path]
            else:
                node[leaf] = self._counters[path]
        return tree

    # -- histograms ---------------------------------------------------------
    def observe(
        self,
        path: str,
        value: Number,
        bounds: Optional[Sequence[float]] = None,
    ) -> None:
        """Record one observation into the histogram at ``path``.

        The histogram is created on first use with ``bounds`` (or the
        :func:`default_bucket_bounds` for the path); later calls must
        agree — a site passing different explicit bounds for an
        existing histogram raises rather than misbinning.
        """
        if not self.enabled:
            return
        histogram = self._histograms.get(path)
        if histogram is None:
            histogram = Histogram(
                bounds if bounds is not None else
                default_bucket_bounds(path)
            )
            self._histograms[path] = histogram
        elif bounds is not None and tuple(
            float(bound) for bound in bounds
        ) != histogram.bounds:
            raise ValueError(
                f"histogram {path!r} already exists with bounds "
                f"{histogram.bounds}"
            )
        histogram.observe(value)

    @contextmanager
    def timed(self, path: str) -> Iterator[None]:
        """Observe a block's wall-clock duration into ``path``.

        The histogram twin of :meth:`span`: same wall-clock caveat
        (``*_seconds`` histograms are excluded from determinism
        contracts), but aggregated into fixed buckets instead of
        storing one record per call — safe on hot paths.
        """
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(path, time.perf_counter() - start)

    def histogram(self, path: str) -> Optional[Histogram]:
        """The live histogram at ``path``, if one exists."""
        return self._histograms.get(path)

    def histograms(self) -> Dict[str, Dict[str, Any]]:
        """Flat path -> histogram-dict map, sorted by path."""
        return {
            path: self._histograms[path].to_dict()
            for path in sorted(self._histograms)
        }

    def merge_histograms(
        self, histograms: Mapping[str, Mapping[str, Any]]
    ) -> None:
        """Fold another collector's :meth:`histograms` map into this one.

        The histogram counterpart of :meth:`merge_counters`: paths are
        merged in sorted order so cross-process aggregation lands
        identically no matter which process computed what.
        """
        if not self.enabled:
            return
        for path in sorted(histograms):
            view = histograms[path]
            histogram = self._histograms.get(path)
            if histogram is None:
                histogram = Histogram(view["bounds"])
                self._histograms[path] = histogram
            histogram.merge(view)

    # -- spans --------------------------------------------------------------
    @contextmanager
    def span(self, path: str) -> Iterator[None]:
        """Time a block of work as one wall-clock span at ``path``.

        Nesting is recorded through ``depth``; spans are never part of
        any determinism contract.
        """
        if not (self.enabled and self.record_spans):
            yield
            return
        depth = self._span_depth
        self._span_depth = depth + 1
        start = time.perf_counter()
        try:
            yield
        finally:
            duration = time.perf_counter() - start
            self._span_depth = depth
            if len(self._spans) < self.max_spans:
                self._spans.append(
                    SpanRecord(
                        path=path,
                        start_s=start - self._origin,
                        duration_s=duration,
                        depth=depth,
                    )
                )
            else:
                # Surface the overflow instead of discarding silently:
                # account the drop as a counter (visible in every
                # report) and warn once per collector.
                self._spans_dropped += 1
                self._counters[DROPPED_SPANS_COUNTER] = (
                    self._counters.get(DROPPED_SPANS_COUNTER, 0) + 1
                )
                if not self._drop_warned:
                    self._drop_warned = True
                    _log.warning(
                        "span buffer full (max_spans=%d): dropping "
                        "further spans; drops are counted under %r",
                        self.max_spans,
                        DROPPED_SPANS_COUNTER,
                    )

    def spans(self) -> List[SpanRecord]:
        """The recorded spans, in closing order."""
        return list(self._spans)

    @property
    def spans_dropped(self) -> int:
        """Spans timed but not stored because ``max_spans`` was hit."""
        return self._spans_dropped

    # -- lifecycle ----------------------------------------------------------
    def reset(self) -> None:
        """Drop all counters, histograms, and spans; restart the origin."""
        self._counters.clear()
        self._histograms.clear()
        self._spans.clear()
        self._span_depth = 0
        self._spans_dropped = 0
        self._drop_warned = False
        self._origin = time.perf_counter()

    def scope(self, prefix: str) -> "ScopedCollector":
        """A view that prefixes every path with ``prefix + '/'``."""
        return ScopedCollector(self, prefix)

    def __bool__(self) -> bool:
        """Truthy iff enabled — lets hooks guard optional aggregation."""
        return self.enabled

    def __repr__(self) -> str:
        return (
            f"Collector(enabled={self.enabled}, "
            f"counters={len(self._counters)}, spans={len(self._spans)})"
        )

    # -- export -------------------------------------------------------------
    def report(self) -> Dict[str, Any]:
        """JSON-able document: counters (deterministic) + spans (not).

        The counter section is byte-stable across runs with the same
        seed and across engine backends; the span section measures the
        host and is excluded from every equality check.
        """
        return {
            "schema_version": SCHEMA_VERSION,
            "counters": self.counters(),
            "counter_tree": self.counter_tree(),
            "histograms": self.histograms(),
            "spans": [record.to_dict() for record in self._spans],
            "spans_dropped": self._spans_dropped,
        }

    def chrome_trace(self) -> Dict[str, Any]:
        """Spans as Chrome-trace / Perfetto "complete" (``X``) events.

        Load the written file at ``chrome://tracing`` or
        https://ui.perfetto.dev to see the span hierarchy on a
        timeline.  Timestamps are microseconds since the collector's
        origin; nesting falls out of the enclosing ts/dur intervals.
        """
        events: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 1,
                "args": {"name": "repro.telemetry"},
            }
        ]
        for record in self._spans:
            events.append(
                {
                    "name": record.path,
                    "ph": "X",
                    "pid": 1,
                    "tid": 1,
                    "ts": record.start_s * 1e6,
                    "dur": record.duration_s * 1e6,
                    "args": {"depth": record.depth},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: Union[str, Path]) -> Path:
        """Write :meth:`chrome_trace` to ``path``; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.chrome_trace(), indent=2) + "\n")
        return path


class ScopedCollector:
    """A prefixing view onto a base collector.

    Carries the same hook API (``count`` / ``set`` / ``get`` /
    ``clear`` / ``span`` / ``scope``), rewriting every path to
    ``prefix/path`` — this is how one collector threads through nested
    components (simulator -> deployment -> engine -> tile) and ends up
    with one coherent hierarchy.
    """

    def __init__(self, base: Collector, prefix: str) -> None:
        if not prefix:
            raise ValueError("scope prefix must be non-empty")
        self._base = base
        self._prefix = prefix.rstrip("/")

    @property
    def enabled(self) -> bool:
        return self._base.enabled

    @property
    def prefix(self) -> str:
        return self._prefix

    @property
    def base(self) -> Collector:
        """The root collector this view writes into."""
        return self._base

    def _path(self, path: str) -> str:
        return f"{self._prefix}/{path}"

    def count(self, path: str, n: Number = 1) -> None:
        self._base.count(self._path(path), n)

    def set(self, path: str, value: Number) -> None:
        self._base.set(self._path(path), value)

    def get(self, path: str, default: Number = 0) -> Number:
        return self._base.get(self._path(path), default)

    def clear(self, path: str) -> None:
        self._base.clear(self._path(path))

    def clear_tree(self, prefix: str) -> None:
        self._base.clear_tree(self._path(prefix))

    def merge_counters(self, counters: Mapping[str, Number]) -> None:
        """Additively merge a counter map, rewriting paths under the scope."""
        if not self._base.enabled:
            return
        for path in sorted(counters):
            self._base.count(self._path(path), counters[path])

    def observe(
        self,
        path: str,
        value: Number,
        bounds: Optional[Sequence[float]] = None,
    ) -> None:
        self._base.observe(self._path(path), value, bounds=bounds)

    def timed(self, path: str) -> ContextManager[None]:
        return self._base.timed(self._path(path))

    def histogram(self, path: str) -> Optional[Histogram]:
        return self._base.histogram(self._path(path))

    def merge_histograms(
        self, histograms: Mapping[str, Mapping[str, Any]]
    ) -> None:
        """Merge a histogram map, rewriting paths under the scope."""
        if not self._base.enabled:
            return
        for path in sorted(histograms):
            view = histograms[path]
            self._base.merge_histograms({self._path(path): view})

    def span(self, path: str) -> ContextManager[None]:
        return self._base.span(self._path(path))

    def scope(self, prefix: str) -> "ScopedCollector":
        return ScopedCollector(self._base, self._path(prefix))

    def __bool__(self) -> bool:
        return self._base.enabled

    def __repr__(self) -> str:
        return f"ScopedCollector({self._prefix!r} -> {self._base!r})"


#: Any object honouring the collector hook API (a :class:`Collector`
#: or a :class:`ScopedCollector` view).
TelemetryLike = Union[Collector, ScopedCollector]

#: Shared disabled collector: the ``collector or NULL_COLLECTOR``
#: fallback that makes every instrumentation hook a cheap no-op when
#: telemetry is off.  Never enable or write through this instance.
NULL_COLLECTOR = Collector(enabled=False)
