"""Structured JSONL event log: one line per job lifecycle transition.

The serve stack's third observability surface (after metrics and
traces): an append-only machine-readable journal.  Each line is a
schema-versioned :func:`event_record` — the job's id, tenant, kind,
the lifecycle ``event`` (``submitted`` / ``dispatched`` / ``done`` /
``error``), the trace ids tying the line to ``GET /v1/traces/<id>``,
and a server-local monotonic ``seq`` standing in for a timestamp
(events carry **no wall-clock**, so a drained-mode server's event log
is as replayable as its job reports).

Writers flush per line: ``tail -f`` on the ``--event-log`` file
follows a live server, and a crash loses at most the line being
written.
"""

from __future__ import annotations

import json
from pathlib import Path
from types import TracebackType
from typing import Any, Dict, Mapping, Optional, TextIO, Type, Union

from repro.telemetry.collector import SCHEMA_VERSION

#: Lifecycle transitions a job record can journal, in order.
EVENT_NAMES = ("submitted", "dispatched", "done", "error")

_REQUIRED = ("schema_version", "kind", "seq", "event", "job_id",
             "tenant", "job_kind", "trace_id")


def event_record(
    seq: int,
    event: str,
    job_id: str,
    tenant: str,
    job_kind: str,
    trace_id: str,
    span_id: Optional[str] = None,
    attrs: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """One schema-versioned lifecycle event, ready to serialize."""
    record: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "kind": "event",
        "seq": int(seq),
        "event": str(event),
        "job_id": str(job_id),
        "tenant": str(tenant),
        "job_kind": str(job_kind),
        "trace_id": str(trace_id),
    }
    if span_id is not None:
        record["span_id"] = str(span_id)
    if attrs:
        record["attrs"] = dict(attrs)
    return record


def validate_event_record(record: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` unless ``record`` is a valid event line."""
    for key in _REQUIRED:
        if key not in record:
            raise ValueError(f"event record missing key {key!r}")
    if record["schema_version"] != SCHEMA_VERSION:
        raise ValueError(
            f"event schema_version {record['schema_version']!r} != "
            f"{SCHEMA_VERSION}"
        )
    if record["kind"] != "event":
        raise ValueError(f"event kind {record['kind']!r} != 'event'")
    if record["event"] not in EVENT_NAMES:
        raise ValueError(
            f"event name {record['event']!r} not in {EVENT_NAMES}"
        )
    if not isinstance(record["seq"], int) or record["seq"] < 0:
        raise ValueError(
            f"event seq must be a non-negative int, got "
            f"{record['seq']!r}"
        )


class EventLogWriter:
    """Append-only JSONL writer with per-line flush.

    One writer per server; :meth:`write` validates and serializes one
    record per line (sorted keys, so a given record always writes the
    same bytes).  Usable as a context manager.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle: Optional[TextIO] = self.path.open(
            "a", encoding="utf-8"
        )

    def write(self, record: Mapping[str, Any]) -> None:
        """Validate and append one event line, flushing immediately."""
        if self._handle is None:
            raise ValueError(f"event log {self.path} is closed")
        validate_event_record(record)
        self._handle.write(
            json.dumps(record, sort_keys=True, separators=(",", ":"))
            + "\n"
        )
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EventLogWriter":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        traceback: Optional[TracebackType],
    ) -> None:
        self.close()


def read_event_log(path: Union[str, Path]) -> "list[Dict[str, Any]]":
    """Parse and validate every line of an event-log file."""
    records = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        validate_event_record(record)
        records.append(record)
    return records


__all__ = [
    "EVENT_NAMES",
    "EventLogWriter",
    "event_record",
    "read_event_log",
    "validate_event_record",
]
