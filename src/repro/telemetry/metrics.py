"""Prometheus text exposition over a collector, stdlib-only.

Maps the collector's ``/``-separated hierarchical paths onto the flat
Prometheus naming model:

* each ``seg[idx]`` path segment becomes a **label** ``seg="idx"``
  (``serve/tenant[alice]/jobs[inference]`` ->
  ``repro_serve_tenant_jobs{jobs="inference",tenant="alice"}``);
* the remaining segment names (dots flattened to underscores) join
  into the metric name under the ``repro_`` namespace;
* plain counters/gauges expose as ``gauge`` samples; histograms
  (:class:`repro.telemetry.Histogram`) expose in the native histogram
  format — cumulative ``_bucket{le="..."}`` series plus ``_sum`` and
  ``_count``.

Rendering is deterministic: metrics sort by (name, labels), floats
print through ``repr`` (shortest round-trip form).  The parser here
is the test/CLI half of the contract — ``repro top`` and the smoke
tests scrape ``GET /v1/metrics`` and parse the values straight back.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Mapping, Tuple, Union

_Number = Union[int, float]

#: Prefix of every exposed metric name (one namespace per exporter).
METRIC_NAMESPACE = "repro"

_INDEXED_SEGMENT = re.compile(r"^([a-z0-9_.]+)\[(.*)\]$")
_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")
_SAMPLE_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

#: A parsed sample key: ``(metric name, sorted (label, value) pairs)``.
SampleKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def metric_name(path: str) -> Tuple[str, Dict[str, str]]:
    """Prometheus ``(name, labels)`` for one collector path.

    Indexed segments turn into labels keyed by their base name; a
    repeated base name gets a positional suffix so nothing collides.
    """
    parts: List[str] = [METRIC_NAMESPACE]
    labels: Dict[str, str] = {}
    for segment in path.split("/"):
        match = _INDEXED_SEGMENT.match(segment)
        if match:
            base, index = match.group(1), match.group(2)
            name_part = _NAME_SANITIZE.sub("_", base)
            key = name_part
            suffix = 2
            while key in labels:
                key = f"{name_part}_{suffix}"
                suffix += 1
            labels[key] = index
            parts.append(name_part)
        else:
            parts.append(_NAME_SANITIZE.sub("_", segment))
    return "_".join(part for part in parts if part), labels


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _label_block(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape_label(str(labels[key]))}"'
        for key in sorted(labels)
    )
    return "{" + body + "}"


def _format_value(value: _Number) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def render_prometheus(
    counters: Mapping[str, _Number],
    histograms: Mapping[str, Mapping[str, Any]],
) -> str:
    """The full exposition document (``GET /v1/metrics`` body).

    Counter paths expose as ``gauge`` (the collector's ``set`` makes
    them non-monotonic in general); histogram paths expose as
    cumulative-bucket ``histogram`` families.  Output ends with a
    newline, as the text format requires.
    """
    lines: List[str] = []
    typed: "set[str]" = set()

    gauge_samples: List[Tuple[str, str, _Number]] = []
    for path in sorted(counters):
        name, labels = metric_name(path)
        gauge_samples.append((name, _label_block(labels), counters[path]))
    for name, label_block, value in sorted(
        gauge_samples, key=lambda sample: (sample[0], sample[1])
    ):
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name}{label_block} {_format_value(value)}")

    for path in sorted(histograms):
        view = histograms[path]
        name, labels = metric_name(path)
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        for bound, count in zip(view["bounds"], view["counts"]):
            cumulative += int(count)
            bucket_labels = dict(labels)
            bucket_labels["le"] = _format_value(float(bound))
            lines.append(
                f"{name}_bucket{_label_block(bucket_labels)} "
                f"{cumulative}"
            )
        bucket_labels = dict(labels)
        bucket_labels["le"] = "+Inf"
        lines.append(
            f"{name}_bucket{_label_block(bucket_labels)} "
            f"{int(view['count'])}"
        )
        label_block = _label_block(labels)
        lines.append(
            f"{name}_sum{label_block} {_format_value(view['sum'])}"
        )
        lines.append(f"{name}_count{label_block} {int(view['count'])}")
    return "\n".join(lines) + "\n"


_ESCAPE_SEQUENCE = re.compile(r"\\(.)")
_UNESCAPES = {"n": "\n", '"': '"', "\\": "\\"}


def _unescape_label(value: str) -> str:
    # Single pass: sequential str.replace would corrupt a literal
    # backslash followed by 'n' (escaped as '\\n') into a newline.
    return _ESCAPE_SEQUENCE.sub(
        lambda match: _UNESCAPES.get(match.group(1), match.group(1)),
        value,
    )


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def parse_prometheus(text: str) -> Dict[SampleKey, float]:
    """Parse an exposition document back into ``sample key -> value``.

    The inverse of :func:`render_prometheus` for everything the tests
    and ``repro top`` need: comments/TYPE lines are skipped, each
    sample keys on ``(name, sorted label pairs)``.  Raises
    ``ValueError`` on a malformed sample line.
    """
    samples: Dict[SampleKey, float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"malformed metrics line: {raw!r}")
        name, label_body, value = match.groups()
        labels: List[Tuple[str, str]] = []
        if label_body:
            labels = [
                (key, _unescape_label(val))
                for key, val in _LABEL_PAIR.findall(label_body)
            ]
        samples[(name, tuple(sorted(labels)))] = _parse_value(value)
    return samples


def sample_value(
    samples: Mapping[SampleKey, float],
    name: str,
    labels: "Union[Mapping[str, str], None]" = None,
    default: float = 0.0,
) -> float:
    """One sample's value by name + labels (``default`` if absent)."""
    pairs = labels.items() if labels is not None else ()
    key = (name, tuple(sorted((k, str(v)) for k, v in pairs)))
    return samples.get(key, default)


__all__ = [
    "METRIC_NAMESPACE",
    "SampleKey",
    "metric_name",
    "parse_prometheus",
    "render_prometheus",
    "sample_value",
]
