"""Stable JSON documents built from a telemetry collector.

Three document kinds leave this module:

* **profile reports** — what ``repro profile <subcommand> --json``
  emits: the wrapped command, its exit code and wall time, the full
  hierarchical counter map (deterministic: byte-identical across
  backends and across same-seed runs), the timing spans
  (non-deterministic, separate section), and the path of the written
  Chrome-trace file.
* **benchmark documents** — the machine-readable ``BENCH_*.json``
  files the benchmark harness records next to its text tables, seeding
  the perf trajectory (workload, backend, wall time, key counters,
  and an optional deterministic ``metrics`` map the baseline
  comparison of :mod:`repro.bench` gates on).
* **analysis reports** — derived metrics
  (:func:`repro.telemetry.analyze_counters`) that ``repro report``
  emits: stage utilization, bubbles, ADC-per-MAC over a counter map.

All carry ``schema_version`` and have a structural validator here so
CI can assert the schema without external dependencies.
"""

from __future__ import annotations

from numbers import Number as _NumberABC
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.telemetry.collector import SCHEMA_VERSION, Collector
from repro.telemetry.trace import TraceSpan, span_sort_key

_PROFILE_REQUIRED = {
    "schema_version": int,
    "kind": str,
    "command": list,
    "exit_code": int,
    "wall_time_s": _NumberABC,
    "counters": dict,
    "counter_tree": dict,
    "histograms": dict,
    "spans": list,
    "spans_dropped": int,
}

_BENCH_REQUIRED = {
    "schema_version": int,
    "kind": str,
    "bench": str,
    "workload": str,
    "backend": str,
    "wall_time_s": _NumberABC,
    "counters": dict,
}


def profile_report(
    collector: Collector,
    command: Sequence[str],
    exit_code: int,
    wall_time_s: float,
    chrome_trace: Optional[str] = None,
) -> Dict[str, Any]:
    """The ``repro profile`` JSON document for one wrapped command."""
    document: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "kind": "profile",
        "command": list(command),
        "exit_code": int(exit_code),
        "wall_time_s": float(wall_time_s),
        "counters": collector.counters(),
        "counter_tree": collector.counter_tree(),
        "histograms": collector.histograms(),
        "spans": [record.to_dict() for record in collector.spans()],
        "spans_dropped": collector.spans_dropped,
    }
    if chrome_trace is not None:
        document["chrome_trace"] = str(chrome_trace)
    return document


def bench_document(
    bench: str,
    workload: str,
    backend: str,
    wall_time_s: float,
    counters: Dict[str, Any],
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One machine-readable benchmark record (``BENCH_*.json``)."""
    document: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "kind": "bench",
        "bench": str(bench),
        "workload": str(workload),
        "backend": str(backend),
        "wall_time_s": float(wall_time_s),
        "counters": dict(counters),
    }
    if extra:
        document.update(extra)
    return document


def _check_fields(document: Dict[str, Any], required: Dict[str, type],
                  kind: str) -> None:
    if not isinstance(document, dict):
        raise ValueError(f"{kind} document must be a dict, got "
                         f"{type(document).__name__}")
    for field, field_type in required.items():
        if field not in document:
            raise ValueError(f"{kind} document missing field {field!r}")
        if field_type is int and isinstance(document[field], bool):
            raise ValueError(f"{kind} field {field!r} must be an int")
        if not isinstance(document[field], field_type):
            raise ValueError(
                f"{kind} field {field!r} must be "
                f"{getattr(field_type, '__name__', field_type)}, got "
                f"{type(document[field]).__name__}"
            )
    if document["schema_version"] != SCHEMA_VERSION:
        raise ValueError(
            f"{kind} schema_version {document['schema_version']!r} != "
            f"{SCHEMA_VERSION}"
        )


def validate_profile_report(document: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``document`` is a valid profile report."""
    _check_fields(document, _PROFILE_REQUIRED, "profile")
    if document["kind"] != "profile":
        raise ValueError(f"profile kind {document['kind']!r} != 'profile'")
    for path, value in document["counters"].items():
        if not isinstance(path, str) or isinstance(value, bool) or \
                not isinstance(value, _NumberABC):
            raise ValueError(f"counter {path!r} -> {value!r} is not a "
                             "string path with a numeric value")
    for span in document["spans"]:
        for field in ("path", "start_s", "duration_s", "depth"):
            if field not in span:
                raise ValueError(f"span record missing field {field!r}")
        if span["duration_s"] < 0 or span["depth"] < 0:
            raise ValueError(f"span record out of range: {span!r}")


def validate_bench_document(document: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``document`` is a valid bench record."""
    _check_fields(document, _BENCH_REQUIRED, "bench")
    if document["kind"] != "bench":
        raise ValueError(f"bench kind {document['kind']!r} != 'bench'")
    if document["wall_time_s"] < 0:
        raise ValueError("bench wall_time_s must be >= 0")
    metrics = document.get("metrics")
    if metrics is not None:
        if not isinstance(metrics, dict):
            raise ValueError("bench metrics must be a dict")
        for name, value in metrics.items():
            if not isinstance(name, str) or isinstance(value, bool) or \
                    not isinstance(value, _NumberABC):
                raise ValueError(
                    f"bench metric {name!r} -> {value!r} is not a string "
                    "name with a numeric value"
                )


def trace_chrome_document(
    spans: Sequence[Union[TraceSpan, Mapping[str, Any]]],
) -> Dict[str, Any]:
    """Chrome-trace JSON for deterministic trace spans, one pid per proc.

    The multi-process fix: :meth:`Collector.chrome_trace` renders
    wall-clock spans of *one* process and hardcodes ``pid=1``/``tid=1``
    — spans stitched from sweep workers or serve execution units would
    interleave in a single lane.  Here every distinct ``proc`` name
    gets its own pid (assigned by first appearance in span-id order,
    so the assignment is deterministic), with a ``process_name``
    metadata event labelling the lane.

    Timestamps are the spans' logical ticks rendered as microseconds —
    ordering and nesting are exact, absolute durations are not wall
    time.  Because every input (ids, ticks, procs) is deterministic,
    the whole document is byte-identical across same-seed runs and
    worker counts.
    """
    ordered: List[TraceSpan] = sorted(
        (
            span if isinstance(span, TraceSpan)
            else TraceSpan.from_dict(span)
            for span in spans
        ),
        key=lambda span: (span.trace_id, span_sort_key(span.span_id)),
    )
    pids: Dict[str, int] = {}
    for span in ordered:
        if span.proc not in pids:
            pids[span.proc] = len(pids) + 1
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 1,
            "args": {"name": proc},
        }
        for proc, pid in pids.items()
    ]
    for span in ordered:
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "pid": pids[span.proc],
                "tid": 1,
                "ts": span.start * 1.0,
                "dur": (span.end - span.start) * 1.0,
                "args": {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "attrs": dict(span.attrs),
                },
            }
        )
    # Chrome's trace-event format fixes this document's shape — no
    # room for a schema_version stamp the viewer would reject.
    return {  # repro: noqa[SCHEMA001]
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }


def validate_trace_chrome_document(document: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``document`` is a Chrome trace.

    Checks the shape :func:`trace_chrome_document` emits: a
    ``traceEvents`` list of metadata (``ph == "M"``) and complete
    (``ph == "X"``) events, where every span lane (``pid``) is
    labelled by a ``process_name`` metadata event.
    """
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("chrome trace must carry a traceEvents list")
    labelled = set()
    for event in events:
        if not isinstance(event, dict):
            raise ValueError("trace events must be dicts")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise ValueError(f"trace event missing {key!r}")
        if event["ph"] == "M" and event["name"] == "process_name":
            labelled.add(event["pid"])
    for event in events:
        if event["ph"] != "X":
            continue
        for key in ("ts", "dur", "args"):
            if key not in event:
                raise ValueError(f"span event missing {key!r}")
        if event["dur"] < 0:
            raise ValueError("span event dur must be >= 0")
        if event["pid"] not in labelled:
            raise ValueError(
                f"span lane pid={event['pid']} has no process_name "
                "metadata event"
            )


_ANALYSIS_REQUIRED = {
    "schema_version": int,
    "kind": str,
    "source": str,
    "pipelines": list,
    "gan_pipelines": list,
    "engines": list,
    "totals": dict,
}


def validate_analysis_report(document: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``document`` is a valid analysis report.

    The analysis report is what :func:`repro.telemetry.analyze_counters`
    builds and ``repro report --json`` prints: derived metrics
    (utilization, bubbles, ADC-per-MAC) over a counter map.
    """
    _check_fields(document, _ANALYSIS_REQUIRED, "analysis")
    if document["kind"] != "analysis":
        raise ValueError(
            f"analysis kind {document['kind']!r} != 'analysis'"
        )
    for pipeline in document["pipelines"]:
        for field in ("prefix", "makespan_cycles", "stage_count",
                      "stages", "total_busy_cycles", "total_bubble_cycles",
                      "parallelism", "mean_utilization"):
            if field not in pipeline:
                raise ValueError(
                    f"analysis pipeline missing field {field!r}"
                )
        makespan = pipeline["makespan_cycles"]
        for stage in pipeline["stages"]:
            if not 0.0 <= stage["utilization"] <= 1.0:
                raise ValueError(
                    f"stage utilization out of [0, 1]: {stage!r}"
                )
            if stage["busy_cycles"] + stage["bubble_cycles"] != makespan:
                raise ValueError(
                    f"stage busy+bubble != makespan {makespan}: {stage!r}"
                )
    for gan in document["gan_pipelines"]:
        for field in ("prefix", "makespan_cycles", "resources",
                      "parallelism"):
            if field not in gan:
                raise ValueError(f"analysis GAN missing field {field!r}")
    for engine in document["engines"]:
        for field in ("prefix", "layers", "totals"):
            if field not in engine:
                raise ValueError(
                    f"analysis engine missing field {field!r}"
                )
        for layer in engine["layers"]:
            if "layer" not in layer or "mvm_calls" not in layer:
                raise ValueError(
                    f"analysis engine layer record incomplete: {layer!r}"
                )
