"""Stable JSON documents built from a telemetry collector.

Two document kinds leave this module:

* **profile reports** — what ``repro profile <subcommand> --json``
  emits: the wrapped command, its exit code and wall time, the full
  hierarchical counter map (deterministic: byte-identical across
  backends and across same-seed runs), the timing spans
  (non-deterministic, separate section), and the path of the written
  Chrome-trace file.
* **benchmark documents** — the machine-readable ``BENCH_*.json``
  files the benchmark harness records next to its text tables, seeding
  the perf trajectory (workload, backend, wall time, key counters).

Both carry ``schema_version`` and have a structural validator here so
CI can assert the schema without external dependencies.
"""

from __future__ import annotations

from numbers import Number as _NumberABC
from typing import Any, Dict, Optional, Sequence

from repro.telemetry.collector import SCHEMA_VERSION, Collector

_PROFILE_REQUIRED = {
    "schema_version": int,
    "kind": str,
    "command": list,
    "exit_code": int,
    "wall_time_s": _NumberABC,
    "counters": dict,
    "counter_tree": dict,
    "spans": list,
    "spans_dropped": int,
}

_BENCH_REQUIRED = {
    "schema_version": int,
    "kind": str,
    "bench": str,
    "workload": str,
    "backend": str,
    "wall_time_s": _NumberABC,
    "counters": dict,
}


def profile_report(
    collector: Collector,
    command: Sequence[str],
    exit_code: int,
    wall_time_s: float,
    chrome_trace: Optional[str] = None,
) -> Dict[str, Any]:
    """The ``repro profile`` JSON document for one wrapped command."""
    document: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "kind": "profile",
        "command": list(command),
        "exit_code": int(exit_code),
        "wall_time_s": float(wall_time_s),
        "counters": collector.counters(),
        "counter_tree": collector.counter_tree(),
        "spans": [record.to_dict() for record in collector.spans()],
        "spans_dropped": collector.spans_dropped,
    }
    if chrome_trace is not None:
        document["chrome_trace"] = str(chrome_trace)
    return document


def bench_document(
    bench: str,
    workload: str,
    backend: str,
    wall_time_s: float,
    counters: Dict[str, Any],
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One machine-readable benchmark record (``BENCH_*.json``)."""
    document: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "kind": "bench",
        "bench": str(bench),
        "workload": str(workload),
        "backend": str(backend),
        "wall_time_s": float(wall_time_s),
        "counters": dict(counters),
    }
    if extra:
        document.update(extra)
    return document


def _check_fields(document: Dict[str, Any], required: Dict[str, type],
                  kind: str) -> None:
    if not isinstance(document, dict):
        raise ValueError(f"{kind} document must be a dict, got "
                         f"{type(document).__name__}")
    for field, field_type in required.items():
        if field not in document:
            raise ValueError(f"{kind} document missing field {field!r}")
        if field_type is int and isinstance(document[field], bool):
            raise ValueError(f"{kind} field {field!r} must be an int")
        if not isinstance(document[field], field_type):
            raise ValueError(
                f"{kind} field {field!r} must be "
                f"{getattr(field_type, '__name__', field_type)}, got "
                f"{type(document[field]).__name__}"
            )
    if document["schema_version"] != SCHEMA_VERSION:
        raise ValueError(
            f"{kind} schema_version {document['schema_version']!r} != "
            f"{SCHEMA_VERSION}"
        )


def validate_profile_report(document: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``document`` is a valid profile report."""
    _check_fields(document, _PROFILE_REQUIRED, "profile")
    if document["kind"] != "profile":
        raise ValueError(f"profile kind {document['kind']!r} != 'profile'")
    for path, value in document["counters"].items():
        if not isinstance(path, str) or isinstance(value, bool) or \
                not isinstance(value, _NumberABC):
            raise ValueError(f"counter {path!r} -> {value!r} is not a "
                             "string path with a numeric value")
    for span in document["spans"]:
        for field in ("path", "start_s", "duration_s", "depth"):
            if field not in span:
                raise ValueError(f"span record missing field {field!r}")
        if span["duration_s"] < 0 or span["depth"] < 0:
            raise ValueError(f"span record out of range: {span!r}")


def validate_bench_document(document: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``document`` is a valid bench record."""
    _check_fields(document, _BENCH_REQUIRED, "bench")
    if document["kind"] != "bench":
        raise ValueError(f"bench kind {document['kind']!r} != 'bench'")
    if document["wall_time_s"] < 0:
        raise ValueError("bench wall_time_s must be >= 0")
