"""Synthetic stand-ins for the paper's datasets (offline substitution)."""

from repro.datasets.synthetic import (
    CELEBA_SHAPE,
    CIFAR10_SHAPE,
    LSUN_SHAPE,
    MNIST_SHAPE,
    DatasetShape,
    gan_mode_templates,
    make_classification_images,
    make_gan_images,
    make_train_test,
)

__all__ = [
    "DatasetShape",
    "MNIST_SHAPE",
    "CIFAR10_SHAPE",
    "CELEBA_SHAPE",
    "LSUN_SHAPE",
    "gan_mode_templates",
    "make_classification_images",
    "make_train_test",
    "make_gan_images",
]
