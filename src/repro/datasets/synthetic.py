"""Synthetic datasets standing in for MNIST / CIFAR-10 / CelebA / LSUN.

The paper's experiments use real image datasets (Sec. III-C); this
offline reproduction substitutes deterministic synthetic generators
with the same tensor shapes and a *learnable* class structure (see
DESIGN.md, "Substitutions").  What the experiments actually need is:

* classification sets where a small CNN can reach high accuracy, so
  crossbar-vs-float accuracy deltas are measurable
  (:func:`make_classification_images`, digit-like class templates plus
  noise and jitter);
* unlabeled image distributions with low-dimensional structure for GAN
  training, so the discriminator has something real to separate from
  generator output (:func:`make_gan_images`, smooth random-blob
  images).

All generators are pure functions of their seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.rng import RngLike, new_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DatasetShape:
    """Image geometry of one stand-in dataset."""

    name: str
    channels: int
    size: int
    classes: int

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return (self.channels, self.size, self.size)


#: Shapes matching the paper's datasets (GAN sets are sized to the
#: nearest power of two, the DCGAN convention).
MNIST_SHAPE = DatasetShape("mnist", 1, 28, 10)
CIFAR10_SHAPE = DatasetShape("cifar10", 3, 32, 10)
CELEBA_SHAPE = DatasetShape("celeba", 3, 64, 2)
LSUN_SHAPE = DatasetShape("lsun", 3, 64, 10)


def _class_templates(
    classes: int, channels: int, size: int, rng: np.random.Generator
) -> np.ndarray:
    """Smooth per-class template images.

    Each class is a mixture of a few Gaussian bumps at class-specific
    locations — visually blob-"digits", linearly separable enough to
    train on and hard enough that capacity and arithmetic fidelity
    matter.
    """
    grid = np.linspace(-1.0, 1.0, size)
    ys, xs = np.meshgrid(grid, grid, indexing="ij")
    templates = np.zeros((classes, channels, size, size))
    for cls in range(classes):
        bumps = 2 + cls % 3
        for _ in range(bumps):
            centre = rng.uniform(-0.7, 0.7, size=2)
            width = rng.uniform(0.15, 0.4)
            bump = np.exp(
                -((xs - centre[0]) ** 2 + (ys - centre[1]) ** 2)
                / (2 * width**2)
            )
            weights = rng.uniform(0.4, 1.0, size=channels)
            for channel in range(channels):
                templates[cls, channel] += weights[channel] * bump
    peak = templates.max(axis=(1, 2, 3), keepdims=True)
    return templates / np.maximum(peak, 1e-12)


def make_classification_images(
    count: int,
    shape: DatasetShape = MNIST_SHAPE,
    noise: float = 0.15,
    jitter: int = 2,
    rng: RngLike = None,
    template_rng: RngLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Labelled images: class template + spatial jitter + pixel noise.

    Returns ``(images, labels)`` with images in ``[0, 1]``-ish range,
    NCHW float64, and integer labels.

    ``template_rng`` optionally draws the class templates from a
    separate stream, so two differently-seeded calls can produce
    held-out sets of the *same* classification task — e.g. an
    evaluation set for a model trained on a :func:`make_train_test`
    split (pass that split's seed here and a fresh ``rng``).
    """
    check_positive("count", count)
    if noise < 0:
        raise ValueError(f"noise must be >= 0, got {noise}")
    if jitter < 0:
        raise ValueError(f"jitter must be >= 0, got {jitter}")
    rng = new_rng(rng)
    template_source = rng if template_rng is None else new_rng(template_rng)
    templates = _class_templates(
        shape.classes, shape.channels, shape.size, template_source
    )
    labels = rng.integers(0, shape.classes, size=count)
    images = np.empty((count, shape.channels, shape.size, shape.size))
    for index, label in enumerate(labels):
        image = templates[label]
        if jitter:
            shift_y, shift_x = rng.integers(-jitter, jitter + 1, size=2)
            image = np.roll(image, (int(shift_y), int(shift_x)), axis=(1, 2))
        images[index] = image + rng.normal(0.0, noise, size=image.shape)
    return images, labels.astype(np.int64)


def make_train_test(
    train_count: int,
    test_count: int,
    shape: DatasetShape = MNIST_SHAPE,
    noise: float = 0.15,
    rng: RngLike = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Train/test split drawn from the same template family.

    The templates are sampled once, then both splits draw from them, so
    test accuracy measures generalisation over jitter and noise rather
    than memorisation.
    """
    rng = new_rng(rng)
    total = train_count + test_count
    images, labels = make_classification_images(
        total, shape=shape, noise=noise, rng=rng
    )
    return (
        images[:train_count],
        labels[:train_count],
        images[train_count:],
        labels[train_count:],
    )


def gan_mode_templates(
    shape: DatasetShape = MNIST_SHAPE,
    modes: int = 4,
    rng: RngLike = None,
) -> np.ndarray:
    """The mode templates :func:`make_gan_images` samples around.

    Same seed + same ``modes`` as a :func:`make_gan_images` call
    returns the exact templates underlying that dataset (both draw them
    first from the shared stream), mapped to the generator's ``[-1, 1]``
    range — ground truth for mode-coverage metrics.
    """
    check_positive("modes", modes)
    rng = new_rng(rng)
    templates = _class_templates(modes, shape.channels, shape.size, rng)
    return np.clip(templates * 2.0 - 1.0, -1.0, 1.0)


def make_gan_images(
    count: int,
    shape: DatasetShape = MNIST_SHAPE,
    modes: int = 4,
    rng: RngLike = None,
) -> np.ndarray:
    """Unlabeled "real" images for GAN training, range ``[-1, 1]``.

    A ``modes``-mode distribution of smooth blob images: each sample
    picks a mode (base template) and perturbs its blob positions, so
    the distribution has low-dimensional structure a small GAN can
    approach — and mode collapse is observable.
    """
    check_positive("count", count)
    check_positive("modes", modes)
    rng = new_rng(rng)
    templates = _class_templates(modes, shape.channels, shape.size, rng)
    images = np.empty((count, shape.channels, shape.size, shape.size))
    for index in range(count):
        mode = int(rng.integers(0, modes))
        image = templates[mode]
        shift = rng.integers(-2, 3, size=2)
        image = np.roll(image, (int(shift[0]), int(shift[1])), axis=(1, 2))
        images[index] = image + rng.normal(0.0, 0.05, size=image.shape)
    # Map to the generator's tanh output range.
    return np.clip(images * 2.0 - 1.0, -1.0, 1.0)
