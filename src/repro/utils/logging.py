"""Structured, component-prefixed logging for the simulation stack.

Every component logs through ``logging.getLogger("repro.<component>")``
(:func:`get_logger`); nothing is emitted unless the application
configures the ``repro`` logger tree.  The CLI does that through the
global ``--log-level`` / ``-v`` flags (:func:`configure`), attaching
one stderr handler with a ``LEVEL component: message`` format, so
default runs stay byte-identical (WARNING and above only, which the
stack reserves for genuinely anomalous events such as span-buffer
overflow) while ``-v`` / ``-vv`` surface INFO / DEBUG progress from
:mod:`repro.api`, the crossbar engine backends, and the benchmark
runner.
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional, Union

ROOT_NAME = "repro"

_LEVELS = ("critical", "error", "warning", "info", "debug")


def get_logger(component: str) -> logging.Logger:
    """The logger for one component (``repro.<component>``)."""
    if component.startswith(ROOT_NAME):
        return logging.getLogger(component)
    return logging.getLogger(f"{ROOT_NAME}.{component}")


def resolve_level(
    log_level: Optional[str] = None, verbosity: int = 0
) -> int:
    """Numeric level from an explicit name or a ``-v`` count.

    An explicit ``--log-level`` wins; otherwise each ``-v`` steps from
    the WARNING default down to INFO then DEBUG.
    """
    if log_level:
        name = log_level.lower()
        if name not in _LEVELS:
            raise ValueError(
                f"log level must be one of {_LEVELS}, got {log_level!r}"
            )
        return getattr(logging, name.upper())
    return max(logging.WARNING - 10 * verbosity, logging.DEBUG)


def configure(
    level: Union[int, str, None] = None,
    verbosity: int = 0,
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """Attach one stream handler to the ``repro`` logger tree.

    Idempotent: reconfiguring replaces the handler installed by a
    previous call instead of stacking duplicates.  Returns the root
    ``repro`` logger.
    """
    if isinstance(level, str) or level is None:
        level = resolve_level(level, verbosity)
    root = logging.getLogger(ROOT_NAME)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_cli_handler", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    handler._repro_cli_handler = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(level)
    # Don't duplicate through the root logger's lastResort handler.
    root.propagate = False
    return root
