"""Small argument-validation helpers used across the library.

These raise ``ValueError`` with a consistent message format so tests can
assert on failure modes, and so configuration errors surface at
construction time instead of deep inside a simulation loop.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_non_negative(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_in_range(name: str, value: float, low: float, high: float) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")


def check_shape(name: str, array: np.ndarray, shape: Tuple[int, ...]) -> None:
    """Raise ``ValueError`` unless ``array.shape == shape``.

    A ``-1`` entry in ``shape`` matches any extent along that axis.
    """
    actual = array.shape
    if len(actual) != len(shape):
        raise ValueError(
            f"{name} must have {len(shape)} dimensions {shape}, "
            f"got shape {actual}"
        )
    for axis, (want, got) in enumerate(zip(shape, actual)):
        if want != -1 and want != got:
            raise ValueError(
                f"{name} axis {axis} must have extent {want}, "
                f"got shape {actual}"
            )


def check_choice(name: str, value: str, choices: Sequence[str]) -> None:
    """Raise ``ValueError`` unless ``value`` is one of ``choices``."""
    if value not in choices:
        raise ValueError(
            f"{name} must be one of {sorted(choices)}, got {value!r}"
        )
