"""Seeded random-number-generator helpers.

Every stochastic component in the simulator (device programming noise,
read noise, fault injection, weight initialisation, synthetic datasets)
takes an explicit :class:`numpy.random.Generator`.  This module is the
single place that creates them, so experiments are reproducible
end-to-end from a single integer seed.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]

DEFAULT_SEED = 0xD47E  # "DATE", the venue


def new_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` uses :data:`DEFAULT_SEED`; an ``int`` seeds a fresh
        generator; an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent generators from one seed.

    Uses :class:`numpy.random.SeedSequence` spawning so the children are
    statistically independent regardless of how many are requested.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive a fresh seed from the generator's stream.
        seed = int(seed.integers(0, 2**63 - 1))
    if seed is None:
        seed = DEFAULT_SEED
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def derive_seed(seed: RngLike, salt: str) -> int:
    """Derive a deterministic child seed from ``seed`` and a label.

    Useful when a component needs a reproducible sub-seed keyed by a
    human-readable name (e.g. one stream per layer).
    """
    if isinstance(seed, np.random.Generator):
        seed = int(seed.integers(0, 2**31 - 1))
    if seed is None:
        seed = DEFAULT_SEED
    salt_value = sum((i + 1) * byte for i, byte in enumerate(salt.encode("utf-8")))
    return (int(seed) * 0x9E3779B1 + salt_value) % (2**31 - 1)


def optional_rng(seed: RngLike) -> Optional[np.random.Generator]:
    """Like :func:`new_rng` but maps ``None`` to ``None`` (no noise)."""
    if seed is None:
        return None
    return new_rng(seed)
