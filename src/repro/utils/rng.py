"""Seeded random-number-generator helpers.

Every stochastic component in the simulator (device programming noise,
read noise, fault injection, weight initialisation, synthetic datasets)
takes an explicit :class:`numpy.random.Generator`.  This module is the
single place that creates them, so experiments are reproducible
end-to-end from a single integer seed.

Both derivation helpers (:func:`spawn_rngs`, :func:`derive_seed`) are
*pure* in the caller's generator: when handed a live ``Generator`` they
read its current state through a copy instead of drawing from it, so
deriving child streams never advances the parent.  Two runs that make
the same calls therefore get the same streams regardless of how many
children were derived in between — the property the reliability
campaigns lean on when they sweep one fault knob at a fixed seed.
"""

from __future__ import annotations

import copy
import zlib
from typing import List, Optional, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]

DEFAULT_SEED = 0xD47E  # "DATE", the venue


def new_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` uses :data:`DEFAULT_SEED`; an ``int`` seeds a fresh
        generator; an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def _seed_from_generator(generator: np.random.Generator, bound: int) -> int:
    """Deterministic integer seed from a generator's *current state*.

    Draws from a deep copy so the caller's stream is not consumed:
    deriving children is observation, not mutation.  The same generator
    state always yields the same seed.
    """
    return int(copy.deepcopy(generator).integers(0, bound))


def spawn_rngs(seed: RngLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent generators from one seed.

    Uses :class:`numpy.random.SeedSequence` spawning so the children are
    statistically independent regardless of how many are requested.
    Passing a live ``Generator`` does **not** advance it (the child
    seeds are a pure function of its current state).
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        seed = _seed_from_generator(seed, 2**63 - 1)
    if seed is None:
        seed = DEFAULT_SEED
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def derive_seed(seed: RngLike, salt: str) -> int:
    """Derive a deterministic child seed from ``seed`` and a label.

    Useful when a component needs a reproducible sub-seed keyed by a
    human-readable name (e.g. one stream per layer).  The salt is mixed
    in through ``zlib.crc32`` — a stable, position-sensitive hash — so
    distinct labels cannot alias to the same stream the way a
    positional byte sum can (``"bc"`` and ``"db"`` collide under a
    weighted sum).  Passing a live ``Generator`` does not advance it.
    """
    if isinstance(seed, np.random.Generator):
        seed = _seed_from_generator(seed, 2**31 - 1)
    if seed is None:
        seed = DEFAULT_SEED
    salt_value = zlib.crc32(salt.encode("utf-8"))
    return (int(seed) * 0x9E3779B1 + salt_value) % (2**31 - 1)


def optional_rng(seed: RngLike) -> Optional[np.random.Generator]:
    """Like :func:`new_rng` but maps ``None`` to ``None`` (no noise)."""
    if seed is None:
        return None
    return new_rng(seed)
