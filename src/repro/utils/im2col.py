"""Convolution lowering: im2col / col2im and related shape arithmetic.

The paper's central observation (Sec. II-B, Fig. 3-4) is that a
convolution layer becomes a matrix-vector product once each receptive
field is unrolled into a vector — exactly the ``im2col`` transform.  The
DNN substrate (:mod:`repro.nn`) and the crossbar mapping
(:mod:`repro.core.mapping`) both build on these functions, so the
"kernel cuboid -> bit-line column" picture in Fig. 4 is literal code.

All image tensors are NCHW: ``(batch, channels, height, width)``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.validation import check_non_negative, check_positive


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output extent of a convolution along one axis."""
    check_positive("size", size)
    check_positive("kernel", kernel)
    check_positive("stride", stride)
    check_non_negative("pad", pad)
    padded = size + 2 * pad
    if padded < kernel:
        raise ValueError(
            f"kernel ({kernel}) larger than padded input ({padded})"
        )
    return (padded - kernel) // stride + 1


def pad_nchw(images: np.ndarray, pad: int) -> np.ndarray:
    """Zero-pad the two spatial axes of an NCHW tensor."""
    check_non_negative("pad", pad)
    if pad == 0:
        return images
    return np.pad(
        images, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant"
    )


def im2col(
    images: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Unroll sliding windows of an NCHW tensor into matrix columns.

    Returns an array of shape ``(N * out_h * out_w, C * kernel_h *
    kernel_w)``: one row per output pixel, one column per weight of one
    kernel.  Multiplying by a ``(C*kh*kw, out_channels)`` weight matrix
    yields the convolution — this is the yellow input bar of Fig. 4.
    """
    if images.ndim != 4:
        raise ValueError(f"images must be NCHW, got shape {images.shape}")
    batch, channels, height, width = images.shape
    out_h = conv_output_size(height, kernel_h, stride, pad)
    out_w = conv_output_size(width, kernel_w, stride, pad)

    padded = pad_nchw(images, pad)
    cols = np.empty(
        (batch, channels, kernel_h, kernel_w, out_h, out_w),
        dtype=images.dtype,
    )
    for ky in range(kernel_h):
        y_end = ky + stride * out_h
        for kx in range(kernel_w):
            x_end = kx + stride * out_w
            cols[:, :, ky, kx, :, :] = padded[
                :, :, ky:y_end:stride, kx:x_end:stride
            ]
    # (N, out_h, out_w, C, kh, kw) -> rows of receptive fields.
    cols = cols.transpose(0, 4, 5, 1, 2, 3)
    return cols.reshape(batch * out_h * out_w, channels * kernel_h * kernel_w)


def col2im(
    cols: np.ndarray,
    image_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back into images.

    Overlapping windows accumulate, which makes this exactly the
    gradient of ``im2col`` — used by the convolution backward pass.
    """
    batch, channels, height, width = image_shape
    out_h = conv_output_size(height, kernel_h, stride, pad)
    out_w = conv_output_size(width, kernel_w, stride, pad)
    expected_rows = batch * out_h * out_w
    expected_cols = channels * kernel_h * kernel_w
    if cols.shape != (expected_rows, expected_cols):
        raise ValueError(
            f"cols has shape {cols.shape}, expected "
            f"({expected_rows}, {expected_cols}) for image {image_shape}"
        )

    cols = cols.reshape(batch, out_h, out_w, channels, kernel_h, kernel_w)
    cols = cols.transpose(0, 3, 4, 5, 1, 2)
    padded = np.zeros(
        (batch, channels, height + 2 * pad, width + 2 * pad),
        dtype=cols.dtype,
    )
    for ky in range(kernel_h):
        y_end = ky + stride * out_h
        for kx in range(kernel_w):
            x_end = kx + stride * out_w
            padded[:, :, ky:y_end:stride, kx:x_end:stride] += cols[
                :, :, ky, kx, :, :
            ]
    if pad == 0:
        return padded
    return padded[:, :, pad:-pad, pad:-pad]


def insert_zeros(images: np.ndarray, stride: int) -> np.ndarray:
    """Insert ``stride - 1`` zeros between input pixels (Fig. 7a).

    This is the fractional-stride trick: a transposed convolution with
    stride ``s`` equals an ordinary convolution over an input whose
    pixels have been spread out by ``s``.  For an ``(N, C, H, W)`` input
    the result is ``(N, C, (H-1)*s + 1, (W-1)*s + 1)``.
    """
    check_positive("stride", stride)
    if images.ndim != 4:
        raise ValueError(f"images must be NCHW, got shape {images.shape}")
    if stride == 1:
        return images
    batch, channels, height, width = images.shape
    out = np.zeros(
        (batch, channels, (height - 1) * stride + 1, (width - 1) * stride + 1),
        dtype=images.dtype,
    )
    out[:, :, ::stride, ::stride] = images
    return out
