"""Shared utilities: RNG management, quantization, im2col, validation,
component-prefixed logging."""

from repro.utils.im2col import (
    col2im,
    conv_output_size,
    im2col,
    insert_zeros,
    pad_nchw,
)
from repro.utils.logging import configure as configure_logging
from repro.utils.logging import get_logger
from repro.utils.quant import (
    QuantSpec,
    clip_to_range,
    dequantize_uniform,
    quantize_symmetric,
    quantize_uniform,
)
from repro.utils.rng import new_rng, spawn_rngs
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_shape,
)

__all__ = [
    "configure_logging",
    "get_logger",
    "new_rng",
    "spawn_rngs",
    "QuantSpec",
    "quantize_uniform",
    "dequantize_uniform",
    "quantize_symmetric",
    "clip_to_range",
    "im2col",
    "col2im",
    "conv_output_size",
    "insert_zeros",
    "pad_nchw",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_shape",
]
