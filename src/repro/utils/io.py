"""Crash- and concurrency-safe file primitives.

Several subsystems persist JSON documents that other processes read
and rewrite — the bench trajectory history, the sweep result cache.
A bare ``path.write_text`` is neither atomic (a reader can observe a
half-written file) nor exclusive (two writers doing load→modify→write
silently drop each other's updates).  This module is the single home
of the two primitives that make those paths safe:

* :func:`write_json_atomic` — write via a same-directory temp file and
  ``os.replace``, so readers only ever see a complete document (and an
  interrupted writer leaves the previous version intact);
* :func:`exclusive_lock` — an advisory exclusive lock on a sidecar
  ``<name>.lock`` file held across a read-modify-write section, so
  concurrent writers serialize instead of losing updates.  Uses
  ``fcntl.flock`` where available (distinct ``open()`` descriptions
  exclude each other even within one process, so threads are covered
  too) and degrades to atomic-write-only on platforms without it.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Union

try:  # pragma: no cover - platform gate, exercised implicitly
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]


def write_json_atomic(
    path: Union[str, Path], document: Any, indent: int = 2
) -> Path:
    """Serialize ``document`` to ``path`` atomically.

    The JSON text (sorted keys, trailing newline) lands in a temp file
    in the *same directory* and is moved into place with
    ``os.replace``, which is atomic on POSIX: concurrent readers see
    either the old complete document or the new one, never a torn
    write.  Returns ``path``.
    """
    path = Path(path)
    text = json.dumps(document, indent=indent, sort_keys=True) + "\n"
    handle = tempfile.NamedTemporaryFile(
        mode="w",
        dir=path.parent,
        prefix=f".{path.name}.",
        suffix=".tmp",
        delete=False,
    )
    try:
        with handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, path)
    except BaseException:
        # Never leave a stray temp file behind on failure.
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise
    return path


@contextmanager
def exclusive_lock(path: Union[str, Path]) -> Iterator[None]:
    """Hold an advisory exclusive lock around a read-modify-write.

    ``path`` is the file being protected; the lock itself lives on a
    sidecar ``<name>.lock`` file next to it (locking the data file
    directly would race with ``os.replace``, which swaps the inode the
    lock is attached to).  Blocks until the lock is granted.  On
    platforms without ``fcntl`` this is a no-op — callers still get
    atomic replacement from :func:`write_json_atomic`.
    """
    path = Path(path)
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield
        return
    lock_path = path.with_name(path.name + ".lock")
    with open(lock_path, "a") as lock_handle:
        fcntl.flock(lock_handle.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(lock_handle.fileno(), fcntl.LOCK_UN)


__all__ = ["exclusive_lock", "write_json_atomic"]
