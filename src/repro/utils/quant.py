"""Fixed-point quantization helpers.

The ReRAM crossbar stores weights as a small number of conductance
levels and digitises bit-line currents with a bounded-resolution ADC
(the paper's integrate-and-fire counter).  Both reduce to uniform
quantization over a clipped range, which this module implements once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class QuantSpec:
    """A uniform quantizer over ``[low, high]`` with ``levels`` steps.

    Parameters
    ----------
    low, high:
        Inclusive representable range.  Values outside are clipped.
    levels:
        Number of distinct representable values (>= 2).  A ``bits``-bit
        quantizer has ``2**bits`` levels.
    """

    low: float
    high: float
    levels: int

    def __post_init__(self) -> None:
        if self.levels < 2:
            raise ValueError(f"levels must be >= 2, got {self.levels}")
        if not self.high > self.low:
            raise ValueError(
                f"high ({self.high}) must be > low ({self.low})"
            )

    @classmethod
    def from_bits(cls, low: float, high: float, bits: int) -> "QuantSpec":
        """Build a spec with ``2**bits`` levels."""
        check_positive("bits", bits)
        return cls(low=low, high=high, levels=2**bits)

    @classmethod
    def symmetric(cls, amplitude: float, bits: int) -> "QuantSpec":
        """Build a symmetric spec over ``[-amplitude, amplitude]``."""
        check_positive("amplitude", amplitude)
        return cls.from_bits(-amplitude, amplitude, bits)

    @property
    def step(self) -> float:
        """Width of one quantization step."""
        return (self.high - self.low) / (self.levels - 1)

    def indices(self, values: np.ndarray) -> np.ndarray:
        """Map ``values`` to integer level indices in ``[0, levels-1]``."""
        values = np.asarray(values, dtype=np.float64)
        clipped = np.clip(values, self.low, self.high)
        return np.rint((clipped - self.low) / self.step).astype(np.int64)

    def from_indices(self, indices: np.ndarray) -> np.ndarray:
        """Map integer level indices back to real values."""
        indices = np.asarray(indices)
        if np.any((indices < 0) | (indices >= self.levels)):
            raise ValueError(
                f"indices must be in [0, {self.levels - 1}]"
            )
        return self.low + indices.astype(np.float64) * self.step

    def apply(self, values: np.ndarray) -> np.ndarray:
        """Quantize ``values`` (clip, snap to the nearest level)."""
        return self.from_indices(self.indices(values))


def clip_to_range(values: np.ndarray, low: float, high: float) -> np.ndarray:
    """Clip ``values`` to ``[low, high]``; validates the range ordering."""
    if not high > low:
        raise ValueError(f"high ({high}) must be > low ({low})")
    return np.clip(values, low, high)


def quantize_uniform(
    values: np.ndarray, low: float, high: float, levels: int
) -> np.ndarray:
    """One-shot uniform quantization (see :class:`QuantSpec`)."""
    return QuantSpec(low=low, high=high, levels=levels).apply(values)


def dequantize_uniform(
    indices: np.ndarray, low: float, high: float, levels: int
) -> np.ndarray:
    """One-shot uniform de-quantization of level indices."""
    return QuantSpec(low=low, high=high, levels=levels).from_indices(indices)


def quantize_symmetric(values: np.ndarray, bits: int) -> np.ndarray:
    """Quantize to ``bits`` bits over the array's own symmetric range.

    The amplitude is ``max(|values|)``; an all-zero array is returned
    unchanged.
    """
    values = np.asarray(values, dtype=np.float64)
    amplitude = float(np.max(np.abs(values))) if values.size else 0.0
    if amplitude == 0.0:
        return values.copy()
    return QuantSpec.symmetric(amplitude, bits).apply(values)
