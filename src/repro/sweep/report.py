"""Merged, schema-versioned ``sweep_report`` documents.

:func:`sweep_report` turns one :class:`~repro.sweep.executor.SweepRun`
into a JSON document that is a pure function of the cell list: cells
appear in input order and carry only their deterministic identity
(kind, hash, seed, spec) and result.  Execution facts — worker count,
cache hits, shard order — are deliberately absent (they live in
``SweepRun.stats``), which is what makes the serialized report
**byte-identical** for any worker count or shard order.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.sweep.cells import validate_cell_payload
from repro.sweep.executor import SweepRun
from repro.telemetry import SCHEMA_VERSION


def sweep_report(
    run: SweepRun, params: Optional[Mapping[str, Any]] = None
) -> Dict[str, Any]:
    """The merged deterministic document for one sweep run.

    ``params`` (optional) records the sweep-level request — workload,
    axis, seed, whatever produced the cell list — so a report is
    self-describing.  It must itself be deterministic data; nothing
    about this particular execution belongs in it.
    """
    cells = []
    for cell, payload in zip(run.cells, run.payloads):
        validate_cell_payload(payload, cell)
        entry = {
            "kind": payload["kind"],
            "config_hash": payload["config_hash"],
            "seed": payload["seed"],
            "spec": payload["spec"],
            "result": payload["result"],
        }
        # Priced event counters are deterministic data, so the energy
        # summary (when the cell emitted events) rides along without
        # weakening the byte-identity contract.
        if "energy" in payload:
            entry["energy"] = payload["energy"]
        cells.append(entry)
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "sweep_report",
        "sweep": dict(params) if params is not None else {},
        "cell_count": len(cells),
        "cells": cells,
    }


def validate_sweep_report(report: Mapping[str, Any]) -> Mapping[str, Any]:
    """Structural check of a ``sweep_report`` document; returns it."""
    for key in ("schema_version", "kind", "sweep", "cell_count", "cells"):
        if key not in report:
            raise ValueError(f"sweep report missing key {key!r}")
    if report["kind"] != "sweep_report":
        raise ValueError(
            f"not a sweep report: kind={report['kind']!r}"
        )
    cells = report["cells"]
    if not isinstance(cells, list) or report["cell_count"] != len(cells):
        raise ValueError("sweep report cell_count does not match cells")
    for index, cell in enumerate(cells):
        for key in ("kind", "config_hash", "seed", "spec", "result"):
            if key not in cell:
                raise ValueError(
                    f"sweep report cell #{index} missing key {key!r}"
                )
    return report


def sweep_summary(report: Mapping[str, Any]) -> str:
    """Short human-readable rendering of a sweep report."""
    validate_sweep_report(report)
    lines = [f"sweep: {report['cell_count']} cell(s)"]
    for sweep_key in sorted(report["sweep"]):
        lines.append(f"  {sweep_key} = {report['sweep'][sweep_key]}")
    for cell in report["cells"]:
        name = cell["spec"].get("name") or cell["config_hash"][:12]
        lines.append(
            f"  [{cell['kind']}] {name} seed={cell['seed']} "
            f"hash={cell['config_hash'][:12]}"
        )
    return "\n".join(lines)


__all__ = ["sweep_report", "sweep_summary", "validate_sweep_report"]
