"""Distributed deterministic sweep runner.

Shards independent sweep cells — (scenario × seed × backend) points —
across a process pool without giving up the repo's byte-identical
determinism contract: the merged ``sweep_report`` is a pure function
of the cell list, identical for any worker count or shard order.
Layering:

* :mod:`repro.sweep.cells` — the cell model: plain-data
  :class:`SweepCell`, the kind registry, and :func:`run_cell`;
* :mod:`repro.sweep.cache` — on-disk result cache keyed by
  ``(config_hash, seed)``; gives interrupted sweeps resume-for-free;
* :mod:`repro.sweep.executor` — :func:`run_sweep`, the process-pool
  scheduler (``workers=1`` is the same code run inline);
* :mod:`repro.sweep.report` — merged schema-versioned documents.
"""

from repro.sweep.cache import SweepCache
from repro.sweep.cells import (
    BUILTIN_KINDS,
    CellFunction,
    SweepCell,
    canonical_json,
    register_cell_kind,
    resolve_cell_kind,
    run_cell,
    validate_cell_payload,
)
from repro.sweep.executor import SweepRun, default_scope, run_sweep
from repro.sweep.report import (
    sweep_report,
    sweep_summary,
    validate_sweep_report,
)

__all__ = [
    "BUILTIN_KINDS",
    "CellFunction",
    "SweepCache",
    "SweepCell",
    "SweepRun",
    "canonical_json",
    "default_scope",
    "register_cell_kind",
    "resolve_cell_kind",
    "run_cell",
    "run_sweep",
    "sweep_report",
    "sweep_summary",
    "validate_cell_payload",
    "validate_sweep_report",
]
