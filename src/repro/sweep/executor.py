"""Process-pool sweep executor: shard cells, keep determinism.

:func:`run_sweep` executes a list of :class:`~repro.sweep.cells.SweepCell`
across ``workers`` processes and returns the payloads **in input cell
order**, making the merged output a pure function of the cell list:
byte-identical for any worker count and any shard submission order
(``shard_order`` exists so tests can prove exactly that).  The three
ingredients:

* **pure cells** — every cell executes through
  :func:`repro.sweep.cells.run_cell`, a module-level function on plain
  data, in whatever process it lands;
* **per-cell determinism** — cell specs carry their own seeds and the
  cell functions derive every stream through ``derive_seed`` /
  ``spawn_rngs``, so placement does not move randomness;
* **canonical merge** — results are reordered to the input cell order
  before anything (report, telemetry) observes them.

With a :class:`~repro.sweep.cache.SweepCache`, cells found on disk are
replayed without recomputation — an interrupted sweep resumes from
its completed cells — and freshly computed payloads are written back
atomically.  Worker-count, cache state, and submission order are
*execution* facts: they live in :attr:`SweepRun.stats`, never in the
deterministic payloads.

Telemetry: each cell's deterministic counters come back in its
payload and are merged under ``<scope>/...`` on the caller's
collector (default scope ``cell[<label>]``; campaigns map it to their
legacy ``scenario[...]`` scopes, the CLI nests everything under
``sweep/``).  Merging happens in input order after all cells finish,
so merged counters are identical for any worker count.  Per-cell
wall-clock spans are only recorded on the single-process path (a
pooled cell's host time is not observable from the parent).
"""

from __future__ import annotations

import logging
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.sweep.cache import SweepCache
from repro.sweep.cells import SweepCell, run_cell
from repro.telemetry import NULL_COLLECTOR, TelemetryLike, TraceContext
from repro.utils.validation import check_positive

_log = logging.getLogger("repro.sweep")

ScopeFor = Callable[[int, SweepCell], str]


def default_scope(index: int, cell: SweepCell) -> str:
    """Default telemetry scope for one cell: ``cell[<label>]``."""
    return f"cell[{cell.label}]"


@dataclass
class SweepRun:
    """Outcome of one :func:`run_sweep` call.

    ``payloads`` aligns with ``cells`` (input order) and is the
    deterministic part; ``stats`` records how this particular
    execution went (worker count, cache hits, recomputed cells) and is
    deliberately kept out of every merged report.
    """

    cells: List[SweepCell]
    payloads: List[Dict[str, Any]]
    stats: Dict[str, int] = field(default_factory=dict)

    def results(self) -> List[Dict[str, Any]]:
        """Just the cell results, in input cell order."""
        return [payload["result"] for payload in self.payloads]


def run_sweep(
    cells: Sequence[SweepCell],
    workers: int = 1,
    cache: Optional[SweepCache] = None,
    collector: Optional[TelemetryLike] = None,
    scope_for: ScopeFor = default_scope,
    shard_order: Optional[Sequence[int]] = None,
    mp_context: Optional[str] = None,
    trace: Optional[TraceContext] = None,
) -> SweepRun:
    """Execute ``cells`` and return their payloads in input order.

    Parameters
    ----------
    workers:
        Process count.  ``1`` runs every cell inline — same cell
        functions, same payload format, so the single-process path is
        a configuration of the distributed one, not separate code.
    cache:
        Optional on-disk cell cache: hits replay stored payloads with
        zero recomputation, misses are computed and written back.
    collector:
        Optional telemetry sink; per-cell counters merge under
        ``scope_for(index, cell)`` and executor totals are recorded as
        ``cells.total`` / ``cells.cached`` / ``cells.recomputed``.
    scope_for:
        Telemetry scope naming hook (see :func:`default_scope`).
    shard_order:
        Submission-order permutation of ``range(len(cells))`` — an
        order-independence test hook; the merged result must not
        depend on it.
    mp_context:
        :mod:`multiprocessing` start-method name (``"fork"``,
        ``"spawn"``); ``None`` uses the platform default.
    trace:
        Optional :class:`~repro.telemetry.TraceContext` to stitch the
        sweep into.  A carrier forks per cell **upfront in input
        order** (so span ids never depend on scheduling); each
        computed cell's worker-process spans come back in its payload
        and are absorbed into ``trace.log`` in input order — the
        stitched trace is byte-identical for any worker count.
        Cached payloads replay spans from the run that computed them;
        those carry that run's trace id and are filtered out here.
    """
    check_positive("workers", workers)
    cells = list(cells)
    order = list(shard_order) if shard_order is not None else list(
        range(len(cells))
    )
    if sorted(order) != list(range(len(cells))):
        raise ValueError(
            "shard_order must be a permutation of range(len(cells))"
        )
    tel = collector if collector is not None else NULL_COLLECTOR

    payloads: List[Optional[Dict[str, Any]]] = [None] * len(cells)
    cached = 0
    if cache is not None:
        for index in order:
            payload = cache.load(cells[index])
            if payload is not None:
                payloads[index] = payload
                cached += 1
    pending = [index for index in order if payloads[index] is None]
    _log.info(
        "sweep: %d cell(s), %d cached, %d to compute on %d worker(s)",
        len(cells), cached, len(pending), workers,
    )

    # Carriers fork for *every* cell upfront, in input order: span-id
    # allocation ticks the parent context, so doing it before any
    # scheduling decision keeps ids (and the stitched trace bytes)
    # independent of worker count and cache state.
    carriers: List[Optional[Dict[str, Any]]] = [None] * len(cells)
    if trace is not None:
        for index, cell in enumerate(cells):
            scope_name = scope_for(index, cell)
            carriers[index] = trace.fork(scope_name, proc=scope_name)

    if workers == 1:
        for index in pending:
            with tel.span(scope_for(index, cells[index])):
                payloads[index] = run_cell(
                    cells[index], carriers[index]
                )
    elif pending:
        import multiprocessing

        context = (
            multiprocessing.get_context(mp_context)
            if mp_context is not None
            else None
        )
        pool_size = min(workers, len(pending))
        with ProcessPoolExecutor(
            max_workers=pool_size, mp_context=context
        ) as pool:
            futures = {
                index: pool.submit(
                    run_cell, cells[index], carriers[index]
                )
                for index in pending
            }
            for index, future in futures.items():
                payloads[index] = future.result()

    if cache is not None:
        for index in pending:
            cache.store(cells[index], payloads[index])  # type: ignore[arg-type]

    # Canonical merge: telemetry lands in input order, independent of
    # completion or submission order.
    for index, payload in enumerate(payloads):
        assert payload is not None
        scope = tel.scope(scope_for(index, cells[index])) if tel else None
        if scope is not None:
            scope.merge_counters(payload["counters"])
        if trace is not None:
            # Cached payloads may carry spans from the run that
            # computed them — a different trace; keep only this one's.
            trace.log.absorb(
                span for span in payload.get("trace", ())
                if span.get("trace_id") == trace.trace_id
            )
    tel.count("cells.total", len(cells))
    tel.count("cells.cached", cached)
    tel.count("cells.recomputed", len(pending))

    return SweepRun(
        cells=cells,
        payloads=[payload for payload in payloads if payload is not None],
        stats={
            "workers": int(workers),
            "cells": len(cells),
            "cache_hits": cached,
            "recomputed": len(pending),
        },
    )


__all__ = ["SweepRun", "default_scope", "run_sweep"]
