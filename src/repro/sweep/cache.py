"""On-disk result cache for sweep cells: ``(config_hash, seed)`` keyed.

Each completed cell's payload is stored as one JSON file under
``<root>/<kind>/<config_hash>-<seed>.json``.  The key is *honest
content hashing* in the same spirit as
:meth:`repro.api.Simulator.cache_key`: the hash covers the cell's
entire canonical spec, and a loaded file is re-verified against the
requesting cell (kind, spec, hash) before it counts as a hit — a
stale, corrupt, or colliding file degrades to a miss, never to a
wrong result.

Writes are atomic (:func:`repro.utils.io.write_json_atomic`), so an
interrupted sweep leaves only complete cell files behind; re-running
the same sweep replays those cells from disk without recomputation —
the resume story of :mod:`repro.sweep.executor`.
"""

from __future__ import annotations

import json
import logging
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.sweep.cells import SweepCell, validate_cell_payload
from repro.utils.io import write_json_atomic

_log = logging.getLogger("repro.sweep")


class SweepCache:
    """Directory-backed cell-result store (see module docstring)."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, cell: SweepCell) -> Path:
        """Where ``cell``'s payload lives (whether or not it exists)."""
        return (
            self.root
            / cell.kind
            / f"{cell.config_hash()}-{cell.seed}.json"
        )

    def load(self, cell: SweepCell) -> Optional[Dict[str, Any]]:
        """The verified cached payload for ``cell``, or ``None``.

        Unreadable, unparsable, or mismatching files are logged and
        treated as misses (the executor then recomputes and rewrites).
        """
        path = self.path_for(cell)
        if not path.is_file():
            return None
        try:
            payload = json.loads(path.read_text())
            validate_cell_payload(payload, cell)
        except (OSError, json.JSONDecodeError, ValueError) as error:
            _log.warning(
                "ignoring unusable cache file %s: %s", path, error
            )
            return None
        return payload

    def store(self, cell: SweepCell, payload: Dict[str, Any]) -> Path:
        """Atomically persist ``cell``'s payload; returns its path."""
        validate_cell_payload(payload, cell)
        path = self.path_for(cell)
        path.parent.mkdir(parents=True, exist_ok=True)
        return write_json_atomic(path, payload)

    def __len__(self) -> int:
        """Number of stored cell files (all kinds)."""
        return sum(1 for _ in self.root.glob("*/*.json"))


__all__ = ["SweepCache"]
