"""The cell model of a distributed sweep.

A *cell* is the unit of sharding: one ``(scenario × seed × backend)``
point of a sweep, described entirely by plain JSON data so it can be
pickled to a worker process, hashed for the on-disk result cache, and
replayed later.  Cells are executed by *cell functions* — module-level
callables registered per cell ``kind`` — that must be **pure**: given
the same spec they return the same JSON-able result in any process,
with every random stream derived from the spec's seed through
:mod:`repro.utils.rng`.  That purity is what lets the executor
(:mod:`repro.sweep.executor`) run cells across a process pool and
still merge a report byte-identical to the single-process run.

Cell functions take ``(spec, collector)`` and return a JSON-able
result dict; the collector is always a live private
:class:`~repro.telemetry.Collector`, and its counters travel back to
the submitting process inside the cell payload (counter telemetry is
deterministic, so merged sweep telemetry is identical for any worker
count).  Built-in kinds resolve lazily by dotted path so this module
imports none of the heavyweight subsystems.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional

from repro.telemetry import (
    SCHEMA_VERSION,
    Collector,
    TelemetryLike,
    TraceContext,
    TraceLog,
)

CellFunction = Callable[[Dict[str, Any], TelemetryLike], Dict[str, Any]]

#: Built-in cell kinds, resolved lazily as ``module:function`` so
#: importing the sweep layer does not drag in every subsystem.  The
#: target must be a module-level function (pickle-friendly by name).
BUILTIN_KINDS: Dict[str, str] = {
    "campaign_scenario": "repro.reliability.campaign:run_campaign_cell",
    "sensitivity_point": "repro.arch.sensitivity:run_sensitivity_cell",
    "bench": "repro.bench.runner:run_bench_cell",
}

_RUNNERS: Dict[str, CellFunction] = {}


def register_cell_kind(kind: str, function: CellFunction) -> None:
    """Register (or override) the cell function for ``kind``.

    Test and extension hook; the built-in kinds need no registration.
    Note that worker *processes* resolve kinds independently, so a
    kind registered only in the parent works with ``workers=1`` —
    distributed kinds must be importable via :data:`BUILTIN_KINDS`
    style dotted paths or registered at import time.
    """
    _RUNNERS[kind] = function


def resolve_cell_kind(kind: str) -> CellFunction:
    """The cell function executing cells of ``kind``."""
    runner = _RUNNERS.get(kind)
    if runner is not None:
        return runner
    target = BUILTIN_KINDS.get(kind)
    if target is None:
        raise ValueError(
            f"unknown sweep cell kind {kind!r}; known kinds: "
            f"{sorted(set(BUILTIN_KINDS) | set(_RUNNERS))}"
        )
    module_name, _, function_name = target.partition(":")
    module = importlib.import_module(module_name)
    runner = getattr(module, function_name)
    _RUNNERS[kind] = runner
    return runner


def canonical_json(value: Any) -> str:
    """Minimal sorted-key JSON — the canonical form everything hashes."""
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


@dataclass(frozen=True)
class SweepCell:
    """One shardable point of a sweep: a kind plus its full spec.

    ``spec`` must be plain JSON data (the determinism contract hashes
    it) and carries everything the cell function needs — including the
    cell's ``seed``, which also keys the result cache alongside
    :meth:`config_hash`.
    """

    kind: str
    spec: Dict[str, Any] = field(default_factory=dict)

    @property
    def seed(self) -> int:
        """The cell's master seed (0 when the spec does not carry one)."""
        return int(self.spec.get("seed", 0))

    def config_hash(self) -> str:
        """Honest content hash of the cell's configuration.

        Hashes the canonical JSON of ``(kind, spec-minus-seed)`` —
        the cache key is ``(config_hash, seed)``, mirroring the
        ``(weights_hash, device_config_hash)`` discipline of
        :meth:`repro.api.Simulator.cache_key`: identity comes from
        content, never from a request's say-so.
        """
        config = {k: v for k, v in self.spec.items() if k != "seed"}
        digest = hashlib.sha256()
        digest.update(canonical_json({"kind": self.kind, "spec": config}).encode())
        return digest.hexdigest()

    @property
    def label(self) -> str:
        """Short human/telemetry label (``spec["name"]`` or the hash)."""
        name = self.spec.get("name")
        if name:
            return str(name)
        return self.config_hash()[:12]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able identity view (spec + the derived cache key)."""
        return {
            "kind": self.kind,
            "spec": dict(self.spec),
            "config_hash": self.config_hash(),
            "seed": self.seed,
        }


def _cell_energy(collector: Collector) -> Optional[Dict[str, Any]]:
    """Price a finished cell's event counters into energy, in place.

    Attributes the collector's counters through the default technology
    cost table, adds the resulting ``energy/*`` counters back into the
    collector (so they merge across workers like any other
    deterministic counter), and returns a small totals summary for the
    payload — or ``None`` when the cell emitted no priceable events.
    Lazy imports keep the sweep layer's import graph light.
    """
    from repro.arch.components import event_costs
    from repro.arch.params import DEFAULT_TECH
    from repro.telemetry import attribute_energy, energy_counter_map

    report = attribute_energy(
        collector.counters(),
        event_costs(DEFAULT_TECH),
        source_name="sweep_cell",
    )
    if not report["groups"]:
        return None
    for path, value in energy_counter_map(report).items():
        collector.count(path, value)
    totals = report["totals"]
    return {
        "components_joules": dict(totals["components"]),
        "total_joules": totals["total_joules"],
        "simulated_seconds": totals["simulated_seconds"],
        "average_watts": totals["average_watts"],
    }


def run_cell(
    cell: SweepCell,
    trace_carrier: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Execute one cell in the *current* process; return its payload.

    This module-level function is what worker processes receive: it
    resolves the cell's kind, runs the cell function under a fresh
    private collector (spans off — only deterministic counters cross
    the process boundary), and wraps the result in the payload format
    the cache stores and the executor merges.

    ``trace_carrier`` (a :meth:`repro.telemetry.TraceContext.fork`
    dict) adopts the submitting process's trace into this process: the
    cell's ``evaluate`` span lands on a cell-local logical clock under
    the carrier's ``proc`` lane, and the finished span dicts travel
    back in the payload's ``trace`` key for the executor to absorb.
    Trace spans are logical-clock data, so the payload — including
    ``trace`` — stays byte-identical across worker counts.
    """
    function = resolve_cell_kind(cell.kind)
    collector = Collector(record_spans=False)
    trace_spans = None
    if trace_carrier is not None:
        cell_log = TraceLog(proc=str(trace_carrier["proc"]))
        context = TraceContext.adopt(trace_carrier, cell_log)
        with context.span("evaluate"):
            result = function(dict(cell.spec), collector)
        context.finish({"kind": cell.kind})
        trace_spans = cell_log.to_dicts()
    else:
        result = function(dict(cell.spec), collector)
    # Price the cell's event counters into ``energy/*`` counters (and
    # a payload summary) *before* the counter capture, so the energy
    # attribution merges across workers exactly like any other
    # deterministic counter.  A cell that emitted no priceable events
    # gains neither counters nor summary.
    energy_summary = _cell_energy(collector)
    payload = {
        "schema_version": SCHEMA_VERSION,
        "kind": cell.kind,
        "config_hash": cell.config_hash(),
        "seed": cell.seed,
        "spec": dict(cell.spec),
        "result": result,
        "counters": collector.counters(),
    }
    if energy_summary is not None:
        payload["energy"] = energy_summary
    if trace_spans is not None:
        payload["trace"] = trace_spans
    # Canonical round-trip: a freshly computed payload gets the exact
    # structure a cache replay would have (sorted keys, tuples as
    # lists, non-finite floats rejected), so merged report *bytes*
    # never depend on whether a cell was computed, pickled from a
    # worker, or replayed from disk.
    return json.loads(canonical_json(payload))


def validate_cell_payload(
    payload: Mapping[str, Any], cell: Optional[SweepCell] = None
) -> Mapping[str, Any]:
    """Structural check of one cell payload; returns it on success.

    With ``cell`` given, additionally verifies the payload describes
    *that* cell (kind, spec, and hash all match) — the cache uses this
    so a stale or colliding file can never masquerade as a result.
    """
    for key in ("schema_version", "kind", "config_hash", "seed", "spec",
                "result", "counters"):
        if key not in payload:
            raise ValueError(f"cell payload missing key {key!r}")
    if not isinstance(payload["result"], dict):
        raise ValueError("cell payload result must be a dict")
    if not isinstance(payload["counters"], dict):
        raise ValueError("cell payload counters must be a dict")
    if cell is not None:
        if (
            payload["kind"] != cell.kind
            or payload["spec"] != cell.spec
            or payload["config_hash"] != cell.config_hash()
            or int(payload["seed"]) != cell.seed
        ):
            raise ValueError(
                f"cell payload does not describe cell {cell.label!r} "
                "(kind/spec/hash mismatch)"
            )
    return payload


__all__ = [
    "BUILTIN_KINDS",
    "CellFunction",
    "SweepCell",
    "canonical_json",
    "register_cell_kind",
    "resolve_cell_kind",
    "run_cell",
    "validate_cell_payload",
]
