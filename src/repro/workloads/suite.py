"""The evaluation workload suite (Sec. III-C).

PipeLayer was evaluated on MNIST and ImageNet-class CNNs; ReGAN on
DCGANs sized for MNIST, CIFAR-10, CelebA and LSUN.  This module
provides shape-faithful network specifications for all of them, plus a
:class:`NetworkSpec` container that derives the aggregate quantities
the pipeline and energy models need (layer count ``L``, total MACs,
total weights, activation traffic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.workloads.specs import LayerSpec, conv, fc, fcnn, pool


@dataclass(frozen=True)
class NetworkSpec:
    """A named stack of layer specs."""

    name: str
    layers: Tuple[LayerSpec, ...]
    input_shape: Tuple[int, int, int]

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("network needs at least one layer")

    @property
    def matrix_layers(self) -> Tuple[LayerSpec, ...]:
        """Layers that own crossbar-mapped weights."""
        return tuple(l for l in self.layers if l.is_matrix_layer)

    @property
    def depth(self) -> int:
        """Pipeline depth L: weighted layers (paper's 'L layers').

        Pooling/activation ride in the same pipeline stage as the
        preceding weighted layer (they are peripheral circuits of the
        morphable subarray), so L counts matrix layers.
        """
        return len(self.matrix_layers)

    @property
    def total_macs(self) -> int:
        """Forward MACs per image."""
        return sum(l.macs for l in self.layers)

    @property
    def total_flops(self) -> int:
        """Forward FLOPs per image."""
        return sum(l.flops for l in self.layers)

    @property
    def total_weights(self) -> int:
        """Trainable weights across all layers."""
        return sum(l.weight_count for l in self.layers)

    @property
    def total_activations(self) -> int:
        """Sum of all layer output sizes (inter-layer traffic/image)."""
        return sum(l.output_size for l in self.layers)

    def summary(self) -> str:
        """Per-layer table of the derived quantities."""
        lines = [f"{self.name}: input {self.input_shape}"]
        for layer in self.layers:
            lines.append(
                f"  {layer.name or layer.kind:<14s} {layer.kind:<5s} "
                f"matrix {layer.matrix_rows}x{layer.matrix_cols} "
                f"vectors/img {layer.output_vectors} "
                f"MACs {layer.macs:,}"
            )
        lines.append(
            f"  L={self.depth}  MACs={self.total_macs:,}  "
            f"weights={self.total_weights:,}"
        )
        return "\n".join(lines)


# --------------------------------------------------------------------------
# PipeLayer workloads: MNIST + ImageNet-class CNNs.
# --------------------------------------------------------------------------

def mnist_cnn_spec() -> NetworkSpec:
    """LeNet-style MNIST CNN matching :func:`repro.nn.models.build_mnist_cnn`."""
    return NetworkSpec(
        name="mnist_cnn",
        input_shape=(1, 28, 28),
        layers=(
            conv(1, 28, 8, 5, pad=2, name="conv1"),
            pool(8, 28, 2, name="pool1"),
            conv(8, 14, 16, 5, pad=2, name="conv2"),
            pool(16, 14, 2, name="pool2"),
            fc(16 * 7 * 7, 64, name="fc1"),
            fc(64, 10, name="fc2"),
        ),
    )


def alexnet_spec() -> NetworkSpec:
    """AlexNet (227x227x3), the classic ImageNet workload [1]."""
    return NetworkSpec(
        name="alexnet",
        input_shape=(3, 227, 227),
        layers=(
            conv(3, 227, 96, 11, stride=4, name="conv1"),
            pool(96, 55, 3, name="pool1"),
            conv(96, 27, 256, 5, pad=2, name="conv2"),
            pool(256, 27, 3, name="pool2"),
            conv(256, 13, 384, 3, pad=1, name="conv3"),
            conv(384, 13, 384, 3, pad=1, name="conv4"),
            conv(384, 13, 256, 3, pad=1, name="conv5"),
            pool(256, 13, 3, name="pool5"),
            fc(256 * 6 * 6, 4096, name="fc6"),
            fc(4096, 4096, name="fc7"),
            fc(4096, 1000, name="fc8"),
        ),
    )


def vggnet_spec() -> NetworkSpec:
    """VGG-16 (224x224x3), the deep ImageNet workload PipeLayer used."""
    cfg = [
        (3, 224, 64), (64, 224, 64),
        (64, 112, 128), (128, 112, 128),
        (128, 56, 256), (256, 56, 256), (256, 56, 256),
        (256, 28, 512), (512, 28, 512), (512, 28, 512),
        (512, 14, 512), (512, 14, 512), (512, 14, 512),
    ]
    layers: List[LayerSpec] = []
    pool_after = {1, 3, 6, 9, 12}
    for index, (cin, size, cout) in enumerate(cfg):
        layers.append(conv(cin, size, cout, 3, pad=1, name=f"conv{index + 1}"))
        if index in pool_after:
            layers.append(pool(cout, size, 2, name=f"pool{index + 1}"))
    layers.extend(
        [
            fc(512 * 7 * 7, 4096, name="fc14"),
            fc(4096, 4096, name="fc15"),
            fc(4096, 1000, name="fc16"),
        ]
    )
    return NetworkSpec(
        name="vggnet", input_shape=(3, 224, 224), layers=tuple(layers)
    )


def pipelayer_suite() -> List[NetworkSpec]:
    """The PipeLayer evaluation set (Table I row 1)."""
    return [mnist_cnn_spec(), alexnet_spec(), vggnet_spec()]


# --------------------------------------------------------------------------
# ReGAN workloads: DCGANs sized for the four datasets (Table I row 2).
# --------------------------------------------------------------------------

def dcgan_spec(
    image_size: int,
    image_channels: int,
    base_channels: int = 128,
    noise_dim: int = 100,
    name: str = "dcgan",
) -> Tuple[NetworkSpec, NetworkSpec]:
    """Build (generator, discriminator) specs in the DCGAN shape [10].

    The generator projects noise to a ``4x4`` seed with many feature
    maps, then doubles the spatial extent with stride-2 FCNN layers
    until ``image_size``; the discriminator mirrors it with stride-2
    convolutions down to ``4x4`` and one logit.  ``image_size`` must be
    a power-of-two multiple of 4 (16, 32, 64, ...).
    """
    if image_size < 16 or image_size & (image_size - 1):
        raise ValueError(
            f"image_size must be a power of two >= 16, got {image_size}"
        )
    doublings = 0
    size = 4
    while size < image_size:
        size *= 2
        doublings += 1

    # Generator: channels halve at each up-sampling stage.
    g_layers: List[LayerSpec] = []
    seed_channels = base_channels * 2 ** (doublings - 1)
    g_layers.append(fc(noise_dim, seed_channels * 16, name="g_project"))
    channels = seed_channels
    size = 4
    for stage in range(doublings):
        out_channels = (
            image_channels if stage == doublings - 1 else channels // 2
        )
        g_layers.append(
            fcnn(channels, size, out_channels, 4, stride=2, pad=1,
                 name=f"g_up{stage + 1}")
        )
        channels = out_channels
        size *= 2
    generator = NetworkSpec(
        name=f"{name}_g",
        input_shape=(noise_dim, 1, 1),
        layers=tuple(g_layers),
    )

    # Discriminator: channels double at each down-sampling stage.
    d_layers: List[LayerSpec] = []
    channels = image_channels
    out_channels = base_channels
    size = image_size
    for stage in range(doublings):
        d_layers.append(
            conv(channels, size, out_channels, 4, stride=2, pad=1,
                 name=f"d_down{stage + 1}")
        )
        channels = out_channels
        out_channels *= 2
        size //= 2
    d_layers.append(fc(channels * size * size, 1, name="d_logit"))
    discriminator = NetworkSpec(
        name=f"{name}_d",
        input_shape=(image_channels, image_size, image_size),
        layers=tuple(d_layers),
    )
    return generator, discriminator


def regan_suite() -> Dict[str, Tuple[NetworkSpec, NetworkSpec]]:
    """DCGAN (G, D) pairs for the four ReGAN datasets."""
    return {
        "mnist": dcgan_spec(32, 1, base_channels=64, name="dcgan_mnist"),
        "cifar10": dcgan_spec(32, 3, base_channels=128, name="dcgan_cifar10"),
        "celeba": dcgan_spec(64, 3, base_channels=128, name="dcgan_celeba"),
        "lsun": dcgan_spec(64, 3, base_channels=128, name="dcgan_lsun"),
    }
