"""Shape-level layer specifications for the evaluation workloads.

The cycle/energy models (GPU roofline, PipeLayer, ReGAN) consume layer
*shapes*, not live tensors.  :class:`LayerSpec` captures one layer's
dimensions and derives the quantities every model needs: MAC count,
weight count, input/output activation volumes, and the lowered
matrix-vector geometry (word lines x bit lines, output vectors per
image) that determines crossbar resources — the quantities Fig. 4
manipulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.utils.im2col import conv_output_size
from repro.utils.validation import check_choice, check_non_negative, check_positive

#: Layer kinds that own a weight matrix mapped to crossbars.
MATRIX_KINDS = ("conv", "fc", "fcnn")
#: All recognised kinds (non-matrix kinds ride along in peripherals).
ALL_KINDS = MATRIX_KINDS + ("pool",)


@dataclass(frozen=True)
class LayerSpec:
    """One layer's dimensions.

    Parameters
    ----------
    kind:
        ``"conv"`` (Eq. 1), ``"fc"`` (Eq. 2), ``"fcnn"``
        (fractional-strided conv, Fig. 7) or ``"pool"``.
    in_channels, in_height, in_width:
        Input data-cube size ``(C_l, X_l, Y_l)``.
    out_channels:
        ``C_{l+1}`` (for pool, equals ``in_channels``).
    kernel:
        Kernel extent ``K_x = K_y`` (pool window for pools; 1 for fc).
    stride, pad:
        Spatial stride / zero padding (fcnn: transposed-conv semantics).
    name:
        Label used in reports.
    """

    kind: str
    in_channels: int
    in_height: int
    in_width: int
    out_channels: int
    kernel: int = 1
    stride: int = 1
    pad: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        check_choice("kind", self.kind, ALL_KINDS)
        check_positive("in_channels", self.in_channels)
        check_positive("in_height", self.in_height)
        check_positive("in_width", self.in_width)
        check_positive("out_channels", self.out_channels)
        check_positive("kernel", self.kernel)
        check_positive("stride", self.stride)
        check_non_negative("pad", self.pad)

    # -- geometry ---------------------------------------------------------
    @property
    def out_height(self) -> int:
        if self.kind == "fc":
            return 1
        if self.kind == "fcnn":
            return (self.in_height - 1) * self.stride - 2 * self.pad + self.kernel
        return conv_output_size(self.in_height, self.kernel, self.stride, self.pad)

    @property
    def out_width(self) -> int:
        if self.kind == "fc":
            return 1
        if self.kind == "fcnn":
            return (self.in_width - 1) * self.stride - 2 * self.pad + self.kernel
        return conv_output_size(self.in_width, self.kernel, self.stride, self.pad)

    @property
    def output_shape(self) -> Tuple[int, int, int]:
        return (self.out_channels, self.out_height, self.out_width)

    @property
    def input_size(self) -> int:
        """Input activation count per image."""
        return self.in_channels * self.in_height * self.in_width

    @property
    def output_size(self) -> int:
        """Output activation count per image."""
        return self.out_channels * self.out_height * self.out_width

    # -- crossbar geometry ----------------------------------------------------
    @property
    def matrix_rows(self) -> int:
        """Word lines of the lowered weight matrix (Fig. 4's 1152).

        For an FCNN layer the crossbar stores the *equivalent
        convolution* kernel (Fig. 7a), so the row count is that of the
        zero-inserted convolution: ``Cin * k * k``.
        """
        if self.kind == "pool":
            return 0
        if self.kind == "fc":
            return self.input_size
        return self.in_channels * self.kernel * self.kernel

    @property
    def matrix_cols(self) -> int:
        """Bit lines of the lowered weight matrix (Fig. 4's 256)."""
        if self.kind == "pool":
            return 0
        return self.out_channels

    @property
    def output_vectors(self) -> int:
        """Input vectors entering the array per image (Fig. 4's 12544).

        One per output pixel for conv/fcnn; exactly one for fc.
        """
        if self.kind == "pool":
            return 0
        if self.kind == "fc":
            return 1
        return self.out_height * self.out_width

    @property
    def weight_count(self) -> int:
        """Trainable weights (bias excluded — negligible and the paper
        neglects it "for express clarity")."""
        if self.kind == "pool":
            return 0
        return self.matrix_rows * self.matrix_cols

    # -- work -------------------------------------------------------------------
    @property
    def macs(self) -> int:
        """Multiply-accumulate operations per image (forward)."""
        if self.kind == "pool":
            return 0
        return self.matrix_rows * self.matrix_cols * self.output_vectors

    @property
    def flops(self) -> int:
        """Forward floating-point operations per image (2 x MACs)."""
        if self.kind == "pool":
            # Comparisons / adds across the window.
            return self.output_size * self.kernel * self.kernel
        return 2 * self.macs

    @property
    def is_matrix_layer(self) -> bool:
        """Whether this layer maps onto crossbar arrays."""
        return self.kind in MATRIX_KINDS

    def scaled(self, factor: float) -> "LayerSpec":
        """Spec with channel counts scaled (for reduced-size studies)."""
        check_positive("factor", factor)
        return LayerSpec(
            kind=self.kind,
            in_channels=max(1, round(self.in_channels * factor)),
            in_height=self.in_height,
            in_width=self.in_width,
            out_channels=max(1, round(self.out_channels * factor)),
            kernel=self.kernel,
            stride=self.stride,
            pad=self.pad,
            name=self.name,
        )


def conv(
    in_channels: int,
    size: int,
    out_channels: int,
    kernel: int,
    stride: int = 1,
    pad: int = 0,
    name: str = "",
) -> LayerSpec:
    """Shorthand conv spec for square inputs."""
    return LayerSpec(
        kind="conv",
        in_channels=in_channels,
        in_height=size,
        in_width=size,
        out_channels=out_channels,
        kernel=kernel,
        stride=stride,
        pad=pad,
        name=name,
    )


def fc(in_features: int, out_features: int, name: str = "") -> LayerSpec:
    """Shorthand fully-connected spec."""
    return LayerSpec(
        kind="fc",
        in_channels=in_features,
        in_height=1,
        in_width=1,
        out_channels=out_features,
        name=name,
    )


def fcnn(
    in_channels: int,
    size: int,
    out_channels: int,
    kernel: int,
    stride: int = 2,
    pad: int = 1,
    name: str = "",
) -> LayerSpec:
    """Shorthand fractional-strided conv spec for square inputs."""
    return LayerSpec(
        kind="fcnn",
        in_channels=in_channels,
        in_height=size,
        in_width=size,
        out_channels=out_channels,
        kernel=kernel,
        stride=stride,
        pad=pad,
        name=name,
    )


def pool(channels: int, size: int, window: int, name: str = "") -> LayerSpec:
    """Shorthand pooling spec for square inputs."""
    return LayerSpec(
        kind="pool",
        in_channels=channels,
        in_height=size,
        in_width=size,
        out_channels=channels,
        kernel=window,
        stride=window,
        name=name,
    )


#: The worked example of Fig. 4: layer l is 114x114x128, kernels are
#: 3x3x128x256, layer l+1 is 112x112x256 (1152 word lines, 256 bit
#: lines, 12544 output vectors).
FIG4_EXAMPLE = conv(128, 114, 256, 3, name="fig4_example")
