"""Evaluation workloads: layer specs and the paper's network suite."""

from repro.workloads.specs import (
    FIG4_EXAMPLE,
    LayerSpec,
    MATRIX_KINDS,
    conv,
    fc,
    fcnn,
    pool,
)
from repro.workloads.suite import (
    NetworkSpec,
    alexnet_spec,
    dcgan_spec,
    mnist_cnn_spec,
    pipelayer_suite,
    regan_suite,
    vggnet_spec,
)

#: Workload names runnable end-to-end through the crossbar simulator
#: (buildable networks + synthetic datasets).  The single source of
#: truth for :class:`repro.api.Simulator` and the serve-layer job
#: schemas, kept here so both can import it without a cycle.
RUNNABLE_WORKLOADS = ("mlp", "mnist_cnn", "cifar_cnn")

__all__ = [
    "RUNNABLE_WORKLOADS",
    "LayerSpec",
    "MATRIX_KINDS",
    "FIG4_EXAMPLE",
    "conv",
    "fc",
    "fcnn",
    "pool",
    "NetworkSpec",
    "mnist_cnn_spec",
    "alexnet_spec",
    "vggnet_spec",
    "pipelayer_suite",
    "dcgan_spec",
    "regan_suite",
]
