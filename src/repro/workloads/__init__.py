"""Evaluation workloads: layer specs and the paper's network suite."""

from repro.workloads.specs import (
    FIG4_EXAMPLE,
    LayerSpec,
    MATRIX_KINDS,
    conv,
    fc,
    fcnn,
    pool,
)
from repro.workloads.suite import (
    NetworkSpec,
    alexnet_spec,
    dcgan_spec,
    mnist_cnn_spec,
    pipelayer_suite,
    regan_suite,
    vggnet_spec,
)

__all__ = [
    "LayerSpec",
    "MATRIX_KINDS",
    "FIG4_EXAMPLE",
    "conv",
    "fc",
    "fcnn",
    "pool",
    "NetworkSpec",
    "mnist_cnn_spec",
    "alexnet_spec",
    "vggnet_spec",
    "pipelayer_suite",
    "dcgan_spec",
    "regan_suite",
]
