"""Model zoo: the network shapes the paper's evaluation uses.

Builders return :class:`~repro.nn.network.Sequential` instances.  The
large ImageNet-class networks (AlexNet, VGG-style) exist both as
runnable networks and — more importantly for the cycle/energy models —
as layer-shape specifications in :mod:`repro.workloads`.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.nn.layers import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    FractionalStridedConv2D,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    Reshape,
    Sigmoid,
    Tanh,
    VirtualBatchNorm,
)
from repro.nn.network import Sequential
from repro.utils.rng import RngLike, spawn_rngs


def build_mlp(
    in_features: int,
    hidden: Tuple[int, ...],
    classes: int,
    rng: RngLike = None,
    name: str = "mlp",
) -> Sequential:
    """Plain multi-layer perceptron classifier."""
    rngs = iter(spawn_rngs(rng, len(hidden) + 1))
    layers = []
    width = in_features
    for index, units in enumerate(hidden):
        layers.append(
            Dense(width, units, rng=next(rngs), name=f"{name}.fc{index}")
        )
        layers.append(ReLU(name=f"{name}.relu{index}"))
        width = units
    layers.append(Dense(width, classes, rng=next(rngs), name=f"{name}.out"))
    return Sequential(layers, name=name)


def build_mnist_cnn(
    rng: RngLike = None, classes: int = 10, name: str = "mnist_cnn"
) -> Sequential:
    """LeNet-style CNN for 1x28x28 inputs (the paper's MNIST workload)."""
    rngs = iter(spawn_rngs(rng, 4))
    return Sequential(
        [
            Conv2D(1, 8, kernel_size=5, pad=2, rng=next(rngs), name=f"{name}.c1"),
            ReLU(name=f"{name}.r1"),
            MaxPool2D(2, name=f"{name}.p1"),
            Conv2D(8, 16, kernel_size=5, pad=2, rng=next(rngs), name=f"{name}.c2"),
            ReLU(name=f"{name}.r2"),
            MaxPool2D(2, name=f"{name}.p2"),
            Flatten(name=f"{name}.flat"),
            Dense(16 * 7 * 7, 64, rng=next(rngs), name=f"{name}.fc1"),
            ReLU(name=f"{name}.r3"),
            Dense(64, classes, rng=next(rngs), name=f"{name}.fc2"),
        ],
        name=name,
    )


def build_cifar_cnn(
    rng: RngLike = None, classes: int = 10, name: str = "cifar_cnn"
) -> Sequential:
    """Small VGG-style CNN for 3x32x32 inputs."""
    rngs = iter(spawn_rngs(rng, 5))
    return Sequential(
        [
            Conv2D(3, 16, kernel_size=3, pad=1, rng=next(rngs), name=f"{name}.c1"),
            ReLU(name=f"{name}.r1"),
            Conv2D(16, 16, kernel_size=3, pad=1, rng=next(rngs), name=f"{name}.c2"),
            ReLU(name=f"{name}.r2"),
            MaxPool2D(2, name=f"{name}.p1"),
            Conv2D(16, 32, kernel_size=3, pad=1, rng=next(rngs), name=f"{name}.c3"),
            ReLU(name=f"{name}.r3"),
            MaxPool2D(2, name=f"{name}.p2"),
            Flatten(name=f"{name}.flat"),
            Dense(32 * 8 * 8, 128, rng=next(rngs), name=f"{name}.fc1"),
            ReLU(name=f"{name}.r4"),
            Dropout(0.25, rng=next(rngs), name=f"{name}.drop"),
            Dense(128, classes, name=f"{name}.fc2"),
        ],
        name=name,
    )


def build_dcgan_generator(
    noise_dim: int = 32,
    base_channels: int = 16,
    image_channels: int = 1,
    image_size: int = 16,
    use_virtual_bn: bool = True,
    rng: RngLike = None,
    name: str = "dcgan_g",
) -> Sequential:
    """DCGAN generator: FC projection, then fractional-strided convs.

    Mirrors Fig. 2's generator: a noise vector is projected to a small
    spatial extent with many feature maps, then up-sampled by FCNN
    layers to ``image_channels x image_size x image_size``, with batch
    normalization before each activation and a final ``tanh``.
    ``image_size`` must be a multiple of 4 (two stride-2 up-samplings
    from ``image_size / 4``).
    """
    if image_size % 4 != 0:
        raise ValueError(f"image_size must be a multiple of 4, got {image_size}")
    seed_size = image_size // 4
    norm = VirtualBatchNorm if use_virtual_bn else BatchNorm
    rngs = iter(spawn_rngs(rng, 3))
    return Sequential(
        [
            Dense(
                noise_dim,
                2 * base_channels * seed_size * seed_size,
                rng=next(rngs),
                name=f"{name}.project",
            ),
            Reshape(
                (2 * base_channels, seed_size, seed_size),
                name=f"{name}.reshape",
            ),
            norm(2 * base_channels, name=f"{name}.bn1"),
            ReLU(name=f"{name}.r1"),
            FractionalStridedConv2D(
                2 * base_channels,
                base_channels,
                kernel_size=4,
                stride=2,
                pad=1,
                rng=next(rngs),
                name=f"{name}.up1",
            ),
            norm(base_channels, name=f"{name}.bn2"),
            ReLU(name=f"{name}.r2"),
            FractionalStridedConv2D(
                base_channels,
                image_channels,
                kernel_size=4,
                stride=2,
                pad=1,
                rng=next(rngs),
                name=f"{name}.up2",
            ),
            Tanh(name=f"{name}.tanh"),
        ],
        name=name,
    )


def build_dcgan_discriminator(
    base_channels: int = 16,
    image_channels: int = 1,
    image_size: int = 16,
    rng: RngLike = None,
    name: str = "dcgan_d",
) -> Sequential:
    """DCGAN discriminator: strided convs, LeakyReLU, single logit.

    Mirrors Fig. 2's discriminator ("down-samples the input to produce
    classification"); the final layer is the flattened feature map fed
    to one logit, per Sec. III-B-4.
    """
    if image_size % 4 != 0:
        raise ValueError(f"image_size must be a multiple of 4, got {image_size}")
    final = image_size // 4
    rngs = iter(spawn_rngs(rng, 3))
    return Sequential(
        [
            Conv2D(
                image_channels,
                base_channels,
                kernel_size=4,
                stride=2,
                pad=1,
                rng=next(rngs),
                name=f"{name}.down1",
            ),
            LeakyReLU(0.2, name=f"{name}.lr1"),
            Conv2D(
                base_channels,
                2 * base_channels,
                kernel_size=4,
                stride=2,
                pad=1,
                rng=next(rngs),
                name=f"{name}.down2",
            ),
            LeakyReLU(0.2, name=f"{name}.lr2"),
            Flatten(name=f"{name}.flat"),
            Dense(
                2 * base_channels * final * final,
                1,
                rng=next(rngs),
                name=f"{name}.logit",
            ),
        ],
        name=name,
    )


def build_alexnet(
    rng: RngLike = None, classes: int = 1000, name: str = "alexnet"
) -> Sequential:
    """AlexNet with the published layer dimensions (227x227x3 input).

    Provided for shape-faithful compilation onto the accelerator; at
    full scale it is impractical to *train* in pure numpy, but forward
    passes and resource compilation work.
    """
    rngs = iter(spawn_rngs(rng, 8))
    return Sequential(
        [
            Conv2D(3, 96, kernel_size=11, stride=4, rng=next(rngs), name=f"{name}.c1"),
            ReLU(name=f"{name}.r1"),
            MaxPool2D(3, stride=2, name=f"{name}.p1"),
            Conv2D(96, 256, kernel_size=5, pad=2, rng=next(rngs), name=f"{name}.c2"),
            ReLU(name=f"{name}.r2"),
            MaxPool2D(3, stride=2, name=f"{name}.p2"),
            Conv2D(256, 384, kernel_size=3, pad=1, rng=next(rngs), name=f"{name}.c3"),
            ReLU(name=f"{name}.r3"),
            Conv2D(384, 384, kernel_size=3, pad=1, rng=next(rngs), name=f"{name}.c4"),
            ReLU(name=f"{name}.r4"),
            Conv2D(384, 256, kernel_size=3, pad=1, rng=next(rngs), name=f"{name}.c5"),
            ReLU(name=f"{name}.r5"),
            MaxPool2D(3, stride=2, name=f"{name}.p3"),
            Flatten(name=f"{name}.flat"),
            Dense(256 * 6 * 6, 4096, rng=next(rngs), name=f"{name}.fc6"),
            ReLU(name=f"{name}.r6"),
            Dense(4096, 4096, rng=next(rngs), name=f"{name}.fc7"),
            ReLU(name=f"{name}.r7"),
            Dense(4096, classes, rng=next(rngs), name=f"{name}.fc8"),
        ],
        name=name,
    )
