"""Pluggable matrix-multiplication engines.

The dense and convolution layers funnel their heavy lifting through an
``MatmulEngine`` so the same network can run either with exact float
arithmetic or through the ReRAM crossbar functional simulator
(:class:`repro.xbar.engine.CrossbarEngine`).  This is the software
analogue of the paper's morphable subarrays: the layer does not care
whether its matrix lives in SRAM or as conductances.
"""

from __future__ import annotations

import numpy as np


class MatmulEngine:
    """Protocol: compute ``activations @ weights``.

    ``activations`` is ``(rows, k)`` and ``weights`` is ``(k, cols)``.
    Implementations may be stateful (e.g. the crossbar engine programs
    weights once and reuses them), so ``prepare`` is called whenever the
    weight matrix changes and ``matmul`` on every evaluation.
    """

    def prepare(self, weights: np.ndarray) -> None:
        """Accept a (possibly new) weight matrix."""
        raise NotImplementedError

    def matmul(self, activations: np.ndarray) -> np.ndarray:
        """Return ``activations @ weights`` for the prepared weights.

        ``activations`` carries the whole batch; implementations are
        expected to evaluate it in one call (batched/vectorized) rather
        than row by row, so batching decisions made by layers propagate
        all the way into the engine.
        """
        raise NotImplementedError

    def info(self) -> dict:
        """Describe this engine (name, backend, ...) for reports.

        Keys are free-form; the deployment/facade layers surface them
        verbatim so users can see which datapath served their matmuls.
        """
        return {"engine": type(self).__name__}


class ExactEngine(MatmulEngine):
    """Reference engine: plain float matmul via numpy."""

    def __init__(self) -> None:
        self._weights: np.ndarray | None = None

    def prepare(self, weights: np.ndarray) -> None:
        self._weights = np.asarray(weights, dtype=np.float64)

    def matmul(self, activations: np.ndarray) -> np.ndarray:
        if self._weights is None:
            raise RuntimeError("prepare() must be called before matmul()")
        return np.asarray(activations, dtype=np.float64) @ self._weights

    def info(self) -> dict:
        return {"engine": "exact"}


def run_engine(
    engine: "MatmulEngine | None",
    activations: np.ndarray,
    weights: np.ndarray,
) -> np.ndarray:
    """Evaluate ``activations @ weights`` via ``engine`` (or exactly).

    Convenience for layers: a ``None`` engine means exact numpy matmul
    with no object churn.  When an engine is given it is re-prepared on
    every call; engines are expected to detect unchanged weights and
    skip reprogramming if that matters for their cost model.
    """
    if engine is None:
        return np.asarray(activations, dtype=np.float64) @ np.asarray(
            weights, dtype=np.float64
        )
    engine.prepare(weights)
    return engine.matmul(activations)
