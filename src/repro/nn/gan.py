"""GAN training — the three dataflows of Fig. 8, in software.

The trainer implements exactly the procedure the paper describes in
Sec. III-B-2:

* **Train D on real** (dataflow 1): real samples forward through D,
  loss with label '1', back-propagate, *store* derivatives.
* **Train D on fake** (dataflow 2): G maps noise to samples, they flow
  through D, loss with label '0', derivatives propagate back to D's
  first layer and are stored.  "G is used but not updated."
* **Update D**: the stored derivatives from (1) and (2) are summed and
  applied once (the paper's cycle T11).
* **Train G** (dataflow 3): like (2) but the loss uses the inaccurate
  label '1', the error propagates all the way back through D *into* G,
  and only G's weights update (T14) while D is fixed.

The trainer also offers the **computation-sharing** step of Fig. 9:
dataflows (2) and (3) share one forward pass; the two backward branches
use the same cached activations, which requires doubling intermediate
storage in hardware and, in software, simply re-using the caches before
any new forward pass invalidates them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.nn.losses import BinaryCrossEntropyWithLogits
from repro.nn.network import Sequential
from repro.nn.optim import Optimizer
from repro.utils.rng import RngLike, new_rng


@dataclass
class GANHistory:
    """Loss traces for both sub-networks."""

    d_losses_real: List[float] = field(default_factory=list)
    d_losses_fake: List[float] = field(default_factory=list)
    g_losses: List[float] = field(default_factory=list)

    @property
    def steps(self) -> int:
        return len(self.g_losses)


class GANTrainer:
    """Co-trains a Generator and a Discriminator (Fig. 2 system)."""

    def __init__(
        self,
        generator: Sequential,
        discriminator: Sequential,
        g_optimizer: Optimizer,
        d_optimizer: Optimizer,
        noise_dim: int,
        rng: RngLike = None,
    ) -> None:
        if noise_dim <= 0:
            raise ValueError(f"noise_dim must be > 0, got {noise_dim}")
        self.generator = generator
        self.discriminator = discriminator
        self.g_optimizer = g_optimizer
        self.d_optimizer = d_optimizer
        self.noise_dim = noise_dim
        self.rng = new_rng(rng)
        self.loss = BinaryCrossEntropyWithLogits()
        self.history = GANHistory()

    # -- building blocks ---------------------------------------------------
    def sample_noise(self, batch: int) -> np.ndarray:
        """Uniform noise input for G (Sec. II-A-3)."""
        return self.rng.uniform(-1.0, 1.0, size=(batch, self.noise_dim))

    def generate(self, batch: int, training: bool = False) -> np.ndarray:
        """Run G on fresh noise."""
        return self.generator.forward(self.sample_noise(batch), training=training)

    def _d_loss_and_backward(
        self, samples: np.ndarray, label: float
    ) -> float:
        """Forward D, compute BCE at ``label``, back-propagate into D."""
        logits = self.discriminator.forward(samples, training=True)
        targets = np.full(logits.shape, label)
        value = self.loss.forward(logits, targets)
        self.discriminator.backward(self.loss.backward())
        return value

    # -- the three dataflows ------------------------------------------------
    def train_discriminator(self, real_samples: np.ndarray) -> float:
        """Dataflows (1) + (2) + the summed update at T11.

        Returns the mean of the real/fake loss values.
        """
        batch = real_samples.shape[0]
        self.discriminator.zero_grad()

        # (1) real samples, label '1'; derivatives stay accumulated.
        loss_real = self._d_loss_and_backward(real_samples, 1.0)

        # (2) generated samples, label '0'; "G is used but not updated",
        # so G runs in inference mode and receives no gradient.
        fake_samples = self.generate(batch, training=False)
        loss_fake = self._d_loss_and_backward(fake_samples, 0.0)

        # T11: stored derivatives from (1) and (2) are summed (they
        # accumulated in Parameter.grad) and applied once.
        self.d_optimizer.step()
        self.history.d_losses_real.append(loss_real)
        self.history.d_losses_fake.append(loss_fake)
        return 0.5 * (loss_real + loss_fake)

    def train_generator(self, batch: int) -> float:
        """Dataflow (3): inaccurate label '1', update only G (T14)."""
        self.generator.zero_grad()
        self.discriminator.zero_grad()  # D accumulates but is then discarded

        fake_samples = self.generate(batch, training=True)
        logits = self.discriminator.forward(fake_samples, training=True)
        targets = np.ones(logits.shape)
        value = self.loss.forward(logits, targets)
        grad_samples = self.discriminator.backward(self.loss.backward())
        self.generator.backward(grad_samples)

        # "The weights of G are updated ... while D is fixed": discard
        # whatever accumulated in D during this pass.
        self.discriminator.zero_grad()
        self.g_optimizer.step()
        self.history.g_losses.append(value)
        return value

    def train_step(self, real_samples: np.ndarray) -> tuple:
        """One full GAN iteration: update D, then update G."""
        d_loss = self.train_discriminator(real_samples)
        g_loss = self.train_generator(real_samples.shape[0])
        return d_loss, g_loss

    # -- computation sharing (Fig. 9) ----------------------------------------
    def train_step_shared(self, real_samples: np.ndarray) -> tuple:
        """One GAN iteration using ReGAN's computation sharing.

        Dataflows (2) and (3) share a single forward pass of G
        concatenated with D; the two backward branches reuse the same
        cached activations ("doubling the memory storage for
        intermediate computation").  Numerically this matches
        :meth:`train_step` up to the fact that D's fake-loss gradient
        is computed at the same weights — which is also true in the
        unshared version, so losses agree exactly for the D update and
        the G update sees the *pre-update* D rather than the post-update
        one (the paper's T11-vs-T14 ordering).
        """
        batch = real_samples.shape[0]

        # (1) real branch: accumulate into D.
        self.discriminator.zero_grad()
        loss_real = self._d_loss_and_backward(real_samples, 1.0)
        # Stash D's real-branch gradients so the shared fake pass can
        # add its own contribution afterwards.
        stored_real_grads = [p.grad.copy() for p in self.discriminator.parameters()]

        # Shared forward path T0-T6: G then D, both caching activations.
        self.generator.zero_grad()
        self.discriminator.zero_grad()
        fake_samples = self.generate(batch, training=True)
        logits = self.discriminator.forward(fake_samples, training=True)

        # Branch A (dataflow 3): label '1', gradient flows into G.
        loss_g = self.loss.forward(logits, np.ones(logits.shape))
        grad_into_samples = self.discriminator.backward(self.loss.backward())
        self.generator.backward(grad_into_samples)
        g_update_grads = [p.grad.copy() for p in self.generator.parameters()]
        self.discriminator.zero_grad()

        # Branch B (dataflow 2): label '0', gradient stays in D.  The
        # cached activations from the shared forward pass are re-used —
        # no second forward execution of G or D.
        loss_fake = self.loss.forward(logits, np.zeros(logits.shape))
        self.discriminator.backward(self.loss.backward())

        # T11: sum derivatives of (1) and (2), update D.
        for parameter, real_grad in zip(
            self.discriminator.parameters(), stored_real_grads
        ):
            parameter.grad += real_grad
        self.d_optimizer.step()

        # T14: update G from the branch-A gradients.
        for parameter, grad in zip(self.generator.parameters(), g_update_grads):
            np.copyto(parameter.grad, grad)
        self.g_optimizer.step()

        self.history.d_losses_real.append(loss_real)
        self.history.d_losses_fake.append(loss_fake)
        self.history.g_losses.append(loss_g)
        return 0.5 * (loss_real + loss_fake), loss_g

    # -- evaluation -----------------------------------------------------------
    def discriminator_scores(
        self, real_samples: np.ndarray, fake_batch: Optional[int] = None
    ) -> tuple:
        """Mean sigmoid score D assigns to real vs. generated samples."""
        fake_batch = fake_batch or real_samples.shape[0]
        real_logits = self.discriminator.forward(real_samples, training=False)
        fake = self.generate(fake_batch, training=False)
        fake_logits = self.discriminator.forward(fake, training=False)

        def sigmoid(values: np.ndarray) -> np.ndarray:
            return 1.0 / (1.0 + np.exp(-np.clip(values, -60, 60)))

        return (
            float(np.mean(sigmoid(real_logits))),
            float(np.mean(sigmoid(fake_logits))),
        )
