"""Learning-rate schedules for the optimizers.

Long numpy training runs (and the DCGAN recipes) benefit from decaying
learning rates; these helpers mutate an optimizer's ``lr`` in place,
called once per epoch or step by the training loop.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.nn.optim import Optimizer
from repro.utils.validation import check_positive


class LRSchedule:
    """Base class: maps a step index to a learning rate."""

    def __init__(self, optimizer: Optimizer, base_lr: Optional[float] = None):
        self.optimizer = optimizer
        self.base_lr = base_lr if base_lr is not None else optimizer.lr
        check_positive("base_lr", self.base_lr)
        self.last_step = -1

    def lr_at(self, step: int) -> float:
        """Learning rate for ``step`` (subclasses implement)."""
        raise NotImplementedError

    def step(self) -> float:
        """Advance one step; writes and returns the new rate."""
        self.last_step += 1
        rate = self.lr_at(self.last_step)
        self.optimizer.lr = rate
        return rate


class StepLR(LRSchedule):
    """Multiply the rate by ``gamma`` every ``period`` steps."""

    def __init__(
        self,
        optimizer: Optimizer,
        period: int,
        gamma: float = 0.1,
        base_lr: Optional[float] = None,
    ) -> None:
        super().__init__(optimizer, base_lr)
        check_positive("period", period)
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.period = period
        self.gamma = gamma

    def lr_at(self, step: int) -> float:
        return self.base_lr * self.gamma ** (step // self.period)


class CosineLR(LRSchedule):
    """Cosine annealing from ``base_lr`` to ``min_lr`` over ``total``."""

    def __init__(
        self,
        optimizer: Optimizer,
        total: int,
        min_lr: float = 0.0,
        base_lr: Optional[float] = None,
    ) -> None:
        super().__init__(optimizer, base_lr)
        check_positive("total", total)
        if min_lr < 0:
            raise ValueError(f"min_lr must be >= 0, got {min_lr}")
        if min_lr > self.base_lr:
            raise ValueError("min_lr must not exceed base_lr")
        self.total = total
        self.min_lr = min_lr

    def lr_at(self, step: int) -> float:
        progress = min(step, self.total) / self.total
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class WarmupLR(LRSchedule):
    """Linear warm-up to ``base_lr`` over ``warmup`` steps, then flat."""

    def __init__(
        self,
        optimizer: Optimizer,
        warmup: int,
        base_lr: Optional[float] = None,
    ) -> None:
        super().__init__(optimizer, base_lr)
        check_positive("warmup", warmup)
        self.warmup = warmup

    def lr_at(self, step: int) -> float:
        if step >= self.warmup:
            return self.base_lr
        return self.base_lr * (step + 1) / self.warmup
