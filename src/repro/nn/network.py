"""Sequential network container with full forward/backward support."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.layers.base import Layer
from repro.nn.losses import Loss
from repro.nn.parameter import Parameter


class Sequential:
    """A feed-forward stack of layers (Fig. 1's CONV/POOL/IP chain).

    Provides forward inference, back-propagation, and introspection
    hooks used by the accelerator compiler (layer list, per-layer output
    shapes, parameter census).
    """

    def __init__(
        self, layers: Sequence[Layer], name: str = "network"
    ) -> None:
        self.layers: List[Layer] = list(layers)
        if not self.layers:
            raise ValueError("network needs at least one layer")
        self.name = name

    # -- execution -------------------------------------------------------
    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Run data through all layers in order."""
        outputs = inputs
        for layer in self.layers:
            outputs = layer.forward(outputs, training=training)
        return outputs

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate through all layers; returns input gradient.

        Valid only after a forward pass; parameter gradients accumulate
        into each layer's parameters.
        """
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def __call__(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(inputs, training=training)

    def train_step(
        self, inputs: np.ndarray, targets: np.ndarray, loss: Loss
    ) -> float:
        """Forward + loss + backward (no optimizer step, no zero_grad).

        Gradients accumulate, matching the paper's batched update: call
        this for every example/micro-batch in a batch, then apply the
        optimizer once.
        """
        outputs = self.forward(inputs, training=True)
        value = loss.forward(outputs, targets)
        self.backward(loss.backward())
        return value

    # -- introspection -----------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """All trainable parameters in layer order."""
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def zero_grad(self) -> None:
        """Reset all parameter gradients."""
        for layer in self.layers:
            layer.zero_grad()

    def parameter_count(self) -> int:
        """Total trainable scalar count."""
        return sum(p.size for p in self.parameters())

    def output_shapes(
        self, input_shape: Tuple[int, ...]
    ) -> List[Tuple[int, ...]]:
        """Per-layer output shapes for a given (batch-free) input shape."""
        shapes: List[Tuple[int, ...]] = []
        shape = tuple(input_shape)
        for layer in self.layers:
            shape = layer.output_shape(shape)
            shapes.append(shape)
        return shapes

    def summary(self, input_shape: Tuple[int, ...]) -> str:
        """Human-readable per-layer table (name, output shape, params)."""
        lines = [f"{self.name}: input {tuple(input_shape)}"]
        shapes = self.output_shapes(input_shape)
        for layer, shape in zip(self.layers, shapes):
            lines.append(
                f"  {layer!r:<55s} out={shape} params={layer.parameter_count()}"
            )
        lines.append(f"  total parameters: {self.parameter_count()}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> Iterable[Layer]:
        return iter(self.layers)

    def __repr__(self) -> str:
        return f"Sequential(name={self.name!r}, layers={len(self.layers)})"
