"""Optimizers: plain/momentum SGD and Adam.

PipeLayer's training semantics are batch-synchronous — gradients from
each example in a batch accumulate and the weight update is applied
once per batch (Sec. III-A-2).  The optimizers here consume whatever
has been accumulated in ``Parameter.grad`` when ``step`` is called, so
the same machinery serves per-batch and per-step updates.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.nn.parameter import Parameter
from repro.utils.validation import check_positive


class Optimizer:
    """Base optimizer over a fixed list of parameters."""

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer needs at least one parameter")

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Reset accumulated gradients on all managed parameters."""
        for parameter in self.parameters:
            parameter.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        check_positive("lr", lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for parameter in self.parameters:
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.value
            if self.momentum:
                velocity = self._velocity.setdefault(
                    id(parameter), np.zeros_like(parameter.value)
                )
                velocity *= self.momentum
                velocity -= self.lr * grad
                parameter.value += velocity
            else:
                parameter.value -= self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (DCGAN's published recipe: lr=2e-4, beta1=0.5)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 2e-4,
        beta1: float = 0.5,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters)
        check_positive("lr", lr)
        if not 0.0 <= beta1 < 1.0:
            raise ValueError(f"beta1 must be in [0, 1), got {beta1}")
        if not 0.0 <= beta2 < 1.0:
            raise ValueError(f"beta2 must be in [0, 1), got {beta2}")
        check_positive("eps", eps)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._step_count = 0
        self._first: Dict[int, np.ndarray] = {}
        self._second: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for parameter in self.parameters:
            key = id(parameter)
            first = self._first.setdefault(key, np.zeros_like(parameter.value))
            second = self._second.setdefault(
                key, np.zeros_like(parameter.value)
            )
            grad = parameter.grad
            first *= self.beta1
            first += (1.0 - self.beta1) * grad
            second *= self.beta2
            second += (1.0 - self.beta2) * grad * grad
            corrected_first = first / bias1
            corrected_second = second / bias2
            parameter.value -= (
                self.lr * corrected_first / (np.sqrt(corrected_second) + self.eps)
            )


def clip_gradients(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm, handy for monitoring divergence.
    """
    check_positive("max_norm", max_norm)
    parameters = list(parameters)
    total = float(
        np.sqrt(sum(float(np.sum(p.grad**2)) for p in parameters))
    )
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for parameter in parameters:
            parameter.grad *= scale
    return total
