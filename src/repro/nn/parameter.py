"""Trainable parameter container for the numpy DNN substrate."""

from __future__ import annotations

from typing import Optional

import numpy as np


class Parameter:
    """A trainable tensor and its accumulated gradient.

    The training loop in :mod:`repro.nn.optim` reads ``value`` and
    ``grad`` and writes updated values back.  Layers are responsible for
    accumulating into ``grad`` during their backward pass (accumulation,
    not overwrite, mirrors the paper's batched weight update: per-input
    gradients are summed across a batch and applied once at batch end).
    """

    def __init__(self, value: np.ndarray, name: str = "param") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self):
        """Shape of the underlying value array."""
        return self.value.shape

    @property
    def size(self) -> int:
        """Number of scalar weights."""
        return int(self.value.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad.fill(0.0)

    def copy_from(self, other: "Parameter") -> None:
        """Copy another parameter's value (used by ReGAN's duplicated D)."""
        if other.value.shape != self.value.shape:
            raise ValueError(
                f"shape mismatch: {other.value.shape} vs {self.value.shape}"
            )
        np.copyto(self.value, other.value)

    def __repr__(self) -> str:
        return f"Parameter(name={self.name!r}, shape={self.value.shape})"


def as_parameter(value: np.ndarray, name: str) -> Parameter:
    """Wrap ``value`` in a :class:`Parameter` unless it already is one."""
    if isinstance(value, Parameter):
        return value
    return Parameter(value, name=name)


def total_parameter_count(parameters) -> int:
    """Sum of ``size`` over an iterable of parameters."""
    return sum(p.size for p in parameters)


def flatten_parameters(parameters) -> np.ndarray:
    """Concatenate all parameter values into one flat vector."""
    arrays = [p.value.ravel() for p in parameters]
    if not arrays:
        return np.zeros(0)
    return np.concatenate(arrays)


def load_flat_parameters(parameters, flat: np.ndarray) -> None:
    """Inverse of :func:`flatten_parameters` — load values in place."""
    flat = np.asarray(flat, dtype=np.float64)
    offset = 0
    for parameter in parameters:
        count = parameter.size
        chunk = flat[offset : offset + count]
        if chunk.size != count:
            raise ValueError("flat vector too short for parameter list")
        np.copyto(parameter.value, chunk.reshape(parameter.value.shape))
        offset += count
    if offset != flat.size:
        raise ValueError(
            f"flat vector has {flat.size} entries, parameters need {offset}"
        )


class ParameterSnapshot:
    """Frozen copy of a parameter list, restorable later.

    PipeLayer applies weight updates only at batch boundaries; the
    snapshot utility lets tests and the pipeline simulator hold the
    "weights at start of batch" while gradients accumulate.
    """

    def __init__(self, parameters) -> None:
        self._parameters = list(parameters)
        self._values = [p.value.copy() for p in self._parameters]

    def restore(self) -> None:
        """Write the stored values back into the live parameters."""
        for parameter, value in zip(self._parameters, self._values):
            np.copyto(parameter.value, value)

    def max_abs_delta(self) -> float:
        """Largest absolute change since the snapshot was taken."""
        deltas = [
            float(np.max(np.abs(p.value - v))) if p.size else 0.0
            for p, v in zip(self._parameters, self._values)
        ]
        return max(deltas, default=0.0)
