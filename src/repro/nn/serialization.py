"""Saving and loading network weights (.npz checkpoints).

Training in pure numpy is slow enough that users will want to persist
trained weights — e.g. train once, then sweep crossbar configurations
over the checkpoint (the accuracy benchmarks' workflow).  Checkpoints
store one array per parameter keyed by parameter name, plus the batch-
norm running statistics that are state but not parameters.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.nn.layers.batchnorm import BatchNorm, VirtualBatchNorm
from repro.nn.network import Sequential

PathLike = Union[str, Path]


def network_state(network: Sequential) -> Dict[str, np.ndarray]:
    """All persistable arrays of a network, keyed by name."""
    state: Dict[str, np.ndarray] = {}
    for parameter in network.parameters():
        if parameter.name in state:
            raise ValueError(
                f"duplicate parameter name {parameter.name!r}; give layers "
                "unique names before saving"
            )
        state[parameter.name] = parameter.value
    for layer in network.layers:
        if isinstance(layer, BatchNorm):
            state[f"{layer.name}.running_mean"] = layer.running_mean
            state[f"{layer.name}.running_var"] = layer.running_var
        elif isinstance(layer, VirtualBatchNorm):
            if layer.ref_mean is not None:
                state[f"{layer.name}.ref_mean"] = layer.ref_mean
                state[f"{layer.name}.ref_inv_std"] = layer.ref_inv_std
    return state


def save_network(network: Sequential, path: PathLike) -> None:
    """Write a network checkpoint to ``path`` (.npz)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **network_state(network))


def load_network(network: Sequential, path: PathLike) -> None:
    """Load a checkpoint into an architecture-matching network.

    The network must have the same layer names and parameter shapes as
    the one that was saved; mismatches raise with the offending key.
    """
    path = Path(path)
    with np.load(path) as archive:
        stored = {key: archive[key] for key in archive.files}

    for parameter in network.parameters():
        if parameter.name not in stored:
            raise KeyError(
                f"checkpoint is missing parameter {parameter.name!r}"
            )
        value = stored.pop(parameter.name)
        if value.shape != parameter.value.shape:
            raise ValueError(
                f"{parameter.name}: checkpoint shape {value.shape} != "
                f"model shape {parameter.value.shape}"
            )
        np.copyto(parameter.value, value)

    for layer in network.layers:
        if isinstance(layer, BatchNorm):
            mean_key = f"{layer.name}.running_mean"
            var_key = f"{layer.name}.running_var"
            if mean_key in stored:
                layer.running_mean = stored.pop(mean_key)
                layer.running_var = stored.pop(var_key)
        elif isinstance(layer, VirtualBatchNorm):
            mean_key = f"{layer.name}.ref_mean"
            std_key = f"{layer.name}.ref_inv_std"
            if mean_key in stored:
                layer.ref_mean = stored.pop(mean_key)
                layer.ref_inv_std = stored.pop(std_key)

    if stored:
        raise ValueError(
            f"checkpoint has {len(stored)} unused entries, e.g. "
            f"{sorted(stored)[:3]}; architecture mismatch?"
        )
