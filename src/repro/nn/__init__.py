"""From-scratch numpy DNN substrate (layers, losses, optimizers, GAN).

This package is the software model of Sec. II-A: convolutional networks
with CONV/POOL/IP layers (Eq. 1-2), full forward and backward passes
with batch-synchronous weight updates, and the DCGAN generator/
discriminator pair of Fig. 2.
"""

from repro.nn.engine import ExactEngine, MatmulEngine, run_engine
from repro.nn.gan import GANHistory, GANTrainer
from repro.nn.gan_metrics import (
    discriminator_gap,
    gan_quality_report,
    mode_coverage,
    mode_histogram,
    sample_diversity,
)
from repro.nn.layers import (
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    FractionalStridedConv2D,
    Layer,
    LeakyReLU,
    LUTActivation,
    MaxPool2D,
    ReLU,
    Reshape,
    Sigmoid,
    StatelessLayer,
    Tanh,
    VirtualBatchNorm,
)
from repro.nn.losses import (
    BinaryCrossEntropyWithLogits,
    Loss,
    MeanSquaredError,
    SoftmaxCrossEntropy,
    accuracy,
)
from repro.nn.models import (
    build_alexnet,
    build_cifar_cnn,
    build_dcgan_discriminator,
    build_dcgan_generator,
    build_mlp,
    build_mnist_cnn,
)
from repro.nn.network import Sequential
from repro.nn.serialization import load_network, network_state, save_network
from repro.nn.optim import SGD, Adam, Optimizer, clip_gradients
from repro.nn.parameter import Parameter, ParameterSnapshot
from repro.nn.schedule import CosineLR, LRSchedule, StepLR, WarmupLR
from repro.nn.train import (
    TrainHistory,
    evaluate_classifier,
    iterate_batches,
    train_classifier,
)

__all__ = [
    "ExactEngine",
    "MatmulEngine",
    "run_engine",
    "GANHistory",
    "GANTrainer",
    "mode_coverage",
    "mode_histogram",
    "sample_diversity",
    "discriminator_gap",
    "gan_quality_report",
    "Layer",
    "StatelessLayer",
    "Dense",
    "Conv2D",
    "FractionalStridedConv2D",
    "AvgPool2D",
    "MaxPool2D",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "LUTActivation",
    "BatchNorm",
    "VirtualBatchNorm",
    "Flatten",
    "Reshape",
    "Dropout",
    "Loss",
    "MeanSquaredError",
    "SoftmaxCrossEntropy",
    "BinaryCrossEntropyWithLogits",
    "accuracy",
    "build_mlp",
    "build_mnist_cnn",
    "build_cifar_cnn",
    "build_dcgan_generator",
    "build_dcgan_discriminator",
    "build_alexnet",
    "Sequential",
    "save_network",
    "load_network",
    "network_state",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_gradients",
    "LRSchedule",
    "StepLR",
    "CosineLR",
    "WarmupLR",
    "Parameter",
    "ParameterSnapshot",
    "TrainHistory",
    "train_classifier",
    "evaluate_classifier",
    "iterate_batches",
]
