"""GAN evaluation metrics for the synthetic-blob distribution.

The paper evaluates ReGAN on throughput/energy, not sample quality, but
any credible GAN training claim needs a quality signal.  Without
pretrained feature extractors (no FID offline), we use metrics that the
synthetic data makes exact:

* **mode coverage** — the blob distribution has a known, finite set of
  modes (templates); coverage is the fraction of modes that some
  generated sample lands nearest to.  Mode collapse shows up directly.
* **sample diversity** — mean pairwise L2 distance between generated
  samples; collapse also crushes this.
* **discriminator gap** — mean D score on real minus on fake; a healthy
  adversarial game keeps it small but positive.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.validation import check_positive


def mode_assignments(
    samples: np.ndarray, templates: np.ndarray
) -> np.ndarray:
    """Index of the nearest template (L2) for each sample."""
    samples = np.asarray(samples, dtype=np.float64)
    templates = np.asarray(templates, dtype=np.float64)
    if samples.shape[1:] != templates.shape[1:]:
        raise ValueError(
            f"sample shape {samples.shape[1:]} != template shape "
            f"{templates.shape[1:]}"
        )
    flat_samples = samples.reshape(len(samples), -1)
    flat_templates = templates.reshape(len(templates), -1)
    distances = np.linalg.norm(
        flat_samples[:, None, :] - flat_templates[None, :, :], axis=2
    )
    return distances.argmin(axis=1)


def mode_coverage(samples: np.ndarray, templates: np.ndarray) -> float:
    """Fraction of modes hit by at least one sample (1.0 = no collapse)."""
    assignments = mode_assignments(samples, templates)
    return len(np.unique(assignments)) / len(templates)


def mode_histogram(
    samples: np.ndarray, templates: np.ndarray
) -> np.ndarray:
    """Sample count per mode (a collapsed GAN piles onto few bins)."""
    assignments = mode_assignments(samples, templates)
    return np.bincount(assignments, minlength=len(templates))


def sample_diversity(samples: np.ndarray) -> float:
    """Mean pairwise L2 distance between samples."""
    samples = np.asarray(samples, dtype=np.float64)
    check_positive("samples", len(samples))
    if len(samples) < 2:
        return 0.0
    flat = samples.reshape(len(samples), -1)
    total, count = 0.0, 0
    for index in range(len(flat)):
        rest = flat[index + 1 :]
        total += float(
            np.sum(np.linalg.norm(rest - flat[index], axis=1))
        )
        count += len(rest)
    return total / count


def discriminator_gap(
    real_scores: np.ndarray, fake_scores: np.ndarray
) -> float:
    """Mean D(real) minus mean D(fake), scores in [0, 1]."""
    real_scores = np.asarray(real_scores, dtype=np.float64)
    fake_scores = np.asarray(fake_scores, dtype=np.float64)
    if np.any((real_scores < 0) | (real_scores > 1)):
        raise ValueError("real scores must lie in [0, 1]")
    if np.any((fake_scores < 0) | (fake_scores > 1)):
        raise ValueError("fake scores must lie in [0, 1]")
    return float(np.mean(real_scores) - np.mean(fake_scores))


def gan_quality_report(
    samples: np.ndarray, templates: np.ndarray
) -> Tuple[float, float, np.ndarray]:
    """(mode coverage, diversity, per-mode histogram) in one call."""
    return (
        mode_coverage(samples, templates),
        sample_diversity(samples),
        mode_histogram(samples, templates),
    )
