"""Layer zoo for the numpy DNN substrate."""

from repro.nn.layers.base import Layer, StatelessLayer
from repro.nn.layers.dense import Dense
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.conv_transpose import (
    FractionalStridedConv2D,
    conv_transpose_output_size,
)
from repro.nn.layers.pooling import AvgPool2D, MaxPool2D
from repro.nn.layers.activations import (
    LeakyReLU,
    LUTActivation,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.layers.batchnorm import BatchNorm, VirtualBatchNorm
from repro.nn.layers.shape import Flatten, Reshape
from repro.nn.layers.dropout import Dropout

__all__ = [
    "Layer",
    "StatelessLayer",
    "Dense",
    "Conv2D",
    "FractionalStridedConv2D",
    "conv_transpose_output_size",
    "AvgPool2D",
    "MaxPool2D",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "LUTActivation",
    "BatchNorm",
    "VirtualBatchNorm",
    "Flatten",
    "Reshape",
    "Dropout",
]
