"""Batch normalization and virtual batch normalization.

DCGAN training "operates the batch normalization before the activation
layer to improve its stability" (Sec. II-A-3).  ReGAN implements
*virtual* batch normalization in the word-line drivers: "each example
is normalized based on the statistics collected on a reference batch
... chosen once and fixed at the start of training", with the divisor
restricted to a power of two so the hardware needs only a subtractor
and a shifter (Sec. III-B-4, Fig. 10 A).  Both variants are provided;
:class:`VirtualBatchNorm` optionally rounds its divisor to ``2**n`` to
model the shift-only hardware.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn.layers.base import Layer
from repro.nn.parameter import Parameter
from repro.utils.validation import check_positive


def _channel_axes(ndim: int) -> Tuple[int, ...]:
    """Reduction axes for per-channel statistics (NCHW or NC)."""
    if ndim == 2:
        return (0,)
    if ndim == 4:
        return (0, 2, 3)
    raise ValueError(f"batch norm supports 2-D or 4-D inputs, got {ndim}-D")


def _broadcast(values: np.ndarray, ndim: int) -> np.ndarray:
    """Reshape per-channel values for broadcasting over NCHW/NC."""
    if ndim == 2:
        return values[None, :]
    return values[None, :, None, None]


class BatchNorm(Layer):
    """Standard batch normalization with running statistics.

    Normalizes per channel over the batch (and spatial axes for NCHW),
    then applies a learned affine transform ``gamma * x_hat + beta``.
    Inference uses exponential running averages of the statistics.
    """

    CACHE_ATTRS = ("_cache",)


    def __init__(
        self,
        channels: int,
        momentum: float = 0.9,
        eps: float = 1e-5,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name=name)
        check_positive("channels", channels)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        check_positive("eps", eps)
        self.channels = channels
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(channels), name=f"{self.name}.gamma")
        self.beta = Parameter(np.zeros(channels), name=f"{self.name}.beta")
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)
        self._cache = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.shape[1] != self.channels:
            raise ValueError(
                f"{self.name}: expected {self.channels} channels, "
                f"got shape {inputs.shape}"
            )
        axes = _channel_axes(inputs.ndim)
        if training:
            mean = inputs.mean(axis=axes)
            var = inputs.var(axis=axes)
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            )
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (inputs - _broadcast(mean, inputs.ndim)) * _broadcast(
            inv_std, inputs.ndim
        )
        self._cache = (x_hat, inv_std, axes, inputs.ndim, inputs.shape)
        return _broadcast(self.gamma.value, inputs.ndim) * x_hat + _broadcast(
            self.beta.value, inputs.ndim
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        x_hat, inv_std, axes, ndim, shape = self._cache
        grad_output = np.asarray(grad_output, dtype=np.float64)

        self.gamma.grad += (grad_output * x_hat).sum(axis=axes)
        self.beta.grad += grad_output.sum(axis=axes)

        count = np.prod([shape[a] for a in axes])
        grad_x_hat = grad_output * _broadcast(self.gamma.value, ndim)
        term_mean = grad_x_hat.mean(axis=axes)
        term_cov = (grad_x_hat * x_hat).mean(axis=axes)
        grad_input = (
            grad_x_hat
            - _broadcast(term_mean, ndim)
            - x_hat * _broadcast(term_cov, ndim)
        ) * _broadcast(inv_std, ndim)
        # count participates implicitly through the means above.
        del count
        return grad_input

    def parameters(self) -> List[Parameter]:
        return [self.gamma, self.beta]

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return tuple(input_shape)


class VirtualBatchNorm(Layer):
    """Virtual batch normalization with fixed reference statistics.

    Statistics come from a reference batch captured once via
    :meth:`set_reference`; afterwards every example is normalized with
    those constants, so the layer is element-wise affine and — as ReGAN
    exploits — implementable in the word-line driver with a subtractor
    and a shifter.  With ``shift_only=True`` the divisor is rounded to
    the nearest power of two (the ``2**n`` divisor of Fig. 10 A).
    """

    CACHE_ATTRS = ("_cache",)


    def __init__(
        self,
        channels: int,
        eps: float = 1e-5,
        shift_only: bool = False,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name=name)
        check_positive("channels", channels)
        check_positive("eps", eps)
        self.channels = channels
        self.eps = eps
        self.shift_only = shift_only
        self.gamma = Parameter(np.ones(channels), name=f"{self.name}.gamma")
        self.beta = Parameter(np.zeros(channels), name=f"{self.name}.beta")
        self.ref_mean: Optional[np.ndarray] = None
        self.ref_inv_std: Optional[np.ndarray] = None
        self._cache = None

    def set_reference(self, reference_batch: np.ndarray) -> None:
        """Capture normalization statistics from a reference batch."""
        reference_batch = np.asarray(reference_batch, dtype=np.float64)
        if reference_batch.shape[1] != self.channels:
            raise ValueError(
                f"{self.name}: reference batch has shape "
                f"{reference_batch.shape}, expected {self.channels} channels"
            )
        axes = _channel_axes(reference_batch.ndim)
        self.ref_mean = reference_batch.mean(axis=axes)
        std = np.sqrt(reference_batch.var(axis=axes) + self.eps)
        if self.shift_only:
            # Round the divisor up to the nearest power of two so the
            # division is a right shift: divisor = 2**ceil(log2(std)).
            std = 2.0 ** np.ceil(np.log2(std))
        self.ref_inv_std = 1.0 / std

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if self.ref_mean is None or self.ref_inv_std is None:
            # First batch seen becomes the reference ("chosen once and
            # fixed at the start of training").
            self.set_reference(inputs)
        x_hat = (inputs - _broadcast(self.ref_mean, inputs.ndim)) * _broadcast(
            self.ref_inv_std, inputs.ndim
        )
        self._cache = (x_hat, inputs.ndim, _channel_axes(inputs.ndim))
        return _broadcast(self.gamma.value, inputs.ndim) * x_hat + _broadcast(
            self.beta.value, inputs.ndim
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        x_hat, ndim, axes = self._cache
        grad_output = np.asarray(grad_output, dtype=np.float64)
        self.gamma.grad += (grad_output * x_hat).sum(axis=axes)
        self.beta.grad += grad_output.sum(axis=axes)
        # Reference statistics are constants, so the input gradient is
        # a plain affine scaling (no batch-coupling terms).
        return (
            grad_output
            * _broadcast(self.gamma.value, ndim)
            * _broadcast(self.ref_inv_std, ndim)
        )

    def parameters(self) -> List[Parameter]:
        return [self.gamma, self.beta]

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return tuple(input_shape)
