"""2-D convolution layer — Eq. (1) of the paper, lowered via im2col."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn.engine import MatmulEngine, run_engine
from repro.nn.init import get_initializer, zeros
from repro.nn.layers.base import Layer
from repro.nn.parameter import Parameter
from repro.utils.im2col import col2im, conv_output_size, im2col
from repro.utils.rng import RngLike, new_rng
from repro.utils.validation import check_non_negative, check_positive


class Conv2D(Layer):
    """Convolution layer over NCHW tensors.

    The forward pass lowers the input with ``im2col`` and multiplies by
    a ``(C*kh*kw, out_channels)`` weight matrix — the exact kernel
    mapping of Fig. 4: each kernel cuboid becomes one bit-line column,
    each receptive field one word-line input vector.

    Parameters
    ----------
    in_channels, out_channels:
        ``C_l`` and ``C_{l+1}`` of Eq. (1).
    kernel_size:
        Square kernel extent ``K_x = K_y``.
    stride, pad:
        Spatial stride and symmetric zero padding.
    engine:
        Optional matmul engine (ReRAM crossbar) for the forward pass.
    """

    CACHE_ATTRS = ("_cols", "_input_shape")


    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        pad: int = 0,
        use_bias: bool = True,
        initializer: str = "he_normal",
        engine: Optional[MatmulEngine] = None,
        rng: RngLike = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name=name)
        check_positive("in_channels", in_channels)
        check_positive("out_channels", out_channels)
        check_positive("kernel_size", kernel_size)
        check_positive("stride", stride)
        check_non_negative("pad", pad)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.pad = pad
        self.use_bias = use_bias
        self.engine = engine

        init = get_initializer(initializer)
        rng = new_rng(rng)
        self.weight = Parameter(
            init(
                (out_channels, in_channels, kernel_size, kernel_size),
                rng=rng,
            ),
            name=f"{self.name}.weight",
        )
        self.bias = (
            Parameter(zeros((out_channels,)), name=f"{self.name}.bias")
            if use_bias
            else None
        )
        self._cols: Optional[np.ndarray] = None
        self._input_shape: Optional[Tuple[int, int, int, int]] = None

    # -- helpers ---------------------------------------------------------
    @property
    def weight_matrix_shape(self) -> Tuple[int, int]:
        """Shape of the lowered weight matrix (word lines, bit lines)."""
        k = self.kernel_size
        return (self.in_channels * k * k, self.out_channels)

    def _weight_matrix(self) -> np.ndarray:
        """Lowered ``(C*kh*kw, out_channels)`` view of the kernel."""
        return self.weight.value.reshape(self.out_channels, -1).T

    # -- interface --------------------------------------------------------
    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 4 or inputs.shape[1] != self.in_channels:
            raise ValueError(
                f"{self.name}: expected (batch, {self.in_channels}, H, W), "
                f"got {inputs.shape}"
            )
        batch, _, height, width = inputs.shape
        out_h = conv_output_size(height, self.kernel_size, self.stride, self.pad)
        out_w = conv_output_size(width, self.kernel_size, self.stride, self.pad)

        cols = im2col(inputs, self.kernel_size, self.kernel_size, self.stride, self.pad)
        self._cols = cols
        self._input_shape = inputs.shape

        out = run_engine(self.engine, cols, self._weight_matrix())
        if self.bias is not None:
            out = out + self.bias.value
        out = out.reshape(batch, out_h, out_w, self.out_channels)
        return out.transpose(0, 3, 1, 2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cols is None or self._input_shape is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        batch = grad_output.shape[0]
        # (N, C_out, H, W) -> rows matching the im2col layout.
        grad_rows = grad_output.transpose(0, 2, 3, 1).reshape(
            -1, self.out_channels
        )
        grad_weight_matrix = self._cols.T @ grad_rows
        self.weight.grad += grad_weight_matrix.T.reshape(self.weight.value.shape)
        if self.bias is not None:
            self.bias.grad += grad_rows.sum(axis=0)

        grad_cols = grad_rows @ self._weight_matrix().T
        return col2im(
            grad_cols,
            self._input_shape,
            self.kernel_size,
            self.kernel_size,
            self.stride,
            self.pad,
        )

    def parameters(self) -> List[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if len(input_shape) != 3 or input_shape[0] != self.in_channels:
            raise ValueError(
                f"{self.name}: input shape {input_shape} incompatible with "
                f"{self.in_channels} input channels"
            )
        _, height, width = input_shape
        out_h = conv_output_size(height, self.kernel_size, self.stride, self.pad)
        out_w = conv_output_size(width, self.kernel_size, self.stride, self.pad)
        return (self.out_channels, out_h, out_w)

    def __repr__(self) -> str:
        return (
            f"Conv2D({self.in_channels}->{self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.pad})"
        )
