"""Layer abstract base class for the numpy DNN substrate."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn.parameter import Parameter


class Layer:
    """Base class for all layers.

    A layer is a differentiable function with optional trainable
    parameters.  Subclasses implement :meth:`forward` and
    :meth:`backward`; the backward pass must (a) return the gradient
    with respect to the layer input and (b) *accumulate* parameter
    gradients into ``Parameter.grad``.

    The ``training`` flag switches behaviour for layers such as dropout
    and batch normalization.  Layers cache whatever they need from the
    forward pass; a backward call is only valid after a forward call.
    """

    #: Names of the instance attributes that hold forward-pass caches.
    #: Subclasses list theirs so the pipelined trainer can keep several
    #: inputs in flight: it snapshots the cache after an input's
    #: forward through the layer and restores it just before that
    #: input's backward (other inputs overwrite the live cache in
    #: between — exactly the per-input intermediate-result storage the
    #: paper's memory subarrays provide).
    CACHE_ATTRS: tuple = ()

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name or type(self).__name__

    # -- interface -----------------------------------------------------
    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output for ``inputs``."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Propagate ``grad_output`` back; returns grad w.r.t. input."""
        raise NotImplementedError

    def parameters(self) -> List[Parameter]:
        """Trainable parameters (empty for stateless layers)."""
        return []

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Shape of the output given a (batch-free) input shape.

        Used by the accelerator compiler to size crossbar resources
        without running data through the network.  Shapes exclude the
        batch dimension.
        """
        raise NotImplementedError

    # -- conveniences ---------------------------------------------------
    def __call__(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(inputs, training=training)

    def zero_grad(self) -> None:
        """Reset all parameter gradients."""
        for parameter in self.parameters():
            parameter.zero_grad()

    def parameter_count(self) -> int:
        """Total number of trainable scalars in this layer."""
        return sum(p.size for p in self.parameters())

    def save_cache(self) -> dict:
        """Snapshot the forward-pass cache (see :data:`CACHE_ATTRS`)."""
        return {name: getattr(self, name) for name in self.CACHE_ATTRS}

    def load_cache(self, cache: dict) -> None:
        """Restore a cache snapshot taken by :meth:`save_cache`."""
        for name in self.CACHE_ATTRS:
            setattr(self, name, cache[name])

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class StatelessLayer(Layer):
    """Base class for layers with no trainable parameters."""

    def parameters(self) -> List[Parameter]:
        return []
