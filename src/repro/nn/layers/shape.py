"""Shape-manipulation layers: flatten and reshape.

The last discriminator layer of DCGAN "is the flattened version of the
previous CNN layer and does not require extra computation"
(Sec. III-B-4); the generator's first FC layer reshapes its output into
a spatial tensor.  Both are pure data-movement layers.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.layers.base import StatelessLayer


class Flatten(StatelessLayer):
    """Flatten all non-batch axes into one vector."""

    CACHE_ATTRS = ("_input_shape",)


    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name=name)
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        self._input_shape = inputs.shape
        return inputs.reshape(inputs.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        return np.asarray(grad_output, dtype=np.float64).reshape(
            self._input_shape
        )

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (int(np.prod(input_shape)),)


class Reshape(StatelessLayer):
    """Reshape the non-batch axes to a fixed target shape."""

    CACHE_ATTRS = ("_input_shape",)


    def __init__(
        self, target_shape: Tuple[int, ...], name: Optional[str] = None
    ) -> None:
        super().__init__(name=name)
        if any(extent <= 0 for extent in target_shape):
            raise ValueError(
                f"target_shape must be positive extents, got {target_shape}"
            )
        self.target_shape = tuple(int(extent) for extent in target_shape)
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        expected = int(np.prod(self.target_shape))
        actual = int(np.prod(inputs.shape[1:]))
        if expected != actual:
            raise ValueError(
                f"{self.name}: cannot reshape {inputs.shape[1:]} "
                f"({actual} values) to {self.target_shape} ({expected})"
            )
        self._input_shape = inputs.shape
        return inputs.reshape(inputs.shape[0], *self.target_shape)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        return np.asarray(grad_output, dtype=np.float64).reshape(
            self._input_shape
        )

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        expected = int(np.prod(self.target_shape))
        actual = int(np.prod(input_shape))
        if expected != actual:
            raise ValueError(
                f"{self.name}: cannot reshape {input_shape} to "
                f"{self.target_shape}"
            )
        return self.target_shape
