"""Pooling layers (Sec. II-A: max POOL and average POOL).

PipeLayer realises max pooling with a register that keeps the running
maximum of a value sequence (Sec. III-A-3(c)); functionally that is the
windowed maximum implemented here.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.layers.base import StatelessLayer
from repro.utils.validation import check_positive


def _pool_windows(images: np.ndarray, window: int, stride: int) -> np.ndarray:
    """View an NCHW tensor as ``(N, C, oh, ow, window, window)`` blocks."""
    batch, channels, height, width = images.shape
    out_h = (height - window) // stride + 1
    out_w = (width - window) // stride + 1
    s0, s1, s2, s3 = images.strides
    return np.lib.stride_tricks.as_strided(
        images,
        shape=(batch, channels, out_h, out_w, window, window),
        strides=(s0, s1, s2 * stride, s3 * stride, s2, s3),
        writeable=False,
    )


class MaxPool2D(StatelessLayer):
    """Max pooling over non-overlapping or strided square windows."""

    CACHE_ATTRS = ("_mask", "_input_shape")


    def __init__(
        self,
        window: int,
        stride: Optional[int] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name=name)
        check_positive("window", window)
        self.window = window
        self.stride = stride if stride is not None else window
        check_positive("stride", self.stride)
        self._mask: Optional[np.ndarray] = None
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.ascontiguousarray(np.asarray(inputs, dtype=np.float64))
        if inputs.ndim != 4:
            raise ValueError(f"{self.name}: expected NCHW, got {inputs.shape}")
        blocks = _pool_windows(inputs, self.window, self.stride)
        out = blocks.max(axis=(4, 5))
        # Mask of arg-max positions for routing gradients back.
        flat = blocks.reshape(*blocks.shape[:4], -1)
        argmax = flat.argmax(axis=-1)
        mask = np.zeros_like(flat)
        np.put_along_axis(mask, argmax[..., None], 1.0, axis=-1)
        self._mask = mask.reshape(blocks.shape)
        self._input_shape = inputs.shape
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None or self._input_shape is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        grad_input = np.zeros(self._input_shape)
        batch, channels, out_h, out_w = grad_output.shape
        contributions = self._mask * grad_output[..., None, None]
        for ky in range(self.window):
            for kx in range(self.window):
                grad_input[
                    :,
                    :,
                    ky : ky + self.stride * out_h : self.stride,
                    kx : kx + self.stride * out_w : self.stride,
                ] += contributions[:, :, :, :, ky, kx]
        return grad_input

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        channels, height, width = input_shape
        out_h = (height - self.window) // self.stride + 1
        out_w = (width - self.window) // self.stride + 1
        if out_h <= 0 or out_w <= 0:
            raise ValueError(
                f"{self.name}: window {self.window} too large for "
                f"input {input_shape}"
            )
        return (channels, out_h, out_w)

    def __repr__(self) -> str:
        return f"MaxPool2D(window={self.window}, stride={self.stride})"


class AvgPool2D(StatelessLayer):
    """Average pooling over strided square windows."""

    CACHE_ATTRS = ("_input_shape",)


    def __init__(
        self,
        window: int,
        stride: Optional[int] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name=name)
        check_positive("window", window)
        self.window = window
        self.stride = stride if stride is not None else window
        check_positive("stride", self.stride)
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.ascontiguousarray(np.asarray(inputs, dtype=np.float64))
        if inputs.ndim != 4:
            raise ValueError(f"{self.name}: expected NCHW, got {inputs.shape}")
        blocks = _pool_windows(inputs, self.window, self.stride)
        self._input_shape = inputs.shape
        return blocks.mean(axis=(4, 5))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        grad_input = np.zeros(self._input_shape)
        batch, channels, out_h, out_w = grad_output.shape
        share = grad_output / (self.window * self.window)
        for ky in range(self.window):
            for kx in range(self.window):
                grad_input[
                    :,
                    :,
                    ky : ky + self.stride * out_h : self.stride,
                    kx : kx + self.stride * out_w : self.stride,
                ] += share
        return grad_input

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        channels, height, width = input_shape
        out_h = (height - self.window) // self.stride + 1
        out_w = (width - self.window) // self.stride + 1
        if out_h <= 0 or out_w <= 0:
            raise ValueError(
                f"{self.name}: window {self.window} too large for "
                f"input {input_shape}"
            )
        return (channels, out_h, out_w)

    def __repr__(self) -> str:
        return f"AvgPool2D(window={self.window}, stride={self.stride})"
