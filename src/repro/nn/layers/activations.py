"""Element-wise activation layers.

PipeLayer implements the activation function in peripheral circuitry
after the integrate-and-fire ADC (Sec. III-A-3(c)); ReGAN realises it
with a subtractor plus a configurable look-up table (Fig. 10 B).  The
:class:`LUTActivation` layer models that configurable-LUT realisation
so the accuracy benchmarks can quantify LUT-resolution effects.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.nn.layers.base import StatelessLayer
from repro.utils.validation import check_positive


class _ElementwiseLayer(StatelessLayer):
    """Shared plumbing for stateless element-wise activations."""

    CACHE_ATTRS = ("_cache",)


    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name=name)
        self._cache: Optional[np.ndarray] = None

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return tuple(input_shape)

    def _require_cache(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        return self._cache


class ReLU(_ElementwiseLayer):
    """Rectified linear unit, the paper's default nonlinearity."""

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        self._cache = inputs > 0
        return np.where(self._cache, inputs, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        mask = self._require_cache()
        return np.where(mask, np.asarray(grad_output, dtype=np.float64), 0.0)


class LeakyReLU(_ElementwiseLayer):
    """Leaky ReLU (DCGAN discriminators use slope 0.2)."""

    def __init__(self, slope: float = 0.2, name: Optional[str] = None) -> None:
        super().__init__(name=name)
        if not 0.0 <= slope < 1.0:
            raise ValueError(f"slope must be in [0, 1), got {slope}")
        self.slope = slope

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        self._cache = inputs > 0
        return np.where(self._cache, inputs, self.slope * inputs)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        mask = self._require_cache()
        grad_output = np.asarray(grad_output, dtype=np.float64)
        return np.where(mask, grad_output, self.slope * grad_output)


class Sigmoid(_ElementwiseLayer):
    """Logistic sigmoid (GAN discriminator output)."""

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        out = np.empty_like(inputs)
        positive = inputs >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-inputs[positive]))
        exp_x = np.exp(inputs[~positive])
        out[~positive] = exp_x / (1.0 + exp_x)
        self._cache = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        out = self._require_cache()
        return np.asarray(grad_output, dtype=np.float64) * out * (1.0 - out)


class Tanh(_ElementwiseLayer):
    """Hyperbolic tangent (DCGAN generator output)."""

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.tanh(np.asarray(inputs, dtype=np.float64))
        self._cache = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        out = self._require_cache()
        return np.asarray(grad_output, dtype=np.float64) * (1.0 - out * out)


class LUTActivation(_ElementwiseLayer):
    """Activation realised by a configurable look-up table (Fig. 10 B).

    The input range ``[low, high]`` is divided into ``entries`` bins;
    the LUT stores ``fn`` evaluated at bin centres.  Inputs outside the
    range are clamped, mirroring a saturating analog front end.  The
    backward pass uses the true derivative of ``fn`` computed
    numerically at the *unquantized* input, i.e. a straight-through
    estimate: the digital training path (host-side in the paper) is not
    limited by the inference LUT.
    """

    CACHE_ATTRS = ("_cache", "_inputs")


    def __init__(
        self,
        fn: Callable[[np.ndarray], np.ndarray],
        low: float = -8.0,
        high: float = 8.0,
        entries: int = 256,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name=name)
        check_positive("entries", entries)
        if not high > low:
            raise ValueError(f"high ({high}) must be > low ({low})")
        self.fn = fn
        self.low = low
        self.high = high
        self.entries = entries
        centres = low + (np.arange(entries) + 0.5) * (high - low) / entries
        self.table = np.asarray(fn(centres), dtype=np.float64)
        self._inputs: Optional[np.ndarray] = None

    def _bin_index(self, inputs: np.ndarray) -> np.ndarray:
        scaled = (inputs - self.low) / (self.high - self.low) * self.entries
        return np.clip(scaled.astype(np.int64), 0, self.entries - 1)

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        self._inputs = inputs
        self._cache = inputs  # mark forward-done for _require_cache
        return self.table[self._bin_index(inputs)]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        inputs = self._require_cache()
        eps = 1e-4
        derivative = (self.fn(inputs + eps) - self.fn(inputs - eps)) / (2 * eps)
        return np.asarray(grad_output, dtype=np.float64) * derivative
