"""Fractional-strided (transposed) convolution — the FCNN of Fig. 7.

The generator of a DCGAN "up-samples" with fractional-strided
convolutions.  Mathematically the layer is the adjoint of an ordinary
convolution, which is how it is implemented here (via ``col2im``).  The
paper's Fig. 7(a) observes that the same forward result is obtained by
inserting zeros between input pixels and running a normal convolution —
that equivalent formulation lives in :mod:`repro.core.fcnn` and the two
are cross-checked by tests and by the Fig. 7 benchmark.  Fig. 7(b)'s
observation — the backward pass is a plain strided convolution — is
literal in :meth:`FractionalStridedConv2D.backward`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn.engine import MatmulEngine, run_engine
from repro.nn.init import get_initializer, zeros
from repro.nn.layers.base import Layer
from repro.nn.parameter import Parameter
from repro.utils.im2col import col2im, im2col, insert_zeros, pad_nchw
from repro.utils.rng import RngLike, new_rng
from repro.utils.validation import check_non_negative, check_positive


def conv_transpose_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output extent of a transposed convolution along one axis."""
    check_positive("size", size)
    out = (size - 1) * stride - 2 * pad + kernel
    if out <= 0:
        raise ValueError(
            f"non-positive output extent {out} for size={size}, "
            f"kernel={kernel}, stride={stride}, pad={pad}"
        )
    return out


class FractionalStridedConv2D(Layer):
    """Transposed convolution over NCHW tensors (weight ``(Cin, Cout, k, k)``).

    Output spatial extent is ``(H - 1) * stride - 2 * pad + kernel``.

    Forward: the adjoint of a stride-``stride`` convolution (scatter-add
    via ``col2im``).  Backward w.r.t. the input: an ordinary strided
    convolution of the output gradient — exactly Fig. 7(b).
    """

    CACHE_ATTRS = ("_rows", "_input_shape", "_output_shape")


    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        pad: int = 0,
        use_bias: bool = True,
        initializer: str = "normal",
        engine: Optional[MatmulEngine] = None,
        rng: RngLike = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name=name)
        check_positive("in_channels", in_channels)
        check_positive("out_channels", out_channels)
        check_positive("kernel_size", kernel_size)
        check_positive("stride", stride)
        check_non_negative("pad", pad)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.pad = pad
        self.use_bias = use_bias
        self.engine = engine

        init = get_initializer(initializer)
        rng = new_rng(rng)
        # he_normal/glorot expect conv-layout shapes; sample with the
        # equivalent conv layout then transpose into (Cin, Cout, k, k).
        sampled = init(
            (in_channels, out_channels, kernel_size, kernel_size), rng=rng
        ) if initializer == "normal" else init(
            (out_channels, in_channels, kernel_size, kernel_size), rng=rng
        ).transpose(1, 0, 2, 3)
        self.weight = Parameter(sampled, name=f"{self.name}.weight")
        self.bias = (
            Parameter(zeros((out_channels,)), name=f"{self.name}.bias")
            if use_bias
            else None
        )
        self._rows: Optional[np.ndarray] = None
        self._input_shape: Optional[Tuple[int, int, int, int]] = None
        self._output_shape: Optional[Tuple[int, int, int, int]] = None

    # -- helpers ---------------------------------------------------------
    def _weight_matrix(self) -> np.ndarray:
        """``(Cin, Cout*k*k)`` view used by the adjoint formulation."""
        return self.weight.value.reshape(self.in_channels, -1)

    def _equivalent_conv_matrix(self) -> np.ndarray:
        """Lowered ``(Cin*k*k, Cout)`` matrix of the Fig. 7(a) mapping.

        The spatially flipped kernel, channel roles swapped — the
        matrix ReGAN programs into the crossbars so the FCNN layer runs
        as an ordinary convolution over the zero-inserted input.
        """
        flipped = self.weight.value[:, :, ::-1, ::-1].transpose(1, 0, 2, 3)
        return flipped.reshape(self.out_channels, -1).T

    def _forward_via_crossbar(self, inputs: np.ndarray) -> np.ndarray:
        """Fig. 7(a) evaluation: zero-insert, pad, conv on the engine."""
        batch = inputs.shape[0]
        _, _, out_h, out_w = self._output_shape
        extended = pad_nchw(
            insert_zeros(inputs, self.stride),
            self.kernel_size - 1 - self.pad,
        )
        cols = im2col(extended, self.kernel_size, self.kernel_size)
        out = run_engine(self.engine, cols, self._equivalent_conv_matrix())
        out = out.reshape(batch, out_h, out_w, self.out_channels)
        return out.transpose(0, 3, 1, 2)

    # -- interface --------------------------------------------------------
    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 4 or inputs.shape[1] != self.in_channels:
            raise ValueError(
                f"{self.name}: expected (batch, {self.in_channels}, H, W), "
                f"got {inputs.shape}"
            )
        batch, _, height, width = inputs.shape
        out_h = conv_transpose_output_size(
            height, self.kernel_size, self.stride, self.pad
        )
        out_w = conv_transpose_output_size(
            width, self.kernel_size, self.stride, self.pad
        )
        rows = inputs.transpose(0, 2, 3, 1).reshape(-1, self.in_channels)
        self._rows = rows
        self._input_shape = inputs.shape
        self._output_shape = (batch, self.out_channels, out_h, out_w)

        if self.engine is not None:
            if self.pad > self.kernel_size - 1:
                raise ValueError(
                    f"{self.name}: crossbar (zero-insertion) mapping "
                    f"requires pad <= kernel - 1"
                )
            out = self._forward_via_crossbar(inputs)
        else:
            cols = rows @ self._weight_matrix()
            out = col2im(
                cols,
                self._output_shape,
                self.kernel_size,
                self.kernel_size,
                self.stride,
                self.pad,
            )
        if self.bias is not None:
            out = out + self.bias.value[None, :, None, None]
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._rows is None or self._input_shape is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        if grad_output.shape != self._output_shape:
            raise ValueError(
                f"{self.name}: grad shape {grad_output.shape} != "
                f"forward output shape {self._output_shape}"
            )
        batch, _, height, width = self._input_shape

        # Fig. 7(b): error back-propagation is a strided convolution of
        # the output gradient with the (shared) kernel.
        grad_cols = im2col(
            grad_output,
            self.kernel_size,
            self.kernel_size,
            self.stride,
            self.pad,
        )
        grad_rows = grad_cols @ self._weight_matrix().T
        grad_input = grad_rows.reshape(batch, height, width, self.in_channels)
        grad_input = grad_input.transpose(0, 3, 1, 2)

        self.weight.grad += (self._rows.T @ grad_cols).reshape(
            self.weight.value.shape
        )
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=(0, 2, 3))
        return grad_input

    def parameters(self) -> List[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if len(input_shape) != 3 or input_shape[0] != self.in_channels:
            raise ValueError(
                f"{self.name}: input shape {input_shape} incompatible with "
                f"{self.in_channels} input channels"
            )
        _, height, width = input_shape
        out_h = conv_transpose_output_size(
            height, self.kernel_size, self.stride, self.pad
        )
        out_w = conv_transpose_output_size(
            width, self.kernel_size, self.stride, self.pad
        )
        return (self.out_channels, out_h, out_w)

    def __repr__(self) -> str:
        return (
            f"FractionalStridedConv2D({self.in_channels}->"
            f"{self.out_channels}, k={self.kernel_size}, s={self.stride}, "
            f"p={self.pad})"
        )
