"""Fully-connected (inner product) layer — Eq. (2) of the paper."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn.engine import MatmulEngine, run_engine
from repro.nn.init import get_initializer, zeros
from repro.nn.layers.base import Layer
from repro.nn.parameter import Parameter
from repro.utils.rng import RngLike, new_rng
from repro.utils.validation import check_positive


class Dense(Layer):
    """Inner-product layer: ``y = x W + b``.

    Weight shape is ``(in_features, out_features)`` so that the weight
    matrix maps directly onto a crossbar: word lines carry ``x``
    (``in_features`` of them) and each bit line holds one output column
    — the mapping of Fig. 3(a, b).

    Parameters
    ----------
    in_features, out_features:
        Vector sizes ``m`` and ``n`` of Eq. (2).
    use_bias:
        Include the additive bias vector ``b``.
    initializer:
        Name of a weight initializer from :mod:`repro.nn.init`.
    engine:
        Optional :class:`~repro.nn.engine.MatmulEngine` used for the
        forward matmul (e.g. the ReRAM crossbar simulator).  Backward
        always uses exact arithmetic: PipeLayer computes weight updates
        digitally from buffered activations.
    """

    CACHE_ATTRS = ("_inputs",)


    def __init__(
        self,
        in_features: int,
        out_features: int,
        use_bias: bool = True,
        initializer: str = "he_normal",
        engine: Optional[MatmulEngine] = None,
        rng: RngLike = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name=name)
        check_positive("in_features", in_features)
        check_positive("out_features", out_features)
        self.in_features = in_features
        self.out_features = out_features
        self.use_bias = use_bias
        self.engine = engine

        init = get_initializer(initializer)
        rng = new_rng(rng)
        self.weight = Parameter(
            init((in_features, out_features), rng=rng),
            name=f"{self.name}.weight",
        )
        self.bias = (
            Parameter(zeros((out_features,)), name=f"{self.name}.bias")
            if use_bias
            else None
        )
        self._inputs: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 2 or inputs.shape[1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected input (batch, {self.in_features}), "
                f"got {inputs.shape}"
            )
        self._inputs = inputs
        outputs = run_engine(self.engine, inputs, self.weight.value)
        if self.bias is not None:
            outputs = outputs + self.bias.value
        return outputs

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._inputs is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        self.weight.grad += self._inputs.T @ grad_output
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.value.T

    def parameters(self) -> List[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        flat = int(np.prod(input_shape))
        if flat != self.in_features:
            raise ValueError(
                f"{self.name}: input shape {input_shape} has {flat} features,"
                f" expected {self.in_features}"
            )
        return (self.out_features,)

    def __repr__(self) -> str:
        return (
            f"Dense({self.in_features}->{self.out_features}, "
            f"bias={self.use_bias})"
        )
