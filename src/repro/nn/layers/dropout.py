"""Inverted dropout layer (training-time regularisation)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.layers.base import StatelessLayer
from repro.utils.rng import RngLike, new_rng


class Dropout(StatelessLayer):
    """Inverted dropout: zero a fraction ``rate`` of activations.

    Scaling by ``1 / (1 - rate)`` at training time keeps the expected
    activation unchanged, so inference is a no-op.
    """

    CACHE_ATTRS = ("_mask",)


    def __init__(
        self, rate: float, rng: RngLike = None, name: Optional[str] = None
    ) -> None:
        super().__init__(name=name)
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = new_rng(rng)
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if not training or self.rate == 0.0:
            self._mask = None
            return inputs
        keep = 1.0 - self.rate
        self._mask = (
            self._rng.random(inputs.shape) < keep
        ).astype(np.float64) / keep
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_output = np.asarray(grad_output, dtype=np.float64)
        if self._mask is None:
            return grad_output
        return grad_output * self._mask

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return tuple(input_shape)
