"""Loss functions with analytic gradients.

The GAN losses follow the paper's description (Sec. III-B-2): the
discriminator is trained with label '1' on real samples and '0' on
generated ones; the generator is trained with the *inaccurate* label
'1' on generated samples (the non-saturating GAN loss).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


class Loss:
    """Base class: ``forward`` returns a scalar, ``backward`` the gradient."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss w.r.t. the predictions."""
        raise NotImplementedError

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)


class MeanSquaredError(Loss):
    """Mean squared error over all elements."""

    def __init__(self) -> None:
        self._diff: np.ndarray | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: {predictions.shape} vs {targets.shape}"
            )
        self._diff = predictions - targets
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward before forward")
        return 2.0 * self._diff / self._diff.size


class SoftmaxCrossEntropy(Loss):
    """Softmax + cross-entropy over integer class labels.

    ``predictions`` are raw logits ``(batch, classes)``; ``targets`` are
    integer labels ``(batch,)``.  The combined gradient is the usual
    numerically-stable ``softmax - one_hot``.
    """

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._targets: np.ndarray | None = None

    @staticmethod
    def softmax(logits: np.ndarray) -> np.ndarray:
        """Numerically stable softmax along the last axis."""
        logits = np.asarray(logits, dtype=np.float64)
        shifted = logits - logits.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=-1, keepdims=True)

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets)
        if predictions.ndim != 2:
            raise ValueError(
                f"logits must be (batch, classes), got {predictions.shape}"
            )
        if targets.shape != (predictions.shape[0],):
            raise ValueError(
                f"targets must be (batch,), got {targets.shape}"
            )
        if np.any((targets < 0) | (targets >= predictions.shape[1])):
            raise ValueError("targets contain out-of-range class labels")
        self._probs = self.softmax(predictions)
        self._targets = targets.astype(np.int64)
        batch = predictions.shape[0]
        picked = self._probs[np.arange(batch), self._targets]
        return float(-np.mean(np.log(np.clip(picked, 1e-12, None))))

    def backward(self) -> np.ndarray:
        if self._probs is None or self._targets is None:
            raise RuntimeError("backward before forward")
        batch = self._probs.shape[0]
        grad = self._probs.copy()
        grad[np.arange(batch), self._targets] -= 1.0
        return grad / batch


class BinaryCrossEntropyWithLogits(Loss):
    """Sigmoid + binary cross-entropy on raw logits.

    ``predictions`` are logits of any shape; ``targets`` are the same
    shape with values in ``[0, 1]`` (the paper's '1'/'0' labels).  The
    fused formulation is numerically stable for large |logit|.
    """

    def __init__(self) -> None:
        self._logits: np.ndarray | None = None
        self._targets: np.ndarray | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        logits = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if logits.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: {logits.shape} vs {targets.shape}"
            )
        if np.any((targets < 0) | (targets > 1)):
            raise ValueError("targets must lie in [0, 1]")
        self._logits = logits
        self._targets = targets
        # max(x, 0) - x*t + log(1 + exp(-|x|))
        loss = (
            np.maximum(logits, 0.0)
            - logits * targets
            + np.log1p(np.exp(-np.abs(logits)))
        )
        return float(np.mean(loss))

    def backward(self) -> np.ndarray:
        if self._logits is None or self._targets is None:
            raise RuntimeError("backward before forward")
        probs = _stable_sigmoid(self._logits)
        return (probs - self._targets) / self._logits.size


def _stable_sigmoid(values: np.ndarray) -> np.ndarray:
    """Overflow-safe logistic sigmoid."""
    out = np.empty_like(values)
    positive = values >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-values[positive]))
    exp_v = np.exp(values[~positive])
    out[~positive] = exp_v / (1.0 + exp_v)
    return out


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 classification accuracy from logits and integer labels."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2 or labels.shape != (logits.shape[0],):
        raise ValueError(
            f"incompatible shapes: logits {logits.shape}, labels {labels.shape}"
        )
    if logits.shape[0] == 0:
        raise ValueError("cannot compute accuracy on an empty batch")
    return float(np.mean(logits.argmax(axis=1) == labels))
