"""Supervised training loop with the paper's batch-update semantics.

Weight updates are applied once per batch — gradients from the whole
batch accumulate first (Sec. III-A-2: "The weight updates due to each
input are stored and only applied at the end of a batch").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Tuple

import numpy as np

from repro.nn.losses import Loss, SoftmaxCrossEntropy, accuracy
from repro.nn.network import Sequential
from repro.nn.optim import Optimizer
from repro.telemetry import NULL_COLLECTOR, TelemetryLike


@dataclass
class TrainHistory:
    """Per-batch loss trace plus per-epoch evaluation results."""

    batch_losses: List[float] = field(default_factory=list)
    epoch_train_accuracy: List[float] = field(default_factory=list)
    epoch_eval_accuracy: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        if not self.batch_losses:
            raise ValueError("no batches recorded")
        return self.batch_losses[-1]

    def mean_loss(self, last: int = 10) -> float:
        """Mean loss over the last ``last`` batches."""
        if not self.batch_losses:
            raise ValueError("no batches recorded")
        return float(np.mean(self.batch_losses[-last:]))


def iterate_batches(
    images: np.ndarray,
    labels: np.ndarray,
    batch_size: int,
    rng: Optional[np.random.Generator] = None,
) -> Iterable[Tuple[np.ndarray, np.ndarray]]:
    """Yield (inputs, labels) batches, optionally shuffled.

    The final short batch is kept (the pipeline model accounts for
    partial batches separately).
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be > 0, got {batch_size}")
    count = images.shape[0]
    if labels.shape[0] != count:
        raise ValueError(
            f"images ({count}) and labels ({labels.shape[0]}) disagree"
        )
    order = np.arange(count)
    if rng is not None:
        rng.shuffle(order)
    for start in range(0, count, batch_size):
        index = order[start : start + batch_size]
        yield images[index], labels[index]


def train_classifier(
    network: Sequential,
    optimizer: Optimizer,
    images: np.ndarray,
    labels: np.ndarray,
    epochs: int = 1,
    batch_size: int = 32,
    loss: Optional[Loss] = None,
    eval_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    rng: Optional[np.random.Generator] = None,
    on_batch: Optional[Callable[[int, float], None]] = None,
    collector: Optional[TelemetryLike] = None,
) -> TrainHistory:
    """Train a classifier with batch-synchronous updates.

    Parameters
    ----------
    network, optimizer:
        The model and its optimizer (which must manage the model's
        parameters).
    images, labels:
        Full training set, NCHW (or flat) images with integer labels.
    eval_data:
        Optional held-out ``(images, labels)`` evaluated per epoch.
    on_batch:
        Optional callback ``(batch_index, loss)`` for progress hooks.
    collector:
        Optional :class:`repro.telemetry.Collector` (or scoped view):
        records ``epochs``/``batches``/``samples`` counters and a
        per-epoch ``epoch[<i>]`` timing span.
    """
    loss = loss or SoftmaxCrossEntropy()
    tel = collector if collector is not None else NULL_COLLECTOR
    history = TrainHistory()
    batch_index = 0
    for epoch in range(epochs):
        with tel.span(f"epoch[{epoch}]"):
            for batch_images, batch_labels in iterate_batches(
                images, labels, batch_size, rng=rng
            ):
                network.zero_grad()
                value = network.train_step(batch_images, batch_labels, loss)
                optimizer.step()
                history.batch_losses.append(value)
                tel.count("batches", 1)
                tel.count("samples", int(batch_images.shape[0]))
                if on_batch is not None:
                    on_batch(batch_index, value)
                batch_index += 1
            with tel.span(f"epoch[{epoch}]/evaluate"):
                history.epoch_train_accuracy.append(
                    evaluate_classifier(network, images, labels, batch_size)
                )
                if eval_data is not None:
                    history.epoch_eval_accuracy.append(
                        evaluate_classifier(network, *eval_data, batch_size)
                    )
        tel.count("epochs", 1)
    return history


def evaluate_classifier(
    network: Sequential,
    images: np.ndarray,
    labels: np.ndarray,
    batch_size: int = 256,
) -> float:
    """Top-1 accuracy of ``network`` on a labelled set (inference mode)."""
    if images.shape[0] == 0:
        raise ValueError("cannot evaluate on an empty set")
    correct = 0
    for batch_images, batch_labels in iterate_batches(
        images, labels, batch_size
    ):
        logits = network.forward(batch_images, training=False)
        correct += int(
            round(accuracy(logits, batch_labels) * batch_labels.shape[0])
        )
    return correct / images.shape[0]
