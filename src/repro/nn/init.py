"""Weight initializers for the numpy DNN substrate."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import RngLike, new_rng
from repro.utils.validation import check_choice


def fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute (fan_in, fan_out) for a weight tensor.

    Dense weights are ``(in, out)``; convolution weights are
    ``(out_channels, in_channels, kh, kw)``.
    """
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:
        out_channels, in_channels, kernel_h, kernel_w = shape
        receptive = kernel_h * kernel_w
        return in_channels * receptive, out_channels * receptive
    raise ValueError(f"unsupported weight shape {shape}")


def glorot_uniform(shape: Tuple[int, ...], rng: RngLike = None) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    rng = new_rng(rng)
    fan_in, fan_out = fan_in_out(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: Tuple[int, ...], rng: RngLike = None) -> np.ndarray:
    """He/Kaiming normal initialization (suits ReLU networks)."""
    rng = new_rng(rng)
    fan_in, _ = fan_in_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def normal(shape: Tuple[int, ...], std: float = 0.02, rng: RngLike = None) -> np.ndarray:
    """Plain normal initialization (DCGAN uses std=0.02)."""
    rng = new_rng(rng)
    return rng.normal(0.0, std, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialization (biases)."""
    return np.zeros(shape)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    """All-one initialization (batch-norm scale)."""
    return np.ones(shape)


_INITIALIZERS = {
    "glorot_uniform": glorot_uniform,
    "he_normal": he_normal,
    "normal": normal,
}


def get_initializer(name: str):
    """Look up an initializer function by name."""
    check_choice("initializer", name, list(_INITIALIZERS))
    return _INITIALIZERS[name]
