"""repro — reproduction of "ReRAM-based Accelerator for Deep Learning".

(B. Li, L. Song, F. Chen, X. Qian, Y. Chen, H. Li — DATE 2018.)

Subpackages
-----------
``repro.nn``
    From-scratch numpy DNN substrate: layers (conv / pool / FC /
    fractional-strided conv / batch norm), losses, optimizers, full
    training, and the DCGAN generator/discriminator pair.
``repro.xbar``
    ReRAM crossbar functional simulator: device model, weight mapping
    (differential pairs, bit slicing), spike-coded input drive,
    integrate-and-fire ADC, tiled arrays, and a drop-in matmul engine.
``repro.arch``
    Cost models: technology parameter tables, per-component energy,
    bank/subarray organisation, and the GTX 1080 roofline baseline.
``repro.core``
    The paper's contribution: PipeLayer data mapping and inter-layer
    pipeline, ReGAN's FCNN mapping and GAN training pipelines (with
    spatial parallelism and computation sharing), schedule simulator,
    accelerator models, and the Table I estimator.
``repro.workloads``
    Shape-faithful specs of the evaluation networks (MNIST CNN,
    AlexNet, VGG-16, four DCGANs).
``repro.datasets``
    Deterministic synthetic stand-ins for the paper's datasets.
``repro.telemetry``
    Hierarchical counters and timing spans threaded through the engine,
    pipeline, training, and reliability layers (zero overhead when
    disabled; exports JSON and Chrome-trace).

``repro.api``
    The curated facade: :class:`~repro.api.Simulator` wires workload
    building, crossbar deployment, inference/training, and the Table I
    estimator into one object (re-exported here).

Quick start
-----------
>>> from repro import Simulator
>>> row = Simulator.table1()["pipelayer"]
>>> row.speedup > 1.0
True
"""

__version__ = "1.0.0"

from repro import arch, core, datasets, nn, telemetry, workloads, xbar
from repro.api import InferenceResult, Simulator, TrainResult
from repro.telemetry import Collector

__all__ = [
    "arch",
    "core",
    "datasets",
    "nn",
    "telemetry",
    "workloads",
    "xbar",
    "Simulator",
    "InferenceResult",
    "TrainResult",
    "Collector",
    "__version__",
]
