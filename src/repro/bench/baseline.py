"""Committed benchmark baselines and tolerance-band comparison.

A baseline is one JSON file per bench under ``benchmarks/baselines/``:

.. code-block:: json

    {
      "schema_version": 1,
      "kind": "bench_baseline",
      "bench": "fig5_pipeline",
      "metrics": {
        "fig5/analytic/speedup_b128": {"value": 13.85, "rel_tol": 1e-6}
      }
    }

The tracked metrics are the *deterministic* ``metrics`` maps of the
bench documents (speedups, cycle counts, accuracies under pinned
seeds) — never wall-clock numbers, so the bands can be tight and a
same-platform rerun must land inside them exactly.  ``repro bench``
compares every run against the committed baseline and exits non-zero
when a metric leaves its band; ``repro bench --update-baselines``
rewrites the files from the current run after an intentional change.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.telemetry import SCHEMA_VERSION

#: Default relative tolerance stamped on generated baselines: metrics
#: are deterministic, so the band only absorbs float-accumulation
#: differences across interpreter/numpy versions.
DEFAULT_REL_TOL = 1e-6


@dataclass(frozen=True)
class Deviation:
    """One metric's comparison against its baseline band."""

    bench: str
    metric: str
    expected: Optional[float]
    actual: Optional[float]
    rel_tol: float
    abs_tol: float
    status: str  # "ok" | "regression" | "missing"

    def describe(self) -> str:
        if self.status == "missing":
            return (
                f"{self.bench}:{self.metric}: baseline expects "
                f"{self.expected!r} but the run did not produce it"
            )
        return (
            f"{self.bench}:{self.metric}: {self.actual!r} outside "
            f"band around {self.expected!r} "
            f"(rel_tol={self.rel_tol:g}, abs_tol={self.abs_tol:g})"
        )


def baseline_path(baseline_dir: Path, bench: str) -> Path:
    return Path(baseline_dir) / f"{bench}.json"


def load_baseline(baseline_dir: Path, bench: str) -> Optional[Dict[str, Any]]:
    """The committed baseline for ``bench``, or ``None`` if absent."""
    path = baseline_path(baseline_dir, bench)
    if not path.is_file():
        return None
    document = json.loads(path.read_text())
    validate_baseline(document)
    return document


def validate_baseline(document: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``document`` is a valid baseline."""
    for field in ("schema_version", "kind", "bench", "metrics"):
        if field not in document:
            raise ValueError(f"baseline missing field {field!r}")
    if document["kind"] != "bench_baseline":
        raise ValueError(
            f"baseline kind {document['kind']!r} != 'bench_baseline'"
        )
    if document["schema_version"] != SCHEMA_VERSION:
        raise ValueError(
            f"baseline schema_version {document['schema_version']!r} != "
            f"{SCHEMA_VERSION}"
        )
    for name, band in document["metrics"].items():
        if not isinstance(band, dict) or "value" not in band:
            raise ValueError(
                f"baseline metric {name!r} must be a dict with 'value'"
            )


def compare_metrics(
    bench: str,
    metrics: Dict[str, float],
    baseline: Dict[str, Any],
) -> List[Deviation]:
    """Every baseline metric checked against the run's ``metrics``.

    Metrics present in the run but absent from the baseline are
    ignored (new metrics are allowed to appear before the baseline is
    refreshed); metrics the baseline expects but the run lacks are
    reported as ``missing`` regressions.
    """
    deviations: List[Deviation] = []
    for name, band in sorted(baseline["metrics"].items()):
        expected = float(band["value"])
        rel_tol = float(band.get("rel_tol", DEFAULT_REL_TOL))
        abs_tol = float(band.get("abs_tol", 0.0))
        if name not in metrics:
            deviations.append(
                Deviation(bench, name, expected, None, rel_tol, abs_tol,
                          "missing")
            )
            continue
        actual = float(metrics[name])
        ok = math.isclose(
            actual, expected, rel_tol=rel_tol, abs_tol=abs_tol
        )
        deviations.append(
            Deviation(
                bench, name, expected, actual, rel_tol, abs_tol,
                "ok" if ok else "regression",
            )
        )
    return deviations


def write_baseline(
    baseline_dir: Path,
    bench: str,
    metrics: Dict[str, float],
    rel_tol: float = DEFAULT_REL_TOL,
) -> Path:
    """Write (or rewrite) one bench's baseline from measured metrics."""
    baseline_dir = Path(baseline_dir)
    baseline_dir.mkdir(parents=True, exist_ok=True)
    document = {
        "schema_version": SCHEMA_VERSION,
        "kind": "bench_baseline",
        "bench": bench,
        "metrics": {
            name: {"value": value, "rel_tol": rel_tol}
            for name, value in sorted(metrics.items())
        },
    }
    validate_baseline(document)
    path = baseline_path(baseline_dir, bench)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path
