"""Unified benchmark runner, registry, and regression gating.

The 16 ``benchmarks/bench_*.py`` modules regenerate the paper's
figures and tables; this package runs them as one suite:

* :func:`register` / :func:`discover` — the registry every bench
  module joins (``@register(suite="quick")`` above its entry point);
* :func:`run_suite` — execute a suite tier, capture each bench's
  validated documents and deterministic metrics, append the run to
  ``BENCH_trajectory.json``, and compare against the committed
  baselines in ``benchmarks/baselines/``;
* :mod:`repro.bench.baseline` — tolerance-band comparison and
  baseline (re)generation.

CLI::

    repro bench --suite quick            # run + gate on baselines
    repro bench --suite full --filter 'fig*'
    repro bench --list                   # show the registry
    repro bench --update-baselines       # refresh after a change

``repro bench`` exits non-zero when a bench fails or any deterministic
metric leaves its baseline tolerance band — the regression gate CI
runs on every push.
"""

from repro.bench.baseline import (
    DEFAULT_REL_TOL,
    Deviation,
    compare_metrics,
    load_baseline,
    validate_baseline,
    write_baseline,
)
from repro.bench.registry import (
    SUITES,
    BenchSpec,
    clear_registry,
    default_bench_dir,
    discover,
    register,
    registered,
)
from repro.bench.runner import (
    BenchmarkShim,
    BenchOutcome,
    SuiteRun,
    append_trajectory,
    load_trajectory,
    record_documents,
    run_suite,
)

__all__ = [
    "BenchOutcome",
    "BenchSpec",
    "BenchmarkShim",
    "DEFAULT_REL_TOL",
    "Deviation",
    "SUITES",
    "SuiteRun",
    "append_trajectory",
    "clear_registry",
    "compare_metrics",
    "default_bench_dir",
    "discover",
    "load_baseline",
    "load_trajectory",
    "record_documents",
    "register",
    "registered",
    "run_suite",
    "validate_baseline",
    "write_baseline",
]
