"""Unified benchmark runner behind ``repro bench``.

Executes the registered benchmarks (:mod:`repro.bench.registry`) in
one process, without pytest:

* a :class:`BenchmarkShim` stands in for the pytest-benchmark fixture
  (calls the measured function once and times it);
* every validated bench document a bench records through
  ``benchmarks._common.record_json`` is captured for the run (see
  :func:`record_documents`), and the documents' deterministic
  ``metrics`` maps become the run's comparable numbers;
* each run appends a record to the top-level ``BENCH_trajectory.json``
  history, so the perf trajectory of the repository is machine
  readable across commits;
* the run is compared against the committed baselines
  (:mod:`repro.bench.baseline`); any out-of-band metric or failed
  bench makes :meth:`SuiteRun.exit_code` non-zero.
"""

from __future__ import annotations

import fnmatch
import json
import logging
import time
import traceback
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.bench import baseline as baseline_mod
from repro.bench.registry import BenchSpec, discover
from repro.sweep import SweepCell, run_sweep
from repro.telemetry import SCHEMA_VERSION, validate_bench_document
from repro.utils.io import exclusive_lock, write_json_atomic

_log = logging.getLogger("repro.bench")

#: Default location of the run-history file, relative to the
#: benchmark directory's parent (the repository root in a checkout).
TRAJECTORY_NAME = "BENCH_trajectory.json"


class BenchmarkShim:
    """Minimal stand-in for the pytest-benchmark fixture.

    Benches call ``benchmark(fn, *args)`` (or ``benchmark.pedantic``)
    and use the return value; under the unified runner the function
    runs exactly once and its wall time is kept on the shim.
    """

    def __init__(self) -> None:
        self.timings: List[float] = []

    def __call__(self, fn: Callable, *args: Any, **kwargs: Any) -> Any:
        # Bench timing is wall-clock by design; it is reported as
        # wall_time_s fields only and never enters the deterministic
        # metrics maps gated against baselines (see _document_metrics).
        start = time.perf_counter()  # repro: noqa[DET001]
        result = fn(*args, **kwargs)
        self.timings.append(time.perf_counter() - start)  # repro: noqa[DET001]
        return result

    def pedantic(
        self,
        fn: Callable,
        args: Sequence[Any] = (),
        kwargs: Optional[Dict[str, Any]] = None,
        **_: Any,
    ) -> Any:
        return self(fn, *args, **(kwargs or {}))


# -- document capture -------------------------------------------------------
_ACTIVE_DOCUMENTS: Optional[List[Dict[str, Any]]] = None


def record_documents(name: str, documents: List[Dict[str, Any]]) -> None:
    """Capture hook called by ``benchmarks._common.record_json``.

    Outside a runner execution this is a no-op (pytest runs of the
    bench modules are unaffected); inside, every recorded bench
    document joins the currently executing bench's outcome.
    """
    if _ACTIVE_DOCUMENTS is not None:
        _ACTIVE_DOCUMENTS.extend(documents)


#: Metric-name fragments that mark a *wall-clock* measurement.  Wall
#: time is host noise, so gating it against committed baselines would
#: make CI flaky; such keys live in ``wall_time_s`` fields instead and
#: are dropped (loudly) if a bench records them as metrics.
_WALL_CLOCK_METRICS = ("wall_time", "wall_clock", "elapsed_s")


def _document_metrics(documents: List[Dict[str, Any]]) -> Dict[str, float]:
    """Flatten the deterministic ``metrics`` maps of bench documents.

    Keys are ``<workload>/<backend>/<metric>`` so one bench may record
    several configurations without collisions.  Wall-clock-looking
    metric names are excluded: only deterministic model outputs may be
    baseline-gated (see :data:`_WALL_CLOCK_METRICS`).
    """
    metrics: Dict[str, float] = {}
    for document in documents:
        prefix = f"{document['workload']}/{document['backend']}"
        for name, value in (document.get("metrics") or {}).items():
            if any(marker in name for marker in _WALL_CLOCK_METRICS):
                _log.warning(
                    "metric %s/%s looks like a wall-clock measurement; "
                    "dropping it from the baseline-gated metrics "
                    "(record it as wall_time_s instead)", prefix, name,
                )
                continue
            key = f"{prefix}/{name}"
            if key in metrics and metrics[key] != value:
                _log.warning(
                    "metric %s recorded twice with differing values "
                    "(%r then %r); keeping the last", key,
                    metrics[key], value,
                )
            metrics[key] = float(value)
    return metrics


@dataclass
class BenchOutcome:
    """One bench's execution inside a suite run."""

    name: str
    suite: str
    status: str  # "ok" | "failed"
    wall_time_s: float
    error: Optional[str] = None
    documents: List[Dict[str, Any]] = field(default_factory=list)
    metrics: Dict[str, float] = field(default_factory=dict)
    baseline_status: str = "no-baseline"  # | "ok" | "regression"
    deviations: List[baseline_mod.Deviation] = field(default_factory=list)

    @property
    def regressions(self) -> List[baseline_mod.Deviation]:
        return [d for d in self.deviations if d.status != "ok"]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "suite": self.suite,
            "status": self.status,
            "error": self.error,
            "wall_time_s": self.wall_time_s,
            "metrics": dict(sorted(self.metrics.items())),
            "document_count": len(self.documents),
            "baseline_status": self.baseline_status,
            "regressions": [d.describe() for d in self.regressions],
        }


@dataclass
class SuiteRun:
    """The outcome of one ``repro bench`` invocation."""

    suite: str
    filter: Optional[str]
    benches: List[BenchOutcome]
    wall_time_s: float

    @property
    def failure_count(self) -> int:
        return sum(1 for b in self.benches if b.status != "ok")

    @property
    def regression_count(self) -> int:
        return sum(len(b.regressions) for b in self.benches)

    @property
    def exit_code(self) -> int:
        return 1 if (self.failure_count or self.regression_count) else 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": "bench_run",
            "suite": self.suite,
            "filter": self.filter,
            "wall_time_s": self.wall_time_s,
            "benches": [b.to_dict() for b in self.benches],
            "failure_count": self.failure_count,
            "regression_count": self.regression_count,
            "exit_code": self.exit_code,
        }

    def summary(self) -> str:
        lines = [
            f"suite {self.suite!r}: {len(self.benches)} benches in "
            f"{self.wall_time_s:.2f} s, {self.failure_count} failed, "
            f"{self.regression_count} regression(s)"
        ]
        width = max((len(b.name) for b in self.benches), default=0)
        for bench in self.benches:
            lines.append(
                f"  {bench.name:<{width}s}  {bench.status:<6s} "
                f"{bench.wall_time_s:>8.3f} s  "
                f"{len(bench.metrics):>3d} metrics  "
                f"baseline {bench.baseline_status}"
            )
            if bench.error:
                first_line = bench.error.strip().splitlines()[-1]
                lines.append(f"    {first_line}")
            for deviation in bench.regressions:
                lines.append(f"    REGRESSION {deviation.describe()}")
        return "\n".join(lines)


def _run_one(spec: BenchSpec) -> BenchOutcome:
    """Execute one registered bench, capturing documents and errors."""
    global _ACTIVE_DOCUMENTS
    documents: List[Dict[str, Any]] = []
    _ACTIVE_DOCUMENTS = documents
    _log.info("bench %s: starting (suite=%s)", spec.name, spec.suite)
    start = time.perf_counter()  # repro: noqa[DET001] -- wall_time_s only
    status, error = "ok", None
    try:
        if spec.wants_fixture:
            spec.func(BenchmarkShim())
        else:
            spec.func()
        for document in documents:
            validate_bench_document(document)
    except Exception:
        status = "failed"
        error = traceback.format_exc()
        _log.warning("bench %s failed:\n%s", spec.name, error)
    finally:
        _ACTIVE_DOCUMENTS = None
    wall_time_s = time.perf_counter() - start  # repro: noqa[DET001]
    outcome = BenchOutcome(
        name=spec.name,
        suite=spec.suite,
        status=status,
        wall_time_s=wall_time_s,
        error=error,
        documents=documents,
        metrics=_document_metrics(documents) if status == "ok" else {},
    )
    _log.info(
        "bench %s: %s in %.3f s (%d metrics)",
        spec.name, status, wall_time_s, len(outcome.metrics),
    )
    return outcome


def run_bench_cell(spec: Dict[str, Any], collector: Any) -> Dict[str, Any]:
    """Sweep cell function for one registered bench (kind ``"bench"``).

    The spec names the bench and its benchmark directory; the worker
    re-discovers the registry (bench functions are code, not data — a
    name travels across the process boundary, a closure does not) and
    executes the one matching bench.  The returned record is the
    JSON-able core of a :class:`BenchOutcome`; baseline gating happens
    in the submitting process, which holds the baseline directory.

    Bench results include wall-clock timings, so bench cells are
    **never cached** — they are sharded for throughput only.
    """
    bench_dir = Path(spec["bench_dir"]) if spec.get("bench_dir") else None
    matches = [
        candidate
        for candidate in discover(bench_dir)
        if candidate.name == spec["name"]
    ]
    if not matches:
        raise ValueError(
            f"bench {spec['name']!r} not found in {bench_dir}"
        )
    outcome = _run_one(matches[0])
    collector.count("benches", 1)
    collector.count("documents", len(outcome.documents))
    return {
        "name": outcome.name,
        "suite": outcome.suite,
        "status": outcome.status,
        "wall_time_s": outcome.wall_time_s,
        "error": outcome.error,
        "documents": outcome.documents,
        "metrics": outcome.metrics,
    }


def run_suite(
    suite: str = "quick",
    name_filter: Optional[str] = None,
    bench_dir: Optional[Path] = None,
    baseline_dir: Optional[Path] = None,
    trajectory_path: Optional[Path] = None,
    update_baselines: bool = False,
    rel_tol: float = baseline_mod.DEFAULT_REL_TOL,
    workers: int = 1,
    **deprecated: Any,
) -> SuiteRun:
    """Discover, execute, gate, and record one benchmark suite run.

    ``name_filter`` is an fnmatch glob over bench names (the parameter
    was once called ``filter``; that spelling shadowed the builtin —
    see checks rule PY003 — and survives only as a deprecated keyword
    alias).  With ``update_baselines`` the committed baselines are
    rewritten from this run instead of being compared (the run then
    never reports regressions).  ``trajectory_path=None`` derives
    ``<bench_dir>/../BENCH_trajectory.json``; pass an explicit path to
    redirect, e.g. in tests.  ``workers=N`` shards the benches over a
    process pool (deterministic metrics are unaffected; wall times
    then measure contended hosts).
    """
    if "filter" in deprecated:
        warnings.warn(
            "run_suite(filter=...) is deprecated (it shadowed the "
            "builtin); use name_filter=...",
            DeprecationWarning,
            stacklevel=2,
        )
        legacy = deprecated.pop("filter")
        if name_filter is None:
            name_filter = legacy
    if deprecated:
        raise TypeError(
            "run_suite() got unexpected keyword argument(s): "
            f"{sorted(deprecated)}"
        )
    bench_dir = Path(bench_dir) if bench_dir else None
    specs = discover(bench_dir)
    if bench_dir is None:
        from repro.bench.registry import default_bench_dir

        bench_dir = default_bench_dir()
    if baseline_dir is None:
        baseline_dir = bench_dir / "baselines"
    if trajectory_path is None:
        trajectory_path = bench_dir.parent / TRAJECTORY_NAME

    selected = [spec for spec in specs if spec.selected_by(suite)]
    if name_filter:
        selected = [
            spec
            for spec in selected
            if fnmatch.fnmatch(spec.name, name_filter)
        ]
    start = time.perf_counter()  # repro: noqa[DET001] -- wall_time_s only
    cells = [
        SweepCell(
            "bench",
            {
                "name": spec.name,
                "suite": spec.suite,
                "bench_dir": str(bench_dir),
            },
        )
        for spec in selected
    ]
    sweep = run_sweep(
        cells,
        workers=workers,
        scope_for=lambda index, cell: f"bench[{cell.spec['name']}]",
    )
    benches = [
        BenchOutcome(
            name=record["name"],
            suite=record["suite"],
            status=record["status"],
            wall_time_s=float(record["wall_time_s"]),
            error=record["error"],
            documents=list(record["documents"]),
            metrics={
                key: float(value)
                for key, value in record["metrics"].items()
            },
        )
        for record in sweep.results()
    ]
    for outcome in benches:
        if outcome.status != "ok":
            continue
        if update_baselines:
            if outcome.metrics:
                baseline_mod.write_baseline(
                    baseline_dir, outcome.name, outcome.metrics, rel_tol
                )
                outcome.baseline_status = "updated"
            continue
        committed = baseline_mod.load_baseline(baseline_dir, outcome.name)
        if committed is None:
            outcome.baseline_status = "no-baseline"
            continue
        outcome.deviations = baseline_mod.compare_metrics(
            outcome.name, outcome.metrics, committed
        )
        outcome.baseline_status = (
            "regression" if outcome.regressions else "ok"
        )
    run = SuiteRun(
        suite=suite,
        filter=name_filter,
        benches=benches,
        wall_time_s=time.perf_counter() - start,  # repro: noqa[DET001]
    )
    append_trajectory(trajectory_path, run)
    return run


# -- the trajectory file ----------------------------------------------------
def load_trajectory(path: Path) -> Dict[str, Any]:
    """The run-history document at ``path`` (fresh skeleton if absent)."""
    path = Path(path)
    if path.is_file():
        document = json.loads(path.read_text())
        if document.get("kind") != "bench_trajectory":
            raise ValueError(
                f"{path} is not a bench trajectory document"
            )
        return document
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "bench_trajectory",
        "runs": [],
    }


def append_trajectory(path: Path, run: SuiteRun) -> Path:
    """Append one suite run's record to the history at ``path``.

    The read-modify-write is concurrency-safe: an exclusive sidecar
    lock serializes concurrent appenders (two parallel suite runs each
    land their record instead of silently dropping one), and the
    rewrite goes through :func:`repro.utils.io.write_json_atomic` so a
    reader never observes a torn history file.
    """
    path = Path(path)
    with exclusive_lock(path):
        document = load_trajectory(path)
        document["runs"].append(
            {
                # History metadata, not a gated metric.
                "timestamp": time.time(),  # repro: noqa[DET001]
                "suite": run.suite,
                "filter": run.filter,
                "wall_time_s": run.wall_time_s,
                "failure_count": run.failure_count,
                "regression_count": run.regression_count,
                "benches": [
                    {
                        "name": b.name,
                        "status": b.status,
                        "wall_time_s": b.wall_time_s,
                        "baseline_status": b.baseline_status,
                        "metrics": dict(sorted(b.metrics.items())),
                    }
                    for b in run.benches
                ],
            }
        )
        write_json_atomic(path, document)
    return path
