"""Benchmark registry: one catalogue for every ``bench_*`` module.

The repository's benchmarks live in ``benchmarks/bench_<name>.py`` as
pytest-collectable functions (``pytest benchmarks/`` still works, with
the pytest-benchmark fixture).  This module adds the registry the
unified runner (:mod:`repro.bench.runner`, CLI ``repro bench``) drives
them through: each bench module decorates its entry point with
:func:`register`, declaring a name and a suite tier, and
:func:`discover` imports every ``bench_*`` module under a directory so
the registrations execute.

Suite tiers
-----------
``quick``
    Seconds-scale benches, safe for every CI run (the default).
``full``
    Everything in ``quick`` plus the minutes-scale benches; selected
    with ``repro bench --suite full``.
"""

from __future__ import annotations

import importlib
import inspect
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

SUITES = ("quick", "full")


@dataclass(frozen=True)
class BenchSpec:
    """One registered benchmark entry point."""

    name: str
    func: Callable
    suite: str
    module: str
    source: str
    #: Whether the entry point takes the (pytest-)benchmark fixture as
    #: its first argument; the runner passes a shim when it does.
    wants_fixture: bool = field(default=False)

    def selected_by(self, suite: str) -> bool:
        """Whether a run of ``suite`` includes this bench."""
        if suite == "full":
            return True
        return self.suite == "quick"


_REGISTRY: Dict[str, BenchSpec] = {}


def register(
    func: Optional[Callable] = None,
    *,
    name: Optional[str] = None,
    suite: str = "quick",
):
    """Register a benchmark entry point (decorator).

    Returns the function unchanged, so pytest collection of the same
    function keeps working.  ``name`` defaults to the function name
    with a leading ``bench_`` stripped; ``suite`` is the smallest
    suite tier that includes the bench.
    """
    if suite not in SUITES:
        raise ValueError(f"suite must be one of {SUITES}, got {suite!r}")

    def wrap(target: Callable) -> Callable:
        bench_name = name or target.__name__
        if bench_name.startswith("bench_"):
            bench_name = bench_name[len("bench_"):]
        parameters = inspect.signature(target).parameters
        _REGISTRY[bench_name] = BenchSpec(
            name=bench_name,
            func=target,
            suite=suite,
            module=target.__module__,
            source=inspect.getsourcefile(target) or "",
            wants_fixture=len(parameters) > 0,
        )
        return target

    if func is not None:
        return wrap(func)
    return wrap


def registered() -> Dict[str, BenchSpec]:
    """All registrations seen so far (name -> spec), sorted by name."""
    return {name: _REGISTRY[name] for name in sorted(_REGISTRY)}


def clear_registry() -> None:
    """Drop every registration (test isolation helper)."""
    _REGISTRY.clear()


def default_bench_dir() -> Path:
    """The repository's ``benchmarks/`` directory, if findable.

    Prefers ``./benchmarks`` relative to the working directory (the
    normal checkout layout); falls back to the directory next to this
    installed package's repository root.
    """
    cwd_dir = Path.cwd() / "benchmarks"
    if cwd_dir.is_dir():
        return cwd_dir
    repo_root = Path(__file__).resolve().parents[3]
    return repo_root / "benchmarks"


def discover(bench_dir: Optional[Path] = None) -> List[BenchSpec]:
    """Import every ``bench_*.py`` under ``bench_dir`` and collect specs.

    The directory must be an importable package (``__init__.py``); its
    parent is added to ``sys.path`` when needed.  Returns the specs
    whose source file lives under ``bench_dir`` — registrations from
    other directories (earlier discoveries, inline test registrations)
    are left in the registry but not returned.
    """
    bench_dir = Path(bench_dir or default_bench_dir()).resolve()
    if not bench_dir.is_dir():
        raise FileNotFoundError(
            f"benchmark directory {bench_dir} does not exist"
        )
    if not (bench_dir / "__init__.py").is_file():
        raise FileNotFoundError(
            f"benchmark directory {bench_dir} is not a package "
            "(missing __init__.py)"
        )
    parent = str(bench_dir.parent)
    if parent not in sys.path:
        sys.path.insert(0, parent)
    package = bench_dir.name
    for module_file in sorted(bench_dir.glob("bench_*.py")):
        importlib.import_module(f"{package}.{module_file.stem}")
    specs = [
        spec
        for spec in _REGISTRY.values()
        if spec.source and Path(spec.source).resolve().parent == bench_dir
    ]
    return sorted(specs, key=lambda spec: spec.name)
