"""Unified simulation facade: one import for the whole reproduction.

The subpackages expose every internal seam (device physics, mapping,
pipelines, estimators); this module is the curated front door that
wires them together for the common journeys:

>>> from repro import Simulator
>>> sim = Simulator.from_workload("mnist_cnn", seed=7)
>>> result = sim.run_inference(count=32)
>>> result.stats["mvm_calls"] > 0
True

* :meth:`Simulator.from_workload` — build a runnable network for a
  named workload and deploy it onto simulated crossbar engines
  (``backend="vectorized"`` or ``"loop"``, see
  :class:`repro.xbar.engine.CrossbarEngineConfig`);
* :meth:`Simulator.run_inference` — drive synthetic inputs through the
  deployed datapath and collect accuracy plus operation counters;
* :meth:`Simulator.train` — crossbar-in-the-loop training on the
  matching synthetic dataset;
* :meth:`Simulator.table1` — the paper's headline Table I rows.

The module-level report functions (:func:`table1_report`,
:func:`reliability_report`, :func:`mapping_sweep`,
:func:`pipeline_sweep`, :func:`gan_scheme_report`,
:func:`schedule_trace`) return plain JSON-able dictionaries; the CLI
routes every subcommand through them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.compiler import Deployment, deploy_network, spec_from_network
from repro.core.estimator import TableOneRow, pipelayer_table1, regan_table1
from repro.core.gan_pipeline import scheme_table
from repro.core.gan_schedule import simulate_gan_iteration
from repro.core.mapping import balanced_mapping
from repro.core.pipeline import (
    training_cycles_pipelined,
    training_cycles_sequential,
)
from repro.core.schedule import simulate_training_pipeline
from repro.core.trace import render_gan_schedule, render_training_schedule
from repro.datasets.synthetic import (
    CIFAR10_SHAPE,
    MNIST_SHAPE,
    DatasetShape,
    make_classification_images,
    make_train_test,
)
from repro.nn.models import build_cifar_cnn, build_mlp, build_mnist_cnn
from repro.nn.network import Sequential
from repro.nn.optim import SGD
from repro.nn.train import evaluate_classifier, train_classifier
from repro.telemetry import NULL_COLLECTOR, SCHEMA_VERSION, TelemetryLike
from repro.utils.logging import get_logger
from repro.utils.rng import derive_seed, new_rng
from repro.workloads import FIG4_EXAMPLE, regan_suite
from repro.workloads.suite import NetworkSpec
from repro.xbar.engine import CrossbarEngineConfig

_log = get_logger("api")

#: Small flat-input stand-in driven by the "mlp" workload.
_TOY_SHAPE = DatasetShape("toy", 1, 8, 4)


def _row_dict(row: TableOneRow) -> Dict[str, Any]:
    return {
        "accelerator": row.accelerator,
        "speedup": row.speedup,
        "energy_saving": row.energy_saving,
        "paper_speedup": row.paper_speedup,
        "paper_energy_saving": row.paper_energy_saving,
        "per_workload": [
            {"network": name, "speedup": speedup, "energy_saving": energy}
            for name, speedup, energy in row.per_workload
        ],
    }


@dataclass
class InferenceResult:
    """Outcome of :meth:`Simulator.run_inference`."""

    accuracy: float
    count: int
    outputs: np.ndarray
    stats: Dict[str, int]
    engine_info: Dict[str, dict]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able view (outputs elided — they are bulk data)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "accuracy": self.accuracy,
            "count": self.count,
            "stats": dict(self.stats),
            "engine_info": self.engine_info,
        }

    def summary(self) -> str:
        return (
            f"inference on {self.count} inputs: accuracy "
            f"{self.accuracy:.3f}, {self.stats.get('mvm_calls', 0)} crossbar "
            f"matmuls, {self.stats.get('subcycles', 0)} sub-cycles"
        )


@dataclass
class TrainResult:
    """Outcome of :meth:`Simulator.train`."""

    final_accuracy: float
    epochs: int
    batch_losses: List[float] = field(repr=False)
    stats: Dict[str, int] = field(default_factory=dict)
    engine_info: Dict[str, dict] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "final_accuracy": self.final_accuracy,
            "epochs": self.epochs,
            "final_loss": self.batch_losses[-1] if self.batch_losses else None,
            "stats": dict(self.stats),
            "engine_info": self.engine_info,
        }

    def summary(self) -> str:
        return (
            f"trained {self.epochs} epoch(s): accuracy "
            f"{self.final_accuracy:.3f}, "
            f"{self.stats.get('array_programs', 0):,} array programs"
        )


class Simulator:
    """A workload deployed onto the simulated accelerator.

    Construct with :meth:`from_workload`; the instance owns the live
    network, its synthetic dataset geometry, and (unless
    ``deploy=False``) a crossbar engine per weight layer.  All
    randomness derives from ``seed``, so runs are reproducible and the
    two evaluation backends are bit-identical under the same seed.
    """

    WORKLOADS = ("mlp", "mnist_cnn", "cifar_cnn")

    def __init__(
        self,
        name: str,
        network: Sequential,
        input_shape: Tuple[int, ...],
        dataset: DatasetShape,
        seed: int,
        deployment: Optional[Deployment],
        flatten_inputs: bool = False,
        collector: Optional[TelemetryLike] = None,
    ) -> None:
        self.name = name
        self.network = network
        self.input_shape = input_shape
        self.dataset = dataset
        self.seed = seed
        self.deployment = deployment
        self.collector = collector
        self._flatten_inputs = flatten_inputs

    # -- construction -------------------------------------------------------
    @classmethod
    def from_workload(
        cls,
        name: str,
        engine_config: Optional[CrossbarEngineConfig] = None,
        backend: Optional[str] = None,
        seed: int = 0,
        deploy: bool = True,
        collector: Optional[TelemetryLike] = None,
    ) -> "Simulator":
        """Build a named workload and deploy it onto crossbar engines.

        ``name`` is one of :attr:`WORKLOADS`.  ``backend`` overrides
        the engine evaluation backend (``"loop"`` or ``"vectorized"``)
        without rebuilding ``engine_config``; ``deploy=False`` keeps
        the network on exact float matmul (the GPU-baseline
        counterpart).  ``collector`` attaches a
        :class:`repro.telemetry.Collector` (or scoped view): the
        per-layer engines write under ``engine/<layer>/...`` and the
        journeys (:meth:`run_inference`, :meth:`train`) add their own
        counters and timing spans.  Counter telemetry is deterministic
        (part of the backend bit-identity contract); spans are
        wall-clock.
        """
        if name not in cls.WORKLOADS:
            raise ValueError(
                f"unknown workload {name!r}; pick from {cls.WORKLOADS}"
            )
        net_rng = derive_seed(seed, f"net:{name}")
        if name == "mlp":
            dataset = _TOY_SHAPE
            features = (
                dataset.channels * dataset.size * dataset.size
            )
            network = build_mlp(
                features, hidden=(32,), classes=dataset.classes, rng=net_rng
            )
            input_shape: Tuple[int, ...] = (features,)
            flatten = True
        elif name == "mnist_cnn":
            dataset = MNIST_SHAPE
            network = build_mnist_cnn(rng=net_rng, classes=dataset.classes)
            input_shape = dataset.image_shape
            flatten = False
        else:
            dataset = CIFAR10_SHAPE
            network = build_cifar_cnn(rng=net_rng, classes=dataset.classes)
            input_shape = dataset.image_shape
            flatten = False
        _log.info(
            "building workload %s (seed=%d, backend=%s, deploy=%s)",
            name,
            seed,
            backend or "default",
            deploy,
        )
        deployment = None
        if deploy:
            deployment = deploy_network(
                network,
                engine_config,
                rng=derive_seed(seed, "deploy"),
                backend=backend,
                collector=collector,
            )
        return cls(
            name=name,
            network=network,
            input_shape=input_shape,
            dataset=dataset,
            seed=seed,
            deployment=deployment,
            flatten_inputs=flatten,
            collector=collector,
        )

    # -- properties ---------------------------------------------------------
    def spec(self) -> NetworkSpec:
        """Shape-level spec of the deployed network (for cost models)."""
        return spec_from_network(self.network, self.input_shape)

    def engine_info(self) -> Dict[str, dict]:
        """Which datapath serves each weight layer."""
        if self.deployment is None:
            return {}
        return self.deployment.engine_info()

    def stats(self) -> Dict[str, int]:
        """Aggregate crossbar operation counters (zeros if undeployed)."""
        if self.deployment is None:
            return {}
        return self.deployment.total_stats()

    def undeploy(self) -> None:
        """Detach the engines; the network falls back to exact matmul."""
        if self.deployment is not None:
            self.deployment.undeploy()
            self.deployment = None

    # -- journeys -----------------------------------------------------------
    def _inputs(self, images: np.ndarray) -> np.ndarray:
        if self._flatten_inputs:
            return images.reshape(images.shape[0], -1)
        return images

    def make_inputs(self, count: int = 64) -> Tuple[np.ndarray, np.ndarray]:
        """The deterministic evaluation set of this simulator.

        Returns ``(inputs, labels)`` shaped for :meth:`run_inference`'s
        forward pass.  Derived from the instance seed with the same
        salt ``run_inference`` uses, so external evaluation harnesses
        (e.g. :mod:`repro.reliability`) see exactly the inputs an
        inference run would.

        The class *templates* come from the ``"train"`` stream — the
        same template family :meth:`train` fits — while labels, jitter
        and noise come from the ``"infer"`` stream.  Inference after
        training therefore measures generalisation on held-out draws
        of the trained task, not performance on an unrelated one.
        """
        images, labels = make_classification_images(
            count,
            shape=self.dataset,
            rng=derive_seed(self.seed, "infer"),
            template_rng=derive_seed(self.seed, "train"),
        )
        return self._inputs(images), labels

    def run_inference(
        self, count: int = 64, batch: int = 32
    ) -> InferenceResult:
        """Forward synthetic inputs through the deployed datapath."""
        tel = self.collector if self.collector is not None else NULL_COLLECTOR
        _log.info(
            "inference on %s: %d inputs in batches of %d",
            self.name,
            count,
            batch,
        )
        inputs, labels = self.make_inputs(count)
        outputs = []
        with tel.span("inference"):
            for start in range(0, count, batch):
                outputs.append(
                    self.network.forward(
                        inputs[start : start + batch], training=False
                    )
                )
        tel.count("inference.runs", 1)
        tel.count("inference.inputs", count)
        logits = np.concatenate(outputs, axis=0)
        accuracy = float(np.mean(np.argmax(logits, axis=1) == labels))
        return InferenceResult(
            accuracy=accuracy,
            count=count,
            outputs=logits,
            stats=self.stats(),
            engine_info=self.engine_info(),
        )

    def train(
        self,
        epochs: int = 1,
        batch: int = 32,
        train_count: int = 256,
        test_count: int = 64,
        learning_rate: float = 0.05,
    ) -> TrainResult:
        """Crossbar-in-the-loop training on the matching synthetic set.

        The deployed engines stay in the forward path, so every batch
        re-programs the arrays (fresh programming noise, like real
        cells) and the final accuracy is measured on the same hardware
        the network trained on.
        """
        tel = self.collector if self.collector is not None else NULL_COLLECTOR
        _log.info(
            "training %s: %d epochs over %d samples (batch=%d, lr=%g)",
            self.name,
            epochs,
            train_count,
            batch,
            learning_rate,
        )
        images, labels, test_images, test_labels = make_train_test(
            train_count,
            test_count,
            shape=self.dataset,
            rng=derive_seed(self.seed, "train"),
        )
        with tel.span("train"):
            history = train_classifier(
                self.network,
                SGD(self.network.parameters(), lr=learning_rate),
                self._inputs(images),
                labels,
                epochs=epochs,
                batch_size=batch,
                rng=new_rng(derive_seed(self.seed, "shuffle")),
                collector=tel.scope("train") if tel else None,
            )
            accuracy = evaluate_classifier(
                self.network, self._inputs(test_images), test_labels
            )
        return TrainResult(
            final_accuracy=accuracy,
            epochs=epochs,
            batch_losses=list(history.batch_losses),
            stats=self.stats(),
            engine_info=self.engine_info(),
        )

    @staticmethod
    def table1(batch: int = 32) -> Dict[str, TableOneRow]:
        """Both Table I rows (PipeLayer and ReGAN) at ``batch``."""
        return {
            "pipelayer": pipelayer_table1(batch=batch),
            "regan": regan_table1(batch=batch),
        }


# -- JSON-able report functions (the CLI's data layer) ----------------------
# Every document carries ``schema_version`` (pinned by
# tests/core/test_schema_version.py) so downstream consumers can detect
# structural changes.
def table1_report(batch: int = 32) -> Dict[str, Any]:
    """Table I rows as a plain dictionary."""
    rows = Simulator.table1(batch=batch)
    document: Dict[str, Any] = {"schema_version": SCHEMA_VERSION}
    document.update(
        {name: _row_dict(row) for name, row in rows.items()}
    )
    return document


def mapping_sweep(
    duplications: Sequence[int] = (1, 4, 16, 64, 256, 1024, 4096, 12544),
) -> Dict[str, Any]:
    """Fig. 4 mapping trade-off: duplication vs passes vs arrays."""
    rows = []
    for duplication in duplications:
        mapping = balanced_mapping(FIG4_EXAMPLE, duplication)
        rows.append(
            {
                "duplication": int(duplication),
                "passes_per_image": mapping.passes_per_image,
                "arrays": mapping.total_arrays,
            }
        )
    return {"schema_version": SCHEMA_VERSION, "rows": rows}


def pipeline_sweep(
    layers: int = 8,
    batches: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128),
) -> Dict[str, Any]:
    """Fig. 5 pipeline cycles: sequential vs pipelined training."""
    rows = []
    for batch in batches:
        n_inputs = batch * 4
        sequential = training_cycles_sequential(layers, n_inputs, batch)
        pipelined = training_cycles_pipelined(layers, n_inputs, batch)
        rows.append(
            {
                "batch": int(batch),
                "sequential_cycles": sequential,
                "pipelined_cycles": pipelined,
                "speedup": sequential / pipelined,
            }
        )
    return {
        "schema_version": SCHEMA_VERSION,
        "layers": int(layers),
        "rows": rows,
    }


def reliability_report(
    workload: str = "mlp",
    axis: str = "stuck",
    rates: Optional[Sequence[float]] = None,
    seed: int = 0,
    count: int = 64,
    batch: int = 32,
    backend: str = "vectorized",
    train_epochs: int = 5,
    train_count: int = 256,
    include_tiles: bool = True,
    collector: Optional[TelemetryLike] = None,
) -> Dict[str, Any]:
    """Fault-injection campaign report (see :mod:`repro.reliability`).

    Sweeps ``axis`` over ``rates`` on ``workload`` and returns the
    JSON-able campaign document: per-scenario accuracy degradation,
    per-layer error propagation, per-tile stuck-cell census.
    Deterministic in ``seed``; ``backend="both"`` additionally verifies
    the loop and vectorized engines report identical fault outcomes.
    """
    from repro.reliability import run_campaign

    return run_campaign(
        workload=workload,
        axis=axis,
        rates=rates,
        seed=seed,
        count=count,
        batch=batch,
        backend=backend,
        train_epochs=train_epochs,
        train_count=train_count,
        include_tiles=include_tiles,
        collector=collector,
    )


def gan_scheme_report(batch: int = 32) -> Dict[str, Any]:
    """Fig. 9 GAN pipeline schemes per ReGAN dataset."""
    datasets = {}
    for dataset, (generator, discriminator) in regan_suite().items():
        datasets[dataset] = scheme_table(
            discriminator.depth, generator.depth, batch
        )
    return {
        "schema_version": SCHEMA_VERSION,
        "batch": int(batch),
        "datasets": datasets,
    }


def schedule_trace(
    layers: int = 3,
    batch: int = 4,
    gan: bool = False,
    scheme: str = "sp_cs",
    collector: Optional[TelemetryLike] = None,
) -> Dict[str, Any]:
    """Cycle-accurate schedule of one pipeline run, with ASCII Gantt.

    ``collector`` receives the schedule's occupancy counters under the
    ``gan/...`` or ``pipeline/...`` subtree.
    """
    tel = collector if collector is not None else NULL_COLLECTOR
    if gan:
        result = simulate_gan_iteration(
            layers, layers, batch, scheme,
            collector=tel.scope("gan") if tel else None,
        )
        rendered = render_gan_schedule(result)
    else:
        result = simulate_training_pipeline(
            layers, batch * 2, batch,
            collector=tel.scope("pipeline") if tel else None,
        )
        rendered = render_training_schedule(result)
    return {
        "schema_version": SCHEMA_VERSION,
        "layers": layers,
        "batch": batch,
        "gan": gan,
        "scheme": scheme if gan else None,
        "makespan": result.makespan,
        "gantt": rendered,
    }


__all__ = [
    "Simulator",
    "InferenceResult",
    "TrainResult",
    "table1_report",
    "reliability_report",
    "mapping_sweep",
    "pipeline_sweep",
    "gan_scheme_report",
    "schedule_trace",
]
