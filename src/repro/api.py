"""Unified simulation facade: one import for the whole reproduction.

The subpackages expose every internal seam (device physics, mapping,
pipelines, estimators); this module is the curated front door that
wires them together for the common journeys:

>>> from repro import Simulator
>>> from repro.api import InferenceJob
>>> sim = Simulator.from_workload("mnist_cnn", seed=7)
>>> result = sim.run(InferenceJob(workload="mnist_cnn", seed=7, count=32))
>>> result.stats["mvm_calls"] > 0
True

* :meth:`Simulator.from_workload` — build a runnable network for a
  named workload and deploy it onto simulated crossbar engines
  (``backend="vectorized"`` or ``"loop"``, see
  :class:`repro.xbar.engine.CrossbarEngineConfig`);
* :meth:`Simulator.run` — execute a frozen job spec
  (:class:`~repro.serve.jobs.InferenceJob` /
  :class:`~repro.serve.jobs.TrainingJob`) against this instance; the
  legacy kwarg journeys (:meth:`Simulator.run_inference`,
  :meth:`Simulator.train`) remain as thin deprecated wrappers;
* :func:`run_job` — one-shot entry point: build the right simulator
  for any job spec (including
  :class:`~repro.serve.jobs.ReliabilityJob`) and execute it;
* :meth:`Simulator.table1` — the paper's headline Table I rows.

:func:`weights_hash` / :func:`device_config_hash` (re-exported from
:mod:`repro.xbar.engine`) form the programmed-crossbar cache key: the
engines skip reprogramming on an unchanged key for in-process calls,
and :class:`repro.serve.cache.ProgrammedStateCache` reuses whole
deployed simulators across server jobs on the same
``(weights_hash, device_config_hash)``.

The module-level report functions (:func:`table1_report`,
:func:`reliability_report`, :func:`mapping_sweep`,
:func:`pipeline_sweep`, :func:`gan_scheme_report`,
:func:`schedule_trace`) return plain JSON-able dictionaries; the CLI
routes every subcommand through them.
"""

from __future__ import annotations

import hashlib
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.compiler import Deployment, deploy_network, spec_from_network
from repro.core.estimator import TableOneRow, pipelayer_table1, regan_table1
from repro.core.gan_pipeline import scheme_table
from repro.core.gan_schedule import simulate_gan_iteration
from repro.core.mapping import balanced_mapping
from repro.core.pipeline import (
    training_cycles_pipelined,
    training_cycles_sequential,
)
from repro.core.schedule import simulate_training_pipeline
from repro.core.trace import render_gan_schedule, render_training_schedule
from repro.datasets.synthetic import (
    CIFAR10_SHAPE,
    MNIST_SHAPE,
    DatasetShape,
    make_classification_images,
    make_train_test,
)
from repro.nn.models import build_cifar_cnn, build_mlp, build_mnist_cnn
from repro.nn.network import Sequential
from repro.nn.optim import SGD
from repro.nn.train import evaluate_classifier, train_classifier
from repro.serve.jobs import (
    InferenceJob,
    JobSpec,
    ReliabilityJob,
    TrainingJob,
    job_from_dict,
)
from repro.telemetry import NULL_COLLECTOR, SCHEMA_VERSION, TelemetryLike
from repro.utils.logging import get_logger
from repro.utils.rng import derive_seed, new_rng
from repro.workloads import FIG4_EXAMPLE, RUNNABLE_WORKLOADS, regan_suite
from repro.workloads.suite import NetworkSpec
from repro.xbar.engine import (
    CrossbarEngineConfig,
    device_config_hash,
    weights_hash,
)

_log = get_logger("api")

#: Small flat-input stand-in driven by the "mlp" workload.
_TOY_SHAPE = DatasetShape("toy", 1, 8, 4)


def _row_dict(row: TableOneRow) -> Dict[str, Any]:
    return {
        "accelerator": row.accelerator,
        "speedup": row.speedup,
        "energy_saving": row.energy_saving,
        "paper_speedup": row.paper_speedup,
        "paper_energy_saving": row.paper_energy_saving,
        "per_workload": [
            {"network": name, "speedup": speedup, "energy_saving": energy}
            for name, speedup, energy in row.per_workload
        ],
    }


@dataclass
class InferenceResult:
    """Outcome of :meth:`Simulator.run_inference`."""

    accuracy: float
    count: int
    outputs: np.ndarray
    stats: Dict[str, int]
    engine_info: Dict[str, dict]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able view (outputs elided — they are bulk data)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "accuracy": self.accuracy,
            "count": self.count,
            "stats": dict(self.stats),
            "engine_info": self.engine_info,
        }

    def summary(self) -> str:
        return (
            f"inference on {self.count} inputs: accuracy "
            f"{self.accuracy:.3f}, {self.stats.get('mvm_calls', 0)} crossbar "
            f"matmuls, {self.stats.get('subcycles', 0)} sub-cycles"
        )


@dataclass
class TrainResult:
    """Outcome of :meth:`Simulator.train`."""

    final_accuracy: float
    epochs: int
    batch_losses: List[float] = field(repr=False)
    stats: Dict[str, int] = field(default_factory=dict)
    engine_info: Dict[str, dict] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "final_accuracy": self.final_accuracy,
            "epochs": self.epochs,
            "final_loss": self.batch_losses[-1] if self.batch_losses else None,
            "stats": dict(self.stats),
            "engine_info": self.engine_info,
        }

    def summary(self) -> str:
        return (
            f"trained {self.epochs} epoch(s): accuracy "
            f"{self.final_accuracy:.3f}, "
            f"{self.stats.get('array_programs', 0):,} array programs"
        )


class Simulator:
    """A workload deployed onto the simulated accelerator.

    Construct with :meth:`from_workload`; the instance owns the live
    network, its synthetic dataset geometry, and (unless
    ``deploy=False``) a crossbar engine per weight layer.  All
    randomness derives from ``seed``, so runs are reproducible and the
    two evaluation backends are bit-identical under the same seed.
    """

    WORKLOADS = RUNNABLE_WORKLOADS

    def __init__(
        self,
        name: str,
        network: Sequential,
        input_shape: Tuple[int, ...],
        dataset: DatasetShape,
        seed: int,
        deployment: Optional[Deployment],
        flatten_inputs: bool = False,
        collector: Optional[TelemetryLike] = None,
    ) -> None:
        self.name = name
        self.network = network
        self.input_shape = input_shape
        self.dataset = dataset
        self.seed = seed
        self.deployment = deployment
        self.collector = collector
        self._flatten_inputs = flatten_inputs

    # -- construction -------------------------------------------------------
    @classmethod
    def from_workload(
        cls,
        name: str,
        engine_config: Optional[CrossbarEngineConfig] = None,
        backend: Optional[str] = None,
        seed: int = 0,
        deploy: bool = True,
        collector: Optional[TelemetryLike] = None,
    ) -> "Simulator":
        """Build a named workload and deploy it onto crossbar engines.

        ``name`` is one of :attr:`WORKLOADS`.  ``backend`` overrides
        the engine evaluation backend (``"loop"`` or ``"vectorized"``)
        without rebuilding ``engine_config``; ``deploy=False`` keeps
        the network on exact float matmul (the GPU-baseline
        counterpart).  ``collector`` attaches a
        :class:`repro.telemetry.Collector` (or scoped view): the
        per-layer engines write under ``engine/<layer>/...`` and the
        journeys (:meth:`run_inference`, :meth:`train`) add their own
        counters and timing spans.  Counter telemetry is deterministic
        (part of the backend bit-identity contract); spans are
        wall-clock.
        """
        if name not in cls.WORKLOADS:
            raise ValueError(
                f"unknown workload {name!r}; pick from {cls.WORKLOADS}"
            )
        net_rng = derive_seed(seed, f"net:{name}")
        if name == "mlp":
            dataset = _TOY_SHAPE
            features = (
                dataset.channels * dataset.size * dataset.size
            )
            network = build_mlp(
                features, hidden=(32,), classes=dataset.classes, rng=net_rng
            )
            input_shape: Tuple[int, ...] = (features,)
            flatten = True
        elif name == "mnist_cnn":
            dataset = MNIST_SHAPE
            network = build_mnist_cnn(rng=net_rng, classes=dataset.classes)
            input_shape = dataset.image_shape
            flatten = False
        else:
            dataset = CIFAR10_SHAPE
            network = build_cifar_cnn(rng=net_rng, classes=dataset.classes)
            input_shape = dataset.image_shape
            flatten = False
        _log.info(
            "building workload %s (seed=%d, backend=%s, deploy=%s)",
            name,
            seed,
            backend or "default",
            deploy,
        )
        deployment = None
        if deploy:
            deployment = deploy_network(
                network,
                engine_config,
                rng=derive_seed(seed, "deploy"),
                backend=backend,
                collector=collector,
            )
        return cls(
            name=name,
            network=network,
            input_shape=input_shape,
            dataset=dataset,
            seed=seed,
            deployment=deployment,
            flatten_inputs=flatten,
            collector=collector,
        )

    # -- properties ---------------------------------------------------------
    def spec(self) -> NetworkSpec:
        """Shape-level spec of the deployed network (for cost models)."""
        return spec_from_network(self.network, self.input_shape)

    def engine_info(self) -> Dict[str, dict]:
        """Which datapath serves each weight layer."""
        if self.deployment is None:
            return {}
        return self.deployment.engine_info()

    def stats(self) -> Dict[str, int]:
        """Aggregate crossbar operation counters (zeros if undeployed)."""
        if self.deployment is None:
            return {}
        return self.deployment.total_stats()

    def counters_snapshot(self) -> Dict[str, float]:
        """Point-in-time copy of this simulator's counter tree.

        Empty when no collector is attached.  Long-lived holders (the
        serve cache) subtract two snapshots around a run to get the
        exact event counters that run added — the delta a cost table
        prices into per-job energy.
        """
        if self.collector is None:
            return {}
        return dict(self.collector.counters())

    def undeploy(self) -> None:
        """Detach the engines; the network falls back to exact matmul."""
        if self.deployment is not None:
            self.deployment.undeploy()
            self.deployment = None

    # -- journeys -----------------------------------------------------------
    def _inputs(self, images: np.ndarray) -> np.ndarray:
        if self._flatten_inputs:
            return images.reshape(images.shape[0], -1)
        return images

    def make_inputs(
        self, count: int = 64, input_seed: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """A deterministic evaluation set of this simulator.

        Returns ``(inputs, labels)`` shaped for the inference forward
        pass.  With ``input_seed=None`` this is the *canonical*
        evaluation set — derived from the instance seed with the same
        salt the inference journey uses, so external evaluation
        harnesses (e.g. :mod:`repro.reliability`) see exactly the
        inputs an inference run would.  An explicit ``input_seed``
        draws an independent input stream (labels, jitter, noise) over
        the same class templates — distinct evaluation data for the
        same model, used by the serve layer's per-job
        ``InferenceJob.input_seed``.

        The class *templates* always come from the ``"train"`` stream
        — the same template family :meth:`train` fits — so inference
        after training measures generalisation on held-out draws of
        the trained task, not performance on an unrelated one.
        """
        images, labels = make_classification_images(
            count,
            shape=self.dataset,
            rng=(
                derive_seed(self.seed, "infer")
                if input_seed is None
                else input_seed
            ),
            template_rng=derive_seed(self.seed, "train"),
        )
        return self._inputs(images), labels

    # -- the JobSpec entry point ---------------------------------------------
    def run(
        self, job: JobSpec
    ) -> Union[InferenceResult, TrainResult]:
        """Execute a frozen job spec against this deployed instance.

        The spec must describe *this* simulator: ``job.workload`` and
        ``job.seed`` have to match (the spec is the determinism
        contract — silently running a mismatched spec would detach the
        result from its description).  Accepts
        :class:`~repro.serve.jobs.InferenceJob` and
        :class:`~repro.serve.jobs.TrainingJob`;
        :class:`~repro.serve.jobs.ReliabilityJob` builds its own
        simulators — route it through :func:`run_job`.
        """
        if not isinstance(job, (InferenceJob, TrainingJob)):
            raise TypeError(
                f"Simulator.run() takes an InferenceJob or TrainingJob, "
                f"got {type(job).__name__}; use repro.api.run_job() for "
                "other job kinds"
            )
        if job.workload != self.name or job.seed != self.seed:
            raise ValueError(
                f"job spec ({job.workload!r}, seed={job.seed}) does not "
                f"describe this simulator ({self.name!r}, "
                f"seed={self.seed})"
            )
        if isinstance(job, InferenceJob):
            return self._run_inference_job(job)
        return self._run_training_job(job)

    def _run_inference_job(self, job: InferenceJob) -> InferenceResult:
        tel = self.collector if self.collector is not None else NULL_COLLECTOR
        _log.info(
            "inference on %s: %d inputs in batches of %d",
            self.name,
            job.count,
            job.batch,
        )
        inputs, labels = self.make_inputs(
            job.count, input_seed=job.input_seed
        )
        outputs = []
        with tel.span("inference"):
            for start in range(0, job.count, job.batch):
                outputs.append(
                    self.network.forward(
                        inputs[start : start + job.batch], training=False
                    )
                )
        tel.count("inference.runs", 1)
        tel.count("inference.inputs", job.count)
        logits = np.concatenate(outputs, axis=0)
        accuracy = float(np.mean(np.argmax(logits, axis=1) == labels))
        return InferenceResult(
            accuracy=accuracy,
            count=job.count,
            outputs=logits,
            stats=self.stats(),
            engine_info=self.engine_info(),
        )

    def _run_training_job(self, job: TrainingJob) -> TrainResult:
        tel = self.collector if self.collector is not None else NULL_COLLECTOR
        _log.info(
            "training %s: %d epochs over %d samples (batch=%d, lr=%g)",
            self.name,
            job.epochs,
            job.train_count,
            job.batch,
            job.learning_rate,
        )
        images, labels, test_images, test_labels = make_train_test(
            job.train_count,
            job.test_count,
            shape=self.dataset,
            rng=derive_seed(self.seed, "train"),
        )
        with tel.span("train"):
            history = train_classifier(
                self.network,
                SGD(self.network.parameters(), lr=job.learning_rate),
                self._inputs(images),
                labels,
                epochs=job.epochs,
                batch_size=job.batch,
                rng=new_rng(derive_seed(self.seed, "shuffle")),
                collector=tel.scope("train") if tel else None,
            )
            accuracy = evaluate_classifier(
                self.network, self._inputs(test_images), test_labels
            )
        return TrainResult(
            final_accuracy=accuracy,
            epochs=job.epochs,
            batch_losses=list(history.batch_losses),
            stats=self.stats(),
            engine_info=self.engine_info(),
        )

    # -- deprecated kwarg wrappers -------------------------------------------
    def run_inference(
        self, count: int = 64, batch: int = 32
    ) -> InferenceResult:
        """Deprecated wrapper; use :meth:`run` with an ``InferenceJob``."""
        warnings.warn(
            "Simulator.run_inference(count=, batch=) is deprecated; "
            "build an repro.api.InferenceJob and call Simulator.run(job)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.run(
            InferenceJob(
                workload=self.name, seed=self.seed, count=count, batch=batch
            )
        )

    def train(
        self,
        epochs: int = 1,
        batch: int = 32,
        train_count: int = 256,
        test_count: int = 64,
        learning_rate: float = 0.05,
    ) -> TrainResult:
        """Deprecated wrapper; use :meth:`run` with a ``TrainingJob``."""
        warnings.warn(
            "Simulator.train(epochs=, batch=, ...) is deprecated; "
            "build an repro.api.TrainingJob and call Simulator.run(job)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.run(
            TrainingJob(
                workload=self.name,
                seed=self.seed,
                epochs=epochs,
                batch=batch,
                train_count=train_count,
                test_count=test_count,
                learning_rate=learning_rate,
            )
        )

    def cache_key(
        self, engine_config: Optional[CrossbarEngineConfig] = None
    ) -> Tuple[str, str]:
        """``(weights_hash, device_config_hash)`` of this simulator.

        The programmed-crossbar state identity: combines the content
        hashes of every trainable parameter with the hash of the
        engine pipeline config (the deployed one when available, else
        ``engine_config`` or the default).  Weights derive
        deterministically from ``(workload, seed)``, so equal keys
        mean the crossbars would be programmed identically —
        :class:`repro.serve.cache.ProgrammedStateCache` shares one
        deployment across all such jobs, and the engines themselves
        skip in-process reprogramming on an unchanged weights hash.
        """
        if engine_config is None:
            if self.deployment is not None and self.deployment.engines:
                engine_config = next(
                    iter(self.deployment.engines.values())
                ).config
            else:
                engine_config = CrossbarEngineConfig()
        digest = hashlib.sha256()
        for parameter in self.network.parameters():
            digest.update(weights_hash(parameter.value).encode())
        return digest.hexdigest(), device_config_hash(engine_config)

    @staticmethod
    def table1(batch: int = 32) -> Dict[str, TableOneRow]:
        """Both Table I rows (PipeLayer and ReGAN) at ``batch``."""
        return {
            "pipelayer": pipelayer_table1(batch=batch),
            "regan": regan_table1(batch=batch),
        }


def run_job(
    job: JobSpec,
    engine_config: Optional[CrossbarEngineConfig] = None,
    collector: Optional[TelemetryLike] = None,
    simulator: Optional[Simulator] = None,
) -> Union[InferenceResult, TrainResult, Dict[str, Any]]:
    """Build the right simulator for ``job`` and execute it.

    The one-shot counterpart of :meth:`Simulator.run`: inference and
    training jobs deploy a fresh :class:`Simulator` (or run against
    ``simulator`` when given — e.g. one leased from the serve layer's
    programmed-state cache); reliability jobs route to
    :func:`reliability_report`, which builds its own golden/faulty
    simulator pairs and returns the campaign document.
    """
    if isinstance(job, ReliabilityJob):
        return reliability_report(
            workload=job.workload,
            axis=job.axis,
            rates=job.rates,
            seed=job.seed,
            count=job.count,
            batch=job.batch,
            backend=job.backend or "vectorized",
            train_epochs=job.train_epochs,
            train_count=job.train_count,
            include_tiles=job.include_tiles,
            collector=collector,
        )
    if not isinstance(job, (InferenceJob, TrainingJob)):
        raise TypeError(
            f"run_job() takes a JobSpec, got {type(job).__name__}"
        )
    sim = simulator
    if sim is None:
        sim = Simulator.from_workload(
            job.workload,
            engine_config=engine_config,
            backend=job.backend,
            seed=job.seed,
            collector=collector,
        )
    return sim.run(job)


# -- JSON-able report functions (the CLI's data layer) ----------------------
# Every document carries ``schema_version`` (pinned by
# tests/core/test_schema_version.py) so downstream consumers can detect
# structural changes.
def table1_report(batch: int = 32) -> Dict[str, Any]:
    """Table I rows as a plain dictionary."""
    rows = Simulator.table1(batch=batch)
    document: Dict[str, Any] = {"schema_version": SCHEMA_VERSION}
    document.update(
        {name: _row_dict(row) for name, row in rows.items()}
    )
    return document


def validate_table1_report(document: Dict[str, Any]) -> Dict[str, Any]:
    """Raise ``ValueError`` unless ``document`` is a Table I report."""
    if document.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            "unsupported table1_report schema_version "
            f"{document.get('schema_version')!r}"
        )
    rows = {
        name: row
        for name, row in document.items()
        if name != "schema_version"
    }
    if not rows:
        raise ValueError("table1_report carries no accelerator rows")
    for name, row in rows.items():
        if not isinstance(row, dict):
            raise ValueError(f"table1_report row {name!r} not a dict")
        for key in (
            "speedup",
            "energy_saving",
            "paper_speedup",
            "paper_energy_saving",
        ):
            value = row.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                raise ValueError(
                    f"table1_report row {name!r} needs positive "
                    f"{key}, got {value!r}"
                )
        per_workload = row.get("per_workload")
        if not isinstance(per_workload, list) or not per_workload:
            raise ValueError(
                f"table1_report row {name!r} needs per_workload rows"
            )
        for entry in per_workload:
            if not isinstance(entry.get("network"), str):
                raise ValueError(
                    "per_workload entries must name their network"
                )
    return document


def mapping_sweep(
    duplications: Sequence[int] = (1, 4, 16, 64, 256, 1024, 4096, 12544),
) -> Dict[str, Any]:
    """Fig. 4 mapping trade-off: duplication vs passes vs arrays."""
    rows = []
    for duplication in duplications:
        mapping = balanced_mapping(FIG4_EXAMPLE, duplication)
        rows.append(
            {
                "duplication": int(duplication),
                "passes_per_image": mapping.passes_per_image,
                "arrays": mapping.total_arrays,
            }
        )
    return {"schema_version": SCHEMA_VERSION, "rows": rows}


def pipeline_sweep(
    layers: int = 8,
    batches: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128),
) -> Dict[str, Any]:
    """Fig. 5 pipeline cycles: sequential vs pipelined training."""
    rows = []
    for batch in batches:
        n_inputs = batch * 4
        sequential = training_cycles_sequential(layers, n_inputs, batch)
        pipelined = training_cycles_pipelined(layers, n_inputs, batch)
        rows.append(
            {
                "batch": int(batch),
                "sequential_cycles": sequential,
                "pipelined_cycles": pipelined,
                "speedup": sequential / pipelined,
            }
        )
    return {
        "schema_version": SCHEMA_VERSION,
        "layers": int(layers),
        "rows": rows,
    }


def reliability_report(
    workload: str = "mlp",
    axis: str = "stuck",
    rates: Optional[Sequence[float]] = None,
    seed: int = 0,
    count: int = 64,
    batch: int = 32,
    backend: str = "vectorized",
    train_epochs: int = 5,
    train_count: int = 256,
    include_tiles: bool = True,
    collector: Optional[TelemetryLike] = None,
    workers: int = 1,
    sweep_cache: Optional[Any] = None,
) -> Dict[str, Any]:
    """Fault-injection campaign report (see :mod:`repro.reliability`).

    Sweeps ``axis`` over ``rates`` on ``workload`` and returns the
    JSON-able campaign document: per-scenario accuracy degradation,
    per-layer error propagation, per-tile stuck-cell census.
    Deterministic in ``seed``; ``backend="both"`` additionally verifies
    the loop and vectorized engines report identical fault outcomes.
    ``workers=N`` shards the scenario cells over a process pool with a
    byte-identical report for any ``N``; ``sweep_cache`` (a
    :class:`repro.sweep.SweepCache`) replays completed cells from disk.
    """
    from repro.reliability import run_campaign

    return run_campaign(
        workload=workload,
        axis=axis,
        rates=rates,
        seed=seed,
        count=count,
        batch=batch,
        backend=backend,
        train_epochs=train_epochs,
        train_count=train_count,
        include_tiles=include_tiles,
        collector=collector,
        workers=workers,
        sweep_cache=sweep_cache,
    )


def validate_reliability_report(
    document: Dict[str, Any],
) -> Dict[str, Any]:
    """Raise ``ValueError`` unless ``document`` is a campaign report."""
    if document.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            "unsupported reliability_report schema_version "
            f"{document.get('schema_version')!r}"
        )
    for key in ("workload", "axis", "backend"):
        if not isinstance(document.get(key), str):
            raise ValueError(
                f"reliability_report {key} must be a string"
            )
    for key in ("seed", "count", "batch", "train_epochs",
                "train_count"):
        if not isinstance(document.get(key), int):
            raise ValueError(
                f"reliability_report {key} must be an int"
            )
    baseline = document.get("baseline_accuracy")
    if not isinstance(baseline, (int, float)):
        raise ValueError(
            "reliability_report baseline_accuracy must be a number"
        )
    scenarios = document.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        raise ValueError(
            "reliability_report must carry at least one scenario"
        )
    for scenario in scenarios:
        if not isinstance(scenario, dict):
            raise ValueError("scenario entries must be dicts")
        for key in ("name", "rate", "accuracy", "accuracy_drop"):
            if key not in scenario:
                raise ValueError(f"scenario missing {key!r}")
    return document


def gan_scheme_report(batch: int = 32) -> Dict[str, Any]:
    """Fig. 9 GAN pipeline schemes per ReGAN dataset."""
    datasets = {}
    for dataset, (generator, discriminator) in regan_suite().items():
        datasets[dataset] = scheme_table(
            discriminator.depth, generator.depth, batch
        )
    return {
        "schema_version": SCHEMA_VERSION,
        "batch": int(batch),
        "datasets": datasets,
    }


def validate_gan_scheme_report(
    document: Dict[str, Any],
) -> Dict[str, Any]:
    """Raise ``ValueError`` unless ``document`` is a scheme report."""
    if document.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            "unsupported gan_scheme_report schema_version "
            f"{document.get('schema_version')!r}"
        )
    batch = document.get("batch")
    if not isinstance(batch, int) or batch <= 0:
        raise ValueError(
            f"gan_scheme_report batch must be positive, got {batch!r}"
        )
    datasets = document.get("datasets")
    if not isinstance(datasets, dict) or not datasets:
        raise ValueError(
            "gan_scheme_report must carry at least one dataset"
        )
    for name, rows in datasets.items():
        if not isinstance(rows, list) or not rows:
            raise ValueError(
                f"gan_scheme_report dataset {name!r} has no rows"
            )
        for row in rows:
            for key in ("scheme", "cycles", "speedup", "d_copies"):
                if key not in row:
                    raise ValueError(
                        f"scheme row missing {key!r} in {name!r}"
                    )
    return document


def schedule_trace(
    layers: int = 3,
    batch: int = 4,
    gan: bool = False,
    scheme: str = "sp_cs",
    collector: Optional[TelemetryLike] = None,
) -> Dict[str, Any]:
    """Cycle-accurate schedule of one pipeline run, with ASCII Gantt.

    ``collector`` receives the schedule's occupancy counters under the
    ``gan/...`` or ``pipeline/...`` subtree.
    """
    tel = collector if collector is not None else NULL_COLLECTOR
    if gan:
        result = simulate_gan_iteration(
            layers, layers, batch, scheme,
            collector=tel.scope("gan") if tel else None,
        )
        rendered = render_gan_schedule(result)
    else:
        result = simulate_training_pipeline(
            layers, batch * 2, batch,
            collector=tel.scope("pipeline") if tel else None,
        )
        rendered = render_training_schedule(result)
    return {
        "schema_version": SCHEMA_VERSION,
        "layers": layers,
        "batch": batch,
        "gan": gan,
        "scheme": scheme if gan else None,
        "makespan": result.makespan,
        "gantt": rendered,
    }


__all__ = [
    "Simulator",
    "InferenceResult",
    "TrainResult",
    "JobSpec",
    "InferenceJob",
    "TrainingJob",
    "ReliabilityJob",
    "job_from_dict",
    "run_job",
    "weights_hash",
    "device_config_hash",
    "table1_report",
    "reliability_report",
    "mapping_sweep",
    "pipeline_sweep",
    "gan_scheme_report",
    "schedule_trace",
]
