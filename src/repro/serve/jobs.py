"""Schema-versioned job specifications: the serve layer's wire API.

A *job spec* is a frozen dataclass that fully describes one unit of
schedulable work — an inference run, a crossbar-in-the-loop training
run, or a reliability fault-injection campaign — in plain JSON-able
fields.  Specs are the single entry currency of both layers:

* in-process, :meth:`repro.api.Simulator.run` and
  :func:`repro.api.run_job` accept them directly (the redesigned
  facade API; the old kwarg entry points remain as deprecated
  wrappers);
* over the wire, :class:`repro.serve.server.JobServer` receives them
  as JSON documents (``to_dict`` / :func:`job_from_dict` round-trip,
  pinned by ``schema_version``).

Every field that affects the result is in the spec, and every spec
field is JSON-able — so a spec is also the determinism contract: two
runs of an equal spec produce bit-identical outputs (and equal
reports) on either engine backend.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, fields
from typing import Any, ClassVar, Dict, Optional, Tuple, Type

from repro.telemetry import SCHEMA_VERSION
from repro.utils.validation import check_choice, check_positive
from repro.workloads import RUNNABLE_WORKLOADS

#: Engine backends a job may pin (``None`` = the config's default).
BACKENDS = ("loop", "vectorized")

#: Tenant identifiers must fit the telemetry bracket grammar
#: (``serve/tenant[<id>]/...`` paths): lowercase alphanumerics plus
#: ``_ . -``, starting with a letter, digit, or underscore.
_TENANT_RE = re.compile(r"[a-z0-9_][a-z0-9_.-]*\Z")


def check_tenant(tenant: str) -> None:
    """Reject tenant ids that cannot index a telemetry scope."""
    if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
        raise ValueError(
            f"tenant {tenant!r} must match [a-z0-9_][a-z0-9_.-]* "
            "(it indexes the serve/tenant[<id>] telemetry scope)"
        )


@dataclass(frozen=True)
class JobSpec:
    """Fields shared by every job kind (see subclasses).

    ``seed`` is the *model* seed: network weights derive from it
    (``derive_seed(seed, "net:<workload>")``), so two specs with
    different seeds describe different models.  ``tenant`` names the
    submitting client for per-tenant telemetry; it never affects
    numerical results.
    """

    workload: str = "mlp"
    seed: int = 0
    backend: Optional[str] = None
    tenant: str = "default"

    #: Discriminator in the wire format; each subclass pins its own.
    kind: ClassVar[str] = "abstract"

    def __post_init__(self) -> None:
        if type(self) is JobSpec:
            raise TypeError(
                "JobSpec is abstract; instantiate InferenceJob, "
                "TrainingJob, or ReliabilityJob"
            )
        if self.workload not in RUNNABLE_WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r}; pick from "
                f"{RUNNABLE_WORKLOADS}"
            )
        if self.backend is not None:
            check_choice("backend", self.backend, BACKENDS)
        check_tenant(self.tenant)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able wire form; inverse of :func:`job_from_dict`."""
        document: Dict[str, Any] = {
            "schema_version": SCHEMA_VERSION,
            "kind": self.kind,
        }
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if isinstance(value, tuple):
                value = list(value)
            document[spec_field.name] = value
        return document

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "JobSpec":
        """Rebuild a spec of this class from its wire form.

        Validates ``schema_version`` and ``kind`` when present and
        rejects unknown fields, so schema drift fails loudly at the
        boundary instead of silently dropping request parameters.
        """
        if not isinstance(document, dict):
            raise ValueError(
                f"job document must be a dict, got {type(document).__name__}"
            )
        payload = dict(document)
        version = payload.pop("schema_version", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"job document schema_version {version!r} != "
                f"supported {SCHEMA_VERSION}"
            )
        kind = payload.pop("kind", cls.kind)
        if kind != cls.kind:
            raise ValueError(
                f"job document kind {kind!r} != {cls.kind!r}"
            )
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown {cls.kind} job field(s): {', '.join(unknown)}"
            )
        if "rates" in payload and isinstance(payload["rates"], list):
            payload["rates"] = tuple(payload["rates"])
        return cls(**payload)


@dataclass(frozen=True)
class InferenceJob(JobSpec):
    """Forward ``count`` synthetic inputs through a deployed workload.

    ``input_seed`` selects the evaluation draw: ``None`` is the
    workload's canonical evaluation set (the same inputs the classic
    ``run_inference`` journey used); an explicit value derives an
    independent input stream over the same class templates, letting
    tenants that share a model evaluate on distinct data.
    """

    count: int = 64
    batch: int = 32
    input_seed: Optional[int] = None

    kind: ClassVar[str] = "inference"

    def __post_init__(self) -> None:
        super().__post_init__()
        check_positive("count", self.count)
        check_positive("batch", self.batch)


@dataclass(frozen=True)
class TrainingJob(JobSpec):
    """Crossbar-in-the-loop training on the matching synthetic set."""

    epochs: int = 1
    batch: int = 32
    train_count: int = 256
    test_count: int = 64
    learning_rate: float = 0.05

    kind: ClassVar[str] = "training"

    def __post_init__(self) -> None:
        super().__post_init__()
        check_positive("epochs", self.epochs)
        check_positive("batch", self.batch)
        check_positive("train_count", self.train_count)
        check_positive("test_count", self.test_count)
        check_positive("learning_rate", self.learning_rate)


@dataclass(frozen=True)
class ReliabilityJob(JobSpec):
    """A fault-injection campaign (see :mod:`repro.reliability`).

    ``rates=None`` sweeps the per-axis preset; ``backend`` here also
    accepts ``"both"`` semantics through the campaign runner when left
    ``None`` — the job pins one backend, the campaign's cross-backend
    verification stays a CLI/API concern.
    """

    axis: str = "stuck"
    rates: Optional[Tuple[float, ...]] = None
    count: int = 32
    batch: int = 32
    train_epochs: int = 5
    train_count: int = 256
    include_tiles: bool = True

    kind: ClassVar[str] = "reliability"

    def __post_init__(self) -> None:
        super().__post_init__()
        check_positive("count", self.count)
        check_positive("batch", self.batch)
        check_positive("train_count", self.train_count)
        if self.train_epochs < 0:
            raise ValueError(
                f"train_epochs must be >= 0, got {self.train_epochs}"
            )
        if self.rates is not None:
            object.__setattr__(
                self, "rates", tuple(float(rate) for rate in self.rates)
            )
            if not self.rates:
                raise ValueError("rates must be None or non-empty")


#: Wire discriminator -> spec class.
JOB_KINDS: Dict[str, Type[JobSpec]] = {
    InferenceJob.kind: InferenceJob,
    TrainingJob.kind: TrainingJob,
    ReliabilityJob.kind: ReliabilityJob,
}


def job_from_dict(document: Dict[str, Any]) -> JobSpec:
    """Rebuild any job spec from its wire form (dispatch on ``kind``)."""
    if not isinstance(document, dict):
        raise ValueError(
            f"job document must be a dict, got {type(document).__name__}"
        )
    kind = document.get("kind")
    spec_class = JOB_KINDS.get(kind)
    if spec_class is None:
        raise ValueError(
            f"unknown job kind {kind!r}; pick from {sorted(JOB_KINDS)}"
        )
    return spec_class.from_dict(document)


__all__ = [
    "BACKENDS",
    "JOB_KINDS",
    "JobSpec",
    "InferenceJob",
    "TrainingJob",
    "ReliabilityJob",
    "check_tenant",
    "job_from_dict",
]
