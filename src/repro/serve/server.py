"""The asyncio job server: simulation-as-a-service over HTTP.

One long-lived :class:`JobServer` owns the accelerator simulation and
serves many tenants.  Requests arrive as schema-versioned JSON job
specs (:mod:`repro.serve.jobs`) on a tiny stdlib HTTP surface:

========  =======================  =====================================
method    path                     meaning
========  =======================  =====================================
POST      ``/v1/jobs``             submit a job spec -> ``job_id``
GET       ``/v1/jobs/<id>``        poll; add ``?wait=1`` to block
GET       ``/v1/stats``            server/cache/telemetry counters
GET       ``/v1/metrics``          Prometheus text exposition
GET       ``/v1/traces/<id>``      one job's trace as a span document
GET       ``/v1/healthz``          liveness probe
========  =======================  =====================================

Execution pipeline (all policy lives in :mod:`repro.serve.scheduler`):
submissions queue on the event loop; the dispatcher drains the queue,
asks :func:`~repro.serve.scheduler.coalesce_plan` for an exact
partition into coalesced inference groups and singles, and runs each
unit on a bounded thread pool.  Groups and inference singles lease
programmed state from the :class:`~repro.serve.cache.\
ProgrammedStateCache`; training and reliability jobs always get fresh
simulators (they mutate or own their state).  Numpy releases the GIL
inside the matmuls, so distinct models genuinely overlap; jobs
sharing a cached model serialize on its entry lock.

Threading discipline (the :class:`~repro.telemetry.Collector` is not
thread-safe): the shared collector is only written from the event
loop — workers record into throwaway per-unit collectors that the
loop merges after the fact — except the cache's own counters, which
are serialized by the cache lock and touch no loop-written paths.

Determinism: a job's numerical result is a function of its spec alone
(coalescing is bit-exact by construction — see
:mod:`repro.serve.batcher`), so rerunning any mix of specs reproduces
every ``result`` payload byte-for-byte; only scheduling artifacts
(the ``coalesced`` flag under live traffic) may differ.
:meth:`JobServer.run_all` drains a whole spec list through one plan,
which pins the schedule itself — the CI smoke and the
``serve_throughput`` benchmark use it.

Observability: every job gets a deterministic trace id
(:func:`repro.telemetry.trace_id_for` of its ``job_id``) with
``queue`` / ``execute`` spans on the server's logical clock; coalesced
groups fork a carrier into the worker thread so ``cache_lease`` and
``engine_evaluate`` spans land in a distinct per-unit lane of the
stitched trace (``GET /v1/traces/<id>``).  Queue-wait, end-to-end,
cache-lookup, and engine-evaluate latencies record into collector
histograms exposed at ``GET /v1/stats`` and — in Prometheus text form
— at ``GET /v1/metrics``; ``--event-log`` journals one JSONL
:func:`repro.telemetry.event_record` per lifecycle transition.
"""

from __future__ import annotations

import asyncio
import json
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)
from concurrent.futures import ThreadPoolExecutor

from repro.serve.batcher import batch_invariant, run_coalesced
from repro.serve.cache import DEFAULT_MAX_ENTRIES, ProgrammedStateCache
from repro.serve.jobs import (
    JOB_KINDS,
    InferenceJob,
    JobSpec,
    ReliabilityJob,
    TrainingJob,
    job_from_dict,
)
from repro.serve.scheduler import DEFAULT_MAX_COALESCE, coalesce_plan
from repro.arch.components import event_costs
from repro.arch.params import DEFAULT_TECH
from repro.telemetry import (
    SCHEMA_VERSION,
    Collector,
    EventLogWriter,
    TelemetryLike,
    TraceContext,
    TraceLog,
    attribute_energy,
    energy_counter_map,
    event_record,
    render_prometheus,
    trace_document,
    trace_id_for,
    wall_clock,
)
from repro.xbar.engine import CrossbarEngineConfig, weights_hash
from repro.utils.logging import get_logger

_log = get_logger("serve")

#: Statuses a job record moves through (monotonically, left to right).
JOB_STATUSES = ("pending", "running", "done", "error")

#: Power-of-two grid every per-job energy contribution is rounded to
#: before entering the shared counters (~0.9 fJ, far below any single
#: event cost).  Grid multiples are exact binary floats, so the
#: cumulative ``energy/*`` counters are order-independent sums — the
#: smoke's byte-determinism check holds no matter which worker
#: finishes first.
ENERGY_QUANTUM = 2.0 ** -50


def _quantize_energy(value: float) -> float:
    """Snap ``value`` to the exact-summation grid."""
    return round(value / ENERGY_QUANTUM) * ENERGY_QUANTUM


def _counter_delta(
    before: Dict[str, float], after: Dict[str, float]
) -> Dict[str, float]:
    """Counters added between two :meth:`Simulator.counters_snapshot`\\ s."""
    delta = {}
    for path, value in after.items():
        change = value - before.get(path, 0.0)
        if change:
            delta[path] = change
    return delta

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
}


def _default_engine_config() -> CrossbarEngineConfig:
    # activation_range pinned -> batch-invariant pipeline (see
    # repro.serve.batcher): coalescing and programmed-state reuse stay
    # bit-exact.  8.0 comfortably covers the synthetic workloads'
    # post-ReLU activations.
    return CrossbarEngineConfig(activation_range=8.0)


@dataclass
class ServerConfig:
    """Tunables of one :class:`JobServer` instance.

    ``engine_config`` is the pipeline every job runs under (jobs may
    still pin a ``backend``); the default pins ``activation_range`` so
    the config is batch-invariant and both coalescing and
    programmed-state reuse apply.  A non-invariant config (stochastic
    reads, observed-batch quantization) degrades gracefully: every job
    runs alone on a fresh simulator, trading throughput, never
    correctness.  ``coalesce_window`` is how long (seconds) the
    dispatcher lingers after the first queued job to let concurrent
    clients land in the same plan; ``0`` dispatches immediately.
    ``cache_max_entries`` bounds the programmed-state cache
    LRU-style (``None`` disables the bound — the pre-bound behavior,
    which grows one resident deployment per distinct tenant).
    ``event_log`` (optional path) appends one JSONL event record per
    job lifecycle transition.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 4
    max_coalesce: int = DEFAULT_MAX_COALESCE
    default_backend: str = "vectorized"
    coalesce_window: float = 0.01
    engine_config: CrossbarEngineConfig = field(
        default_factory=_default_engine_config
    )
    cache_max_entries: Optional[int] = DEFAULT_MAX_ENTRIES
    event_log: Optional[Path] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.cache_max_entries is not None and self.cache_max_entries < 1:
            raise ValueError(
                "cache_max_entries must be >= 1 or None, got "
                f"{self.cache_max_entries}"
            )
        if self.max_coalesce < 1:
            raise ValueError(
                f"max_coalesce must be >= 1, got {self.max_coalesce}"
            )
        if self.coalesce_window < 0:
            raise ValueError(
                f"coalesce_window must be >= 0, got {self.coalesce_window}"
            )


def job_report(
    job: JobSpec,
    job_id: str,
    status: str,
    result: Optional[Dict[str, Any]] = None,
    coalesced: bool = False,
    error: Optional[str] = None,
    trace_id: Optional[str] = None,
) -> Dict[str, Any]:
    """The schema-versioned document a tenant gets back for one job.

    ``result`` carries only deterministic, spec-derived values (no
    wall-clock, no cumulative engine counters shared with other
    tenants); inference results include an ``outputs_sha256`` content
    digest so bit-identity can be asserted without shipping logits.
    ``trace_id`` defaults to the deterministic
    :func:`repro.telemetry.trace_id_for` of ``job_id`` — the handle
    for ``GET /v1/traces/<job_id>``.
    """
    document: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "kind": job.kind,
        "job_id": job_id,
        "tenant": job.tenant,
        "status": status,
        "coalesced": bool(coalesced),
        "spec": job.to_dict(),
        "result": result,
        "trace_id": (
            trace_id if trace_id is not None else trace_id_for(job_id)
        ),
    }
    if error is not None:
        document["error"] = error
    return document


#: Per-kind keys every ``done`` result payload must carry.
_RESULT_KEYS = {
    "inference": ("accuracy", "count", "outputs_sha256"),
    "training": ("final_accuracy", "epochs", "final_loss"),
    "reliability": ("schema_version", "workload", "axis"),
}


def validate_job_report(document: Dict[str, Any]) -> Dict[str, Any]:
    """Validate a :func:`job_report` document; returns it on success."""
    if not isinstance(document, dict):
        raise ValueError(
            f"job report must be a dict, got {type(document).__name__}"
        )
    version = document.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"job report schema_version {version!r} != "
            f"supported {SCHEMA_VERSION}"
        )
    kind = document.get("kind")
    if kind not in JOB_KINDS:
        raise ValueError(f"job report kind {kind!r} unknown")
    for key in ("job_id", "tenant", "status", "coalesced", "spec",
                "trace_id"):
        if key not in document:
            raise ValueError(f"job report missing key {key!r}")
    if not isinstance(document["trace_id"], str) or \
            not document["trace_id"]:
        raise ValueError("job report trace_id must be a non-empty str")
    status = document["status"]
    if status not in JOB_STATUSES:
        raise ValueError(f"job report status {status!r} unknown")
    spec = job_from_dict(document["spec"])
    if spec.kind != kind:
        raise ValueError(
            f"job report kind {kind!r} != spec kind {spec.kind!r}"
        )
    if status == "done":
        result = document.get("result")
        if not isinstance(result, dict):
            raise ValueError("done job report must carry a result dict")
        missing = [k for k in _RESULT_KEYS[kind] if k not in result]
        if missing:
            raise ValueError(
                f"{kind} result missing key(s): {', '.join(missing)}"
            )
    elif status == "error" and "error" not in document:
        raise ValueError("error job report must carry an 'error' message")
    return document


def validate_stats_report(document: Dict[str, Any]) -> Dict[str, Any]:
    """Validate a :meth:`JobServer.stats_report` document."""
    if not isinstance(document, dict):
        raise ValueError(
            f"stats report must be a dict, got {type(document).__name__}"
        )
    if document.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"stats schema_version {document.get('schema_version')!r} "
            f"!= supported {SCHEMA_VERSION}"
        )
    for key, key_type in (
        ("jobs", dict),
        ("cache", dict),
        ("counters", dict),
        ("histograms", dict),
        ("queue_depth", int),
    ):
        if key not in document:
            raise ValueError(f"stats report missing key {key!r}")
        if not isinstance(document[key], key_type):
            raise ValueError(
                f"stats key {key!r} must be {key_type.__name__}, got "
                f"{type(document[key]).__name__}"
            )
    if document["queue_depth"] < 0:
        raise ValueError("stats queue_depth must be >= 0")
    for status in JOB_STATUSES:
        if status not in document["jobs"]:
            raise ValueError(f"stats jobs missing status {status!r}")
    for path, view in document["histograms"].items():
        for key in ("bounds", "counts", "count", "sum"):
            if key not in view:
                raise ValueError(
                    f"stats histogram {path!r} missing key {key!r}"
                )
    return document


def _result_payload(job: JobSpec, result: Any) -> Dict[str, Any]:
    """Deterministic JSON-able view of one job's outcome."""
    if isinstance(job, InferenceJob):
        return {
            "accuracy": result.accuracy,
            "count": result.count,
            "outputs_sha256": weights_hash(result.outputs),
        }
    if isinstance(job, TrainingJob):
        losses = result.batch_losses
        return {
            "final_accuracy": result.final_accuracy,
            "epochs": result.epochs,
            "final_loss": losses[-1] if losses else None,
        }
    return dict(result)  # reliability: the campaign document itself


@dataclass
class _JobRecord:
    """Loop-side state of one submitted job."""

    job_id: str
    spec: JobSpec
    status: str = "pending"
    report: Optional[Dict[str, Any]] = None
    done: asyncio.Event = field(default_factory=asyncio.Event)
    trace: Optional[TraceContext] = None
    queue_span: Optional[TraceContext] = None
    execute_span: Optional[TraceContext] = None
    submitted_at: float = 0.0


class JobServer:
    """Async multi-tenant front end over :class:`repro.api.Simulator`.

    Use :meth:`start` / :meth:`stop` inside a running event loop, or
    :func:`running_server` for the blocking-world tests and CLI.
    All public coroutine methods must be called on the server's loop.
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        collector: Optional[TelemetryLike] = None,
    ) -> None:
        self.config = config or ServerConfig()
        self.collector: TelemetryLike = (
            collector if collector is not None else Collector()
        )
        self._serve_scope = self.collector.scope("serve")
        self._event_costs = event_costs(DEFAULT_TECH)
        self._reusable = batch_invariant(self.config.engine_config)
        self._cache = ProgrammedStateCache(
            engine_config=self.config.engine_config,
            collector=self._serve_scope,
            max_entries=self.config.cache_max_entries,
        )
        self._records: Dict[str, _JobRecord] = {}
        self._queue: "asyncio.Queue[Optional[_JobRecord]]" = asyncio.Queue()
        self._inflight: set = set()
        self._next_id = 0
        self._pool: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatcher: Optional[asyncio.Task] = None
        # Trace spans live on the server's logical clock (loop-thread
        # writes only; worker-side unit logs are absorbed by the loop).
        self._trace_log = TraceLog(proc="server")
        self._events: Optional[EventLogWriter] = None
        self._event_seq = 0

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket, start the worker pool and dispatcher."""
        if self.config.event_log is not None and self._events is None:
            self._events = EventLogWriter(self.config.event_log)
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-serve",
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        host, port = self.address
        _log.info(
            "serving on %s:%d (%d workers, max_coalesce=%d, "
            "batch_invariant=%s)",
            host,
            port,
            self.config.workers,
            self.config.max_coalesce,
            self._reusable,
        )

    async def stop(self) -> None:
        """Drain in-flight work and release every resource."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._dispatcher is not None:
            await self._queue.put(None)
            await self._dispatcher
            self._dispatcher = None
        if self._inflight:
            await asyncio.gather(*self._inflight, return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._events is not None:
            self._events.close()
            self._events = None

    @property
    def address(self) -> Tuple[str, int]:
        """The actually-bound ``(host, port)`` (port 0 resolves here)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not running")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    # -- submission ----------------------------------------------------------
    def _event(
        self,
        event: str,
        record: _JobRecord,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Journal one lifecycle transition (loop thread only)."""
        if self._events is None:
            return
        assert record.trace is not None
        self._event_seq += 1
        self._events.write(
            event_record(
                self._event_seq,
                event,
                record.job_id,
                record.spec.tenant,
                record.spec.kind,
                record.trace.trace_id,
                span_id=record.trace.span_id,
                attrs=attrs,
            )
        )

    def _register(self, spec: JobSpec) -> _JobRecord:
        self._next_id += 1
        record = _JobRecord(job_id=f"job-{self._next_id:05d}", spec=spec)
        self._records[record.job_id] = record
        record.trace = TraceContext.root(record.job_id, self._trace_log)
        record.queue_span = record.trace.start("queue")
        record.submitted_at = wall_clock()
        scope = self.collector.scope(f"serve/tenant[{spec.tenant}]")
        scope.count("submitted", 1)
        self._event("submitted", record)
        return record

    async def submit(self, spec: JobSpec) -> str:
        """Queue a job for the dispatcher; returns its ``job_id``."""
        record = self._register(spec)
        await self._queue.put(record)
        return record.job_id

    async def wait(self, job_id: str) -> Dict[str, Any]:
        """Block until ``job_id`` finishes; returns its report."""
        record = self._records[job_id]
        await record.done.wait()
        assert record.report is not None
        return record.report

    async def run_all(
        self, specs: Sequence[JobSpec]
    ) -> List[Dict[str, Any]]:
        """Drain mode: plan the whole spec list at once, run it, return
        reports in submission order.

        Bypasses the live queue so the coalescing plan — and therefore
        the exact batched evaluations and cache-counter tallies — is a
        deterministic function of ``specs`` alone, independent of
        request timing.  Used by the determinism tests, the CI smoke,
        and the throughput benchmark.
        """
        records = [self._register(spec) for spec in specs]
        await self._execute_plan(records)
        return [record.report for record in records if record.report]

    # -- dispatch ------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        stopping = False
        while not stopping:
            record = await self._queue.get()
            if record is None:
                break
            batch = [record]
            if self.config.coalesce_window > 0:
                await asyncio.sleep(self.config.coalesce_window)
            while True:
                try:
                    item = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if item is None:
                    stopping = True
                    break
                batch.append(item)
            task = asyncio.ensure_future(self._execute_plan(batch))
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)

    async def _execute_plan(self, records: List[_JobRecord]) -> None:
        plan = coalesce_plan(
            [record.spec for record in records],
            self.config.engine_config,
            max_coalesce=self.config.max_coalesce,
            default_backend=self.config.default_backend,
            collector=self._serve_scope,
        )
        for record in records:
            record.status = "running"
            queue_wait = wall_clock() - record.submitted_at
            self._serve_scope.observe(
                "latency/queue_wait_seconds", queue_wait
            )
            self.collector.scope(
                f"serve/tenant[{record.spec.tenant}]"
            ).observe("latency/queue_wait_seconds", queue_wait)
            if record.queue_span is not None:
                record.queue_span.finish()
                record.queue_span = None
            if record.trace is not None:
                record.execute_span = record.trace.start("execute")
            self._event("dispatched", record)
        tasks = [
            self._execute_group([records[i] for i in group])
            for group in plan.groups
        ]
        tasks.extend(
            self._execute_single(records[i]) for i in plan.singles
        )
        await asyncio.gather(*tasks)

    # -- execution units -----------------------------------------------------
    async def _execute_group(self, records: List[_JobRecord]) -> None:
        loop = asyncio.get_event_loop()
        local = Collector(record_spans=False)
        specs = [record.spec for record in records]
        leader = records[0]
        carrier = None
        if leader.trace is not None:
            carrier = leader.trace.fork(
                "unit", proc=f"unit[{leader.job_id}]"
            )

        def work() -> Tuple[list, List[Dict[str, Any]], Dict[str, float]]:
            # Worker-side spans live on a throwaway per-unit log with
            # its own proc lane; the loop absorbs them afterwards so
            # the shared trace log stays loop-thread-only.
            unit_spans: List[Dict[str, Any]] = []
            if carrier is not None:
                unit_log = TraceLog(proc=str(carrier["proc"]))
                ctx = TraceContext.adopt(carrier, unit_log)
                with ctx.span("cache_lease"):
                    entry = self._cache.lease(specs[0])
                with entry.lock, ctx.span("engine_evaluate"):
                    before = entry.simulator.counters_snapshot()
                    results = run_coalesced(
                        entry.simulator, specs, collector=local
                    )
                    delta = _counter_delta(
                        before, entry.simulator.counters_snapshot()
                    )
                ctx.finish({"jobs": len(specs)})
                unit_spans = unit_log.to_dicts()
            else:
                entry = self._cache.lease(specs[0])
                with entry.lock:
                    before = entry.simulator.counters_snapshot()
                    results = run_coalesced(
                        entry.simulator, specs, collector=local
                    )
                    delta = _counter_delta(
                        before, entry.simulator.counters_snapshot()
                    )
            return results, unit_spans, delta

        try:
            results, unit_spans, delta = await loop.run_in_executor(
                self._pool, work
            )
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            self._fail(records, exc)
            return
        self._trace_log.absorb(unit_spans)
        self._merge(self._serve_scope, local)
        # One coalesced evaluation priced once, split across the
        # group's jobs in proportion to their input counts.
        energy = self._price_energy(delta)
        total_inputs = sum(record.spec.count for record in records)
        for record, result in zip(records, results):
            if total_inputs > 0:
                self._record_energy(
                    record.spec.tenant,
                    energy,
                    share=record.spec.count / total_inputs,
                )
            self._finish(record, result, coalesced=True)

    async def _execute_single(self, record: _JobRecord) -> None:
        loop = asyncio.get_event_loop()
        local = Collector(record_spans=False)
        spec = record.spec

        def work() -> Tuple[Any, Optional[Dict[str, float]]]:
            from repro.api import run_job

            if isinstance(spec, InferenceJob) and self._reusable:
                entry = self._cache.lease(spec)
                with entry.lock:
                    before = entry.simulator.counters_snapshot()
                    result = entry.simulator.run(spec)
                    return result, _counter_delta(
                        before, entry.simulator.counters_snapshot()
                    )
            engine_config = self._cache.resolved_config(spec.backend)
            if isinstance(spec, ReliabilityJob):
                return run_job(spec, collector=local), None
            return (
                run_job(
                    spec, engine_config=engine_config, collector=local
                ),
                None,
            )

        try:
            result, delta = await loop.run_in_executor(self._pool, work)
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            self._fail([record], exc)
            return
        tenant_scope = self.collector.scope(
            f"serve/tenant[{spec.tenant}]"
        )
        self._merge(tenant_scope, local)
        # Cached runs price the entry-simulator snapshot delta; fresh
        # runs price the events their private collector captured.
        self._record_energy(
            spec.tenant,
            self._price_energy(
                delta if delta is not None else local.counters()
            ),
        )
        self._finish(record, result, coalesced=False)

    # -- completion (event-loop thread only) ---------------------------------
    @staticmethod
    def _merge(target: TelemetryLike, local: Collector) -> None:
        for path, value in local.counters().items():
            target.count(path, value)
        target.merge_histograms(local.histograms())

    # -- energy attribution (event-loop thread only) -------------------------
    def _price_energy(
        self, counters: Dict[str, float]
    ) -> Dict[str, float]:
        """Price a job's event-counter delta into ``energy/*`` counters.

        Returns the :func:`repro.telemetry.energy_counter_map` of the
        attributed report — per-component ``..._joules``, the total,
        and ``simulated_seconds`` — or ``{}`` when the run emitted no
        priceable events (e.g. the exact-matmul fallback).
        """
        if not counters:
            return {}
        report = attribute_energy(
            counters, self._event_costs, source_name="serve"
        )
        if not report["groups"]:
            return {}
        return energy_counter_map(report)

    def _record_energy(
        self,
        tenant: str,
        energy: Dict[str, float],
        share: float = 1.0,
    ) -> None:
        """Add one job's energy slice to its tenant and the serve totals.

        Each contribution is quantized to :data:`ENERGY_QUANTUM` so the
        cumulative counters are exact (order-independent) sums, then
        the ``energy/average_watts`` gauge is re-derived from the
        cumulative joules over cumulative simulated seconds.
        """
        if not energy:
            return
        tenant_scope = self.collector.scope(f"serve/tenant[{tenant}]")
        for name, value in energy.items():
            slice_value = _quantize_energy(value * share)
            tenant_scope.count(name, slice_value)
            self._serve_scope.count(name, slice_value)
        for scope in (tenant_scope, self._serve_scope):
            seconds = scope.get("energy/simulated_seconds")
            if seconds > 0.0:
                scope.set(
                    "energy/average_watts",
                    scope.get("energy/total_joules") / seconds,
                )

    def _close_spans(
        self,
        record: _JobRecord,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        if record.queue_span is not None:
            record.queue_span.finish()
            record.queue_span = None
        if record.execute_span is not None:
            record.execute_span.finish(attrs)
            record.execute_span = None
        if record.trace is not None:
            record.trace.finish()

    def _finish(
        self, record: _JobRecord, result: Any, coalesced: bool
    ) -> None:
        spec = record.spec
        record.status = "done"
        self._close_spans(record, {"coalesced": coalesced})
        record.report = job_report(
            spec,
            record.job_id,
            "done",
            result=_result_payload(spec, result),
            coalesced=coalesced,
            trace_id=(
                record.trace.trace_id if record.trace is not None
                else None
            ),
        )
        e2e = wall_clock() - record.submitted_at
        scope = self.collector.scope(f"serve/tenant[{spec.tenant}]")
        scope.count(f"jobs[{spec.kind}]", 1)
        scope.observe("latency/e2e_seconds", e2e)
        self._serve_scope.observe("latency/e2e_seconds", e2e)
        self._serve_scope.count("jobs.done", 1)
        self._event("done", record, {"coalesced": coalesced})
        record.done.set()

    def _fail(self, records: List[_JobRecord], exc: Exception) -> None:
        _log.warning("job execution failed: %s", exc)
        for record in records:
            record.status = "error"
            self._close_spans(record, {"error": type(exc).__name__})
            record.report = job_report(
                record.spec,
                record.job_id,
                "error",
                error=f"{type(exc).__name__}: {exc}",
                trace_id=(
                    record.trace.trace_id if record.trace is not None
                    else None
                ),
            )
            self._serve_scope.count("jobs.failed", 1)
            self._event(
                "error", record, {"error": type(exc).__name__}
            )
            record.done.set()

    # -- stats ---------------------------------------------------------------
    def stats_report(self) -> Dict[str, Any]:
        """Server-wide counters as a schema-versioned document."""
        by_status: Dict[str, int] = {
            status: 0 for status in JOB_STATUSES
        }
        for record in self._records.values():
            by_status[record.status] += 1
        counters = {
            path: value
            for path, value in self.collector.counters().items()
            if path.startswith("serve/")
        }
        histograms = {
            path: view
            for path, view in self.collector.histograms().items()
            if path.startswith("serve/")
        }
        return {
            "schema_version": SCHEMA_VERSION,
            "jobs": by_status,
            "cache": self._cache.stats(),
            "counters": counters,
            "histograms": histograms,
            "queue_depth": self._queue.qsize(),
        }

    def metrics_text(self) -> str:
        """The Prometheus exposition body (``GET /v1/metrics``)."""
        return render_prometheus(
            self.collector.counters(), self.collector.histograms()
        )

    def trace_report(self, job_id: str) -> Dict[str, Any]:
        """One job's stitched trace as a schema-versioned document."""
        record = self._records[job_id]
        trace_id = (
            record.trace.trace_id if record.trace is not None
            else trace_id_for(job_id)
        )
        return trace_document(
            trace_id, self._trace_log.spans_for(trace_id)
        )

    # -- HTTP front end ------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            method, target, body = await self._read_request(reader)
            status, document = await self._route(method, target, body)
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            ValueError,
        ) as exc:
            status, document = 400, {"error": str(exc)}
        try:
            # A plain-str body ships as-is (the Prometheus text
            # exposition); everything else is a JSON document.
            if isinstance(document, str):
                payload = document.encode()
                content_type = "text/plain; version=0.0.4"
            else:
                payload = json.dumps(document).encode()
                content_type = "application/json"
            head = (
                f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode()
            writer.write(head + payload)
            await writer.drain()
        except ConnectionError:  # pragma: no cover - client went away
            pass
        finally:
            writer.close()

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Tuple[str, str, bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) < 2:
            raise ValueError(f"malformed request line {request_line!r}")
        method, target = parts[0].upper(), parts[1]
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        body = await reader.readexactly(length) if length else b""
        return method, target, body

    async def _route(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, Union[Dict[str, Any], str]]:
        path, _, query = target.partition("?")
        if path == "/v1/healthz":
            if method != "GET":
                return 405, {"error": "GET only"}
            return 200, {"schema_version": SCHEMA_VERSION, "ok": True}
        if path == "/v1/stats":
            if method != "GET":
                return 405, {"error": "GET only"}
            return 200, self.stats_report()
        if path == "/v1/metrics":
            if method != "GET":
                return 405, {"error": "GET only"}
            return 200, self.metrics_text()
        if path.startswith("/v1/traces/"):
            if method != "GET":
                return 405, {"error": "GET only"}
            job_id = path[len("/v1/traces/") :]
            if job_id not in self._records:
                return 404, {"error": f"unknown job {job_id!r}"}
            return 200, self.trace_report(job_id)
        if path == "/v1/jobs":
            if method != "POST":
                return 405, {"error": "POST only"}
            try:
                document = json.loads(body.decode() or "null")
                spec = job_from_dict(document)
            except (ValueError, TypeError) as exc:
                return 400, {"error": str(exc)}
            job_id = await self.submit(spec)
            return 202, {
                "schema_version": SCHEMA_VERSION,
                "job_id": job_id,
                "status": "pending",
            }
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                return 405, {"error": "GET only"}
            job_id = path[len("/v1/jobs/") :]
            record = self._records.get(job_id)
            if record is None:
                return 404, {"error": f"unknown job {job_id!r}"}
            if "wait=1" in query.split("&"):
                await record.done.wait()
            if record.report is not None:
                return 200, record.report
            return 200, {
                "schema_version": SCHEMA_VERSION,
                "job_id": job_id,
                "status": record.status,
            }
        return 404, {"error": f"no route for {method} {path}"}


@contextmanager
def running_server(
    config: Optional[ServerConfig] = None,
    collector: Optional[TelemetryLike] = None,
) -> Iterator[Tuple[JobServer, Tuple[str, int]]]:
    """Run a :class:`JobServer` on a background event-loop thread.

    The blocking-world entry point (tests, CLI smoke): yields the
    server and its bound address; tears everything down on exit.
    Drive it over HTTP with :class:`repro.serve.client.ServeClient`,
    or call coroutine methods via :func:`call_on` below.
    """
    loop = asyncio.new_event_loop()
    thread = threading.Thread(
        target=loop.run_forever, name="repro-serve-loop", daemon=True
    )
    thread.start()
    server = JobServer(config=config, collector=collector)
    try:
        asyncio.run_coroutine_threadsafe(server.start(), loop).result()
        try:
            yield server, server.address
        finally:
            asyncio.run_coroutine_threadsafe(server.stop(), loop).result()
    finally:
        loop.call_soon_threadsafe(loop.stop)
        thread.join()
        loop.close()


def call_on(server: JobServer, coroutine: Any) -> Any:
    """Run a server coroutine from outside its loop thread, blocking.

    Convenience for :func:`running_server` users:
    ``call_on(server, server.run_all(specs))``.
    """
    loop = _loop_of(server)
    return asyncio.run_coroutine_threadsafe(coroutine, loop).result()


def _loop_of(server: JobServer) -> asyncio.AbstractEventLoop:
    if server._server is None:
        raise RuntimeError("server is not running")
    return server._server.get_loop()


__all__ = [
    "JOB_STATUSES",
    "JobServer",
    "ServerConfig",
    "call_on",
    "job_report",
    "running_server",
    "validate_job_report",
    "validate_stats_report",
]
