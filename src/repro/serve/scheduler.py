"""Deterministic job-scheduling policy (pure planning, no I/O).

The server separates *policy* from *mechanism*: this module decides
how a set of pending jobs should execute — which inference requests
coalesce into one batched evaluation, which run alone, which kinds
never share state — and the server merely carries the plan out.
Keeping the policy pure (no clocks, no sockets, no RNG) makes the
schedule a deterministic function of the pending set, which the
drain-mode determinism tests and the ``serve_throughput`` benchmark
rely on.

Grouping rules:

* inference jobs coalesce iff they share a *compatibility key* —
  ``(workload, seed, resolved backend)``, i.e. the same programmed
  crossbar state — and the engine config is batch-invariant
  (:func:`repro.serve.batcher.batch_invariant`);
* groups are capped at ``max_coalesce`` jobs (slabs of unbounded
  width would blow the activation working set);
* training and reliability jobs never coalesce: training mutates the
  programmed state, campaigns build their own simulator fleets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serve.batcher import batch_invariant
from repro.serve.jobs import InferenceJob, JobSpec
from repro.telemetry import TelemetryLike
from repro.xbar.engine import CrossbarEngineConfig

#: Default ceiling on jobs per coalesced batch.
DEFAULT_MAX_COALESCE = 8


def compatibility_key(
    job: JobSpec, default_backend: str = "vectorized"
) -> Tuple[str, int, str]:
    """The shared-programmed-state identity of a job.

    Jobs with equal keys target byte-identical crossbar state: the
    network weights derive from ``(workload, seed)`` and the backend
    resolves against the server default.  (The full honest cache key
    additionally hashes the weights and engine config —
    :meth:`repro.api.Simulator.cache_key`; this tuple is the cheap
    planning-time view of the same identity.)
    """
    return job.workload, job.seed, job.backend or default_backend


@dataclass(frozen=True)
class Plan:
    """One scheduling decision over a pending set.

    ``groups`` are coalesced inference batches (>= 2 jobs, one batched
    evaluation each); ``singles`` run alone.  Indices refer to the
    original pending sequence, and every index appears exactly once,
    so the plan is an exact partition.
    """

    groups: Tuple[Tuple[int, ...], ...] = ()
    singles: Tuple[int, ...] = ()

    @property
    def coalesced_job_count(self) -> int:
        return sum(len(group) for group in self.groups)


def coalesce_plan(
    jobs: Sequence[JobSpec],
    engine_config: CrossbarEngineConfig,
    max_coalesce: int = DEFAULT_MAX_COALESCE,
    default_backend: str = "vectorized",
    collector: Optional[TelemetryLike] = None,
) -> Plan:
    """Partition pending ``jobs`` into coalesced groups and singles.

    Deterministic in the pending sequence: grouping preserves arrival
    order within and across groups (first-come, first-batched), so a
    drained queue always yields the same plan — and therefore the
    same batched evaluations — for the same submission order.

    ``collector`` (optional) records one
    ``coalesce/batch_size_jobs`` histogram observation per execution
    unit — ``len(group)`` for each coalesced group, ``1`` for each
    single — the distribution the ``serve_throughput`` benchmark
    gates on.
    """
    if max_coalesce < 1:
        raise ValueError(
            f"max_coalesce must be >= 1, got {max_coalesce}"
        )
    invariant = batch_invariant(engine_config)
    buckets: Dict[Tuple[str, int, str], List[int]] = {}
    singles: List[int] = []
    for index, job in enumerate(jobs):
        if not isinstance(job, InferenceJob) or not invariant:
            singles.append(index)
            continue
        buckets.setdefault(
            compatibility_key(job, default_backend), []
        ).append(index)
    groups: List[Tuple[int, ...]] = []
    for key in sorted(buckets):
        members = buckets[key]
        for start in range(0, len(members), max_coalesce):
            chunk = members[start : start + max_coalesce]
            if len(chunk) >= 2:
                groups.append(tuple(chunk))
            else:
                singles.extend(chunk)
    plan = Plan(groups=tuple(groups), singles=tuple(sorted(singles)))
    if collector is not None:
        for group in plan.groups:
            collector.observe("coalesce/batch_size_jobs", len(group))
        for _ in plan.singles:
            collector.observe("coalesce/batch_size_jobs", 1)
    return plan


__all__ = [
    "DEFAULT_MAX_COALESCE",
    "Plan",
    "coalesce_plan",
    "compatibility_key",
]
