"""Simulation-as-a-service: the multi-tenant job server.

The paper's accelerator only pays off when the crossbar arrays stay
saturated; this package keeps them saturated across *clients*.  A
long-lived asyncio server (:class:`~repro.serve.server.JobServer`)
accepts schema-versioned job specs (:mod:`repro.serve.jobs`) from
concurrent tenants and drives them through the
:class:`repro.api.Simulator` facade with three throughput levers:

* **coalescing** — compatible inference requests (same programmed
  state, batch-invariant pipeline config) merge into single batched
  crossbar evaluations (:mod:`repro.serve.batcher`), with outputs
  split back per job, bit-identical to running each job alone;
* **programmed-state caching** — deployed simulators are cached by
  ``(weights_hash, device_config_hash)``
  (:mod:`repro.serve.cache`), so repeat tenants skip array
  reprogramming entirely;
* **sharding** — independent jobs spread over a bounded worker pool,
  serialized per programmed model (the arrays are a physical
  resource) but parallel across distinct models.

Every job gets deterministic RNG derivation (the spec *is* the
randomness), a ``serve/tenant[<id>]/...`` telemetry scope, and a
schema-versioned ``job_report`` document.  The CLI front end is
``repro serve``; :mod:`repro.serve.client` has the matching blocking
client helper used by the tests and the CI smoke run.

The job schemas import eagerly (the facade API needs them); the
server stack loads lazily so ``repro.api`` can import this package
without a circular import.
"""

from __future__ import annotations

from typing import Any

from repro.serve.jobs import (
    BACKENDS,
    JOB_KINDS,
    InferenceJob,
    JobSpec,
    ReliabilityJob,
    TrainingJob,
    check_tenant,
    job_from_dict,
)

__all__ = [
    "BACKENDS",
    "JOB_KINDS",
    "JobSpec",
    "InferenceJob",
    "TrainingJob",
    "ReliabilityJob",
    "check_tenant",
    "job_from_dict",
    "JobServer",
    "ServerConfig",
    "ProgrammedStateCache",
    "ServeClient",
    "batch_invariant",
    "coalesce_plan",
    "job_report",
    "validate_job_report",
    "validate_stats_report",
]

#: Lazily resolved server-stack exports -> defining submodule.  The
#: server imports repro.api (which imports repro.serve.jobs), so an
#: eager import here would be circular.
_LAZY = {
    "JobServer": "repro.serve.server",
    "ServerConfig": "repro.serve.server",
    "job_report": "repro.serve.server",
    "validate_job_report": "repro.serve.server",
    "validate_stats_report": "repro.serve.server",
    "ProgrammedStateCache": "repro.serve.cache",
    "ServeClient": "repro.serve.client",
    "batch_invariant": "repro.serve.batcher",
    "coalesce_plan": "repro.serve.scheduler",
}


def __getattr__(name: str) -> Any:
    module_path = _LAZY.get(name)
    if module_path is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(module_path), name)


def __dir__() -> list:
    return sorted(set(__all__))
