"""Blocking HTTP client for :class:`repro.serve.server.JobServer`.

A thin stdlib (:mod:`http.client`) wrapper used by the tests, the CI
smoke run, and any tenant that wants the server's batching/caching
without speaking raw HTTP.  One :class:`ServeClient` is one tenant's
connection factory — it opens a fresh connection per request (the
server closes connections after each response), so a single client
instance may be shared across threads that each submit their own
jobs.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.serve.jobs import JobSpec, job_from_dict  # noqa: F401


class ServeError(RuntimeError):
    """A non-2xx answer from the job server."""

    def __init__(self, status: int, document: Dict[str, Any]) -> None:
        super().__init__(
            f"server answered {status}: "
            f"{document.get('error', document)}"
        )
        self.status = status
        self.document = document


class ServeClient:
    """Submit job specs and collect reports, synchronously."""

    def __init__(
        self, host: str, port: int, timeout: float = 60.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- raw request ---------------------------------------------------------
    def request_text(
        self,
        method: str,
        path: str,
        document: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, str]:
        """One round trip; returns ``(status, raw body text)``."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = (
                json.dumps(document).encode()
                if document is not None
                else None
            )
            headers = {"Content-Type": "application/json"} if body else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            payload = response.read()
            return response.status, payload.decode()
        finally:
            connection.close()

    def request(
        self,
        method: str,
        path: str,
        document: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """One round trip; returns ``(status, parsed JSON body)``."""
        status, text = self.request_text(method, path, document)
        return status, json.loads(text or "null")

    def _expect(
        self,
        method: str,
        path: str,
        document: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        status, answer = self.request(method, path, document)
        if status >= 400:
            raise ServeError(status, answer)
        return answer

    # -- job API -------------------------------------------------------------
    def submit(self, job: Union[JobSpec, Dict[str, Any]]) -> str:
        """POST one job spec (or its wire dict); returns the job id."""
        document = job.to_dict() if isinstance(job, JobSpec) else job
        answer = self._expect("POST", "/v1/jobs", document)
        return answer["job_id"]

    def report(self, job_id: str, wait: bool = True) -> Dict[str, Any]:
        """The job's report (blocking until done when ``wait``)."""
        suffix = "?wait=1" if wait else ""
        return self._expect("GET", f"/v1/jobs/{job_id}{suffix}")

    def run(self, job: Union[JobSpec, Dict[str, Any]]) -> Dict[str, Any]:
        """Submit one job and block for its report."""
        return self.report(self.submit(job), wait=True)

    def run_many(
        self, jobs: Sequence[Union[JobSpec, Dict[str, Any]]]
    ) -> List[Dict[str, Any]]:
        """Submit every job first, then collect reports in order.

        Submitting the whole batch before waiting lets the server's
        dispatcher see the jobs together and coalesce them.
        """
        job_ids = [self.submit(job) for job in jobs]
        return [self.report(job_id, wait=True) for job_id in job_ids]

    # -- introspection -------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """The server's ``/v1/stats`` document."""
        return self._expect("GET", "/v1/stats")

    def metrics_text(self) -> str:
        """The raw Prometheus exposition from ``/v1/metrics``."""
        status, text = self.request_text("GET", "/v1/metrics")
        if status >= 400:
            raise ServeError(status, {"error": text})
        return text

    def metrics(self) -> Dict[Any, float]:
        """``/v1/metrics`` parsed back into ``sample key -> value``."""
        from repro.telemetry import parse_prometheus

        return dict(parse_prometheus(self.metrics_text()))

    def trace(self, job_id: str) -> Dict[str, Any]:
        """One job's trace document from ``/v1/traces/<job_id>``."""
        return self._expect("GET", f"/v1/traces/{job_id}")

    def health(self) -> bool:
        """Whether the server answers its liveness probe."""
        try:
            answer = self._expect("GET", "/v1/healthz")
        except (OSError, ServeError):
            return False
        return bool(answer.get("ok"))


__all__ = ["ServeClient", "ServeError"]
