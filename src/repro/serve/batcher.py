"""Cross-request batching: coalesce inference jobs, bit-exactly.

The vectorized backend collapses a batch of crossbar evaluations into
a handful of matmuls, so evaluating N requests' inputs in one forward
pass costs barely more than one request — *if* the result of each row
does not depend on which other rows share the batch.  That
batch-invariance holds exactly when

* ``activation_range`` is pinned (with ``activation_range=None`` the
  activation quantization scale is calibrated from the observed batch
  max — a batch-composition dependence), and
* the pipeline is ideal (``config.is_ideal``): the datapath is exact
  integer arithmetic in float64, so sums are exact regardless of BLAS
  blocking, and stochastic read effects (which consume per-call RNG
  shaped by the batch) are off.

Under that predicate a coalesced forward is bit-identical to running
each member job alone, on both backends and on both the fast-ideal
and full bit-serial paths (covered by the determinism tests).  Jobs
whose config fails the predicate are simply never coalesced — the
scheduler falls back to singleton execution through the exact same
code path, trading throughput, never correctness.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

import numpy as np

from repro.serve.jobs import InferenceJob
from repro.telemetry import NULL_COLLECTOR, TelemetryLike
from repro.xbar.engine import CrossbarEngineConfig

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids the cycle)
    from repro.api import InferenceResult, Simulator


def batch_invariant(config: CrossbarEngineConfig) -> bool:
    """Whether forwards under ``config`` may be coalesced bit-exactly.

    True when each output row is a function of its input row alone:
    a pinned activation quantization range and a fully ideal pipeline
    (exact integer arithmetic, no stochastic read path).  See the
    module docstring for why both conditions are necessary.
    """
    return config.activation_range is not None and config.is_ideal


def run_coalesced(
    simulator: "Simulator",
    jobs: Sequence[InferenceJob],
    collector: TelemetryLike = NULL_COLLECTOR,
) -> List["InferenceResult"]:
    """One batched crossbar evaluation for several inference jobs.

    All ``jobs`` must share the simulator's programmed state (same
    workload/seed — enforced by :meth:`Simulator.run`'s spec check on
    the singleton path and by the scheduler's grouping here).  Each
    job's inputs are generated from its own spec, concatenated into
    one forward stream, evaluated in slabs of the *largest* member
    batch size, and split back per job.  Per-job accuracy, counts,
    and outputs are exactly what the singleton path would produce;
    only the shared engine counters (``stats``) reflect the coalesced
    schedule, which is why job reports carry per-job output digests
    rather than cumulative engine stats.
    """
    from repro.api import InferenceResult

    if not jobs:
        return []
    per_job: List[Tuple[np.ndarray, np.ndarray]] = [
        simulator.make_inputs(job.count, input_seed=job.input_seed)
        for job in jobs
    ]
    inputs = np.concatenate([pair[0] for pair in per_job], axis=0)
    total = inputs.shape[0]
    slab = max(job.batch for job in jobs)
    outputs = []
    with collector.span("coalesced_forward"), \
            collector.timed("latency/engine_evaluate_seconds"):
        for start in range(0, total, slab):
            outputs.append(
                simulator.network.forward(
                    inputs[start : start + slab], training=False
                )
            )
    logits = np.concatenate(outputs, axis=0)
    collector.count("coalesced.batches", 1)
    collector.count("coalesced.jobs", len(jobs))
    collector.count("coalesced.inputs", total)

    results: List[InferenceResult] = []
    offset = 0
    for job, (_, labels) in zip(jobs, per_job):
        job_logits = logits[offset : offset + job.count]
        offset += job.count
        accuracy = float(
            np.mean(np.argmax(job_logits, axis=1) == labels)
        )
        results.append(
            InferenceResult(
                accuracy=accuracy,
                count=job.count,
                outputs=job_logits,
                stats=simulator.stats(),
                engine_info=simulator.engine_info(),
            )
        )
    return results


def coalesce_stats(collector: TelemetryLike) -> Dict[str, int]:
    """The batcher's own counters as a plain dict (zeros if unused)."""
    return {
        "batches": int(collector.get("coalesced.batches")),
        "jobs": int(collector.get("coalesced.jobs")),
        "inputs": int(collector.get("coalesced.inputs")),
    }


__all__ = ["batch_invariant", "run_coalesced", "coalesce_stats"]
