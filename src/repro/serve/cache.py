"""Programmed-crossbar state cache keyed by the honest content hash.

Programming a workload's weights onto the simulated arrays is the
expensive part of serving it (bit-slicing, per-tile programming,
device effects); the weights themselves derive deterministically from
``(workload, seed)``.  This cache therefore keeps whole deployed
:class:`~repro.api.Simulator` instances keyed by
``(weights_hash, device_config_hash)`` — the *content* identity of
the programmed state, computed from the actual parameter arrays and
the full engine pipeline config rather than trusted from the request
— so repeat tenants (and coalesced groups) skip reprogramming
entirely.

Entries are inference-only: a training job mutates the programmed
state, so the server always runs training on a fresh, uncached
simulator.  Lookups are single-flight per key: concurrent misses on
one key build the deployment once; the losers of the race count as
hits.  Per-model ``threading.Lock`` s ride along with each entry —
the arrays are one physical resource, so jobs sharing an entry
serialize on its lock while distinct entries run in parallel across
the worker pool.

The cache is **bounded**: at most ``max_entries`` deployments stay
resident, evicted least-recently-leased first (a long-lived
multi-tenant server would otherwise hold one programmed simulator per
tenant forever).  Eviction only drops the cache's reference — a job
still holding an evicted entry's lock keeps using its simulator
safely; the entry simply won't be handed out again.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field as dataclass_field
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.serve.jobs import JobSpec
from repro.telemetry import Collector, TelemetryLike, wall_clock
from repro.xbar.engine import CrossbarEngineConfig

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids the cycle)
    from repro.api import Simulator

CacheKey = Tuple[str, str]

#: Default residency bound: deployments are a few MB of programmed
#: arrays each, and a serving box rarely juggles more than a handful
#: of distinct (workload, seed, backend) tenants at once.
DEFAULT_MAX_ENTRIES = 16


@dataclass
class CacheEntry:
    """One cached deployment plus its serialization lock."""

    simulator: "Simulator"
    key: CacheKey
    lock: threading.Lock = dataclass_field(default_factory=threading.Lock)


class ProgrammedStateCache:
    """Deployed-simulator cache with single-flight misses.

    ``collector`` receives the cache counters (``cache/hits``,
    ``cache/misses``, ``cache/entries``, ``cache/evictions``) — scope
    it under ``serve/`` in the server so the CI smoke can assert
    ``serve/cache/hits > 0``.  The hit/miss tally is deterministic for
    a drained job set regardless of worker interleaving: each *job*
    counts exactly once, and a key's builder is elected under the
    cache lock, so hits = jobs - distinct keys.  ``max_entries``
    bounds residency LRU-style (``None`` disables the bound).
    """

    def __init__(
        self,
        engine_config: Optional[CrossbarEngineConfig] = None,
        collector: Optional[TelemetryLike] = None,
        max_entries: Optional[int] = DEFAULT_MAX_ENTRIES,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1 or None, got {max_entries}"
            )
        self.engine_config = engine_config or CrossbarEngineConfig()
        self.max_entries = max_entries
        # A private collector by default so stats() always counts,
        # even when nobody wired telemetry.
        self._collector = (
            collector if collector is not None else Collector()
        )
        self._entries: "OrderedDict[CacheKey, CacheEntry]" = OrderedDict()
        self._building: Dict[CacheKey, threading.Event] = {}
        self._lock = threading.Lock()

    def resolved_config(
        self, backend: Optional[str]
    ) -> CrossbarEngineConfig:
        """The engine config a job with ``backend`` actually runs under."""
        from dataclasses import replace

        config = self.engine_config
        if backend is not None and backend != config.backend:
            config = replace(config, backend=backend)
        return config

    def key_for(self, job: JobSpec) -> CacheKey:
        """The honest ``(weights_hash, device_config_hash)`` of a job.

        Builds the (undeployed) network to hash its actual parameter
        arrays — the key certifies content, not request metadata.
        """
        from repro.api import Simulator

        probe = Simulator.from_workload(
            job.workload, seed=job.seed, deploy=False
        )
        return probe.cache_key(self.resolved_config(job.backend))

    def lease(self, job: JobSpec) -> CacheEntry:
        """The deployed entry for ``job``, building it on first use.

        Thread-safe and single-flight: exactly one caller per key
        deploys; everyone else blocks on the build and records a hit.
        Callers must hold ``entry.lock`` while forwarding through the
        entry's simulator.
        """
        from repro.api import Simulator

        lookup_started = wall_clock()
        key = self.key_for(job)
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    # Leasing refreshes recency for the LRU bound.
                    self._entries.move_to_end(key)
                    self._collector.count("cache/hits", 1)
                    # Observed under the cache lock: the collector may
                    # be shared with the server's event loop, and the
                    # lock already serializes the counter writes.
                    self._collector.observe(
                        "cache/lookup_seconds",
                        wall_clock() - lookup_started,
                    )
                    return entry
                pending = self._building.get(key)
                if pending is None:
                    pending = threading.Event()
                    self._building[key] = pending
                    builder = True
                else:
                    # Lost the election: this job still found the
                    # programmed state it needed without programming
                    # anything itself — count it as a hit once the
                    # builder finishes.
                    builder = False
            if builder:
                try:
                    # Each cached deployment carries a private
                    # collector: the engines write their event
                    # counters there, and the server snapshots the
                    # tree around each run to price per-job energy.
                    simulator = Simulator.from_workload(
                        job.workload,
                        engine_config=self.resolved_config(job.backend),
                        seed=job.seed,
                        collector=Collector(record_spans=False),
                    )
                    entry = CacheEntry(simulator=simulator, key=key)
                    with self._lock:
                        self._entries[key] = entry
                        self._entries.move_to_end(key)
                        self._collector.count("cache/misses", 1)
                        while (
                            self.max_entries is not None
                            and len(self._entries) > self.max_entries
                        ):
                            self._entries.popitem(last=False)
                            self._collector.count("cache/evictions", 1)
                        self._collector.set(
                            "cache/entries", len(self._entries)
                        )
                        self._collector.observe(
                            "cache/lookup_seconds",
                            wall_clock() - lookup_started,
                        )
                finally:
                    with self._lock:
                        self._building.pop(key, None)
                    pending.set()
                return entry
            pending.wait()
            # Loop: the entry is (almost always) present now; fall
            # through to the hit path so the tally stays exact even if
            # the builder failed and the entry must be rebuilt.

    def stats(self) -> Dict[str, int]:
        """Cache counters as a plain dict."""
        return {
            "hits": int(self._collector.get("cache/hits")),
            "misses": int(self._collector.get("cache/misses")),
            "entries": len(self._entries),
            "evictions": int(self._collector.get("cache/evictions")),
        }

    def clear(self) -> None:
        """Drop every cached deployment (counters keep their totals)."""
        with self._lock:
            self._entries.clear()
            self._collector.set("cache/entries", 0)


__all__ = [
    "CacheEntry",
    "CacheKey",
    "DEFAULT_MAX_ENTRIES",
    "ProgrammedStateCache",
]
