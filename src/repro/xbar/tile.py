"""Partitioning a large matrix over multiple crossbar arrays (Fig. 3c).

"For a large matrix that can not fit in a single array, the input and
the output shall be partitioned and grouped into multiple arrays ...
The output of each array is a partial sum, which is collected
horizontally and summed vertically to generate the final calculation
results."  :class:`TiledCrossbar` implements exactly that: the logical
``(K, N)`` level matrix is cut into an ``R x C`` grid of physical
arrays; an MVM drives each row block with its slice of the input and
adds the per-block partial sums.

Because each physical array digitises its own columns, partial sums are
quantized *before* the vertical add — the same place the real design
pays its ADC error.
"""

from __future__ import annotations

from math import ceil
from typing import List, Optional, Tuple

import numpy as np

from repro.utils.rng import RngLike, spawn_rngs
from repro.utils.validation import check_positive
from repro.xbar.adc import ADCConfig
from repro.xbar.crossbar import CrossbarArray
from repro.xbar.device import DeviceConfig


def tile_grid(
    logical_rows: int, logical_cols: int, array_rows: int, array_cols: int
) -> Tuple[int, int]:
    """Number of (row, col) array blocks covering a logical matrix."""
    check_positive("logical_rows", logical_rows)
    check_positive("logical_cols", logical_cols)
    check_positive("array_rows", array_rows)
    check_positive("array_cols", array_cols)
    return ceil(logical_rows / array_rows), ceil(logical_cols / array_cols)


class TiledCrossbar:
    """A logical matrix spread over a grid of physical arrays."""

    def __init__(
        self,
        logical_rows: int,
        logical_cols: int,
        device: DeviceConfig,
        array_rows: int = 128,
        array_cols: int = 128,
        adc: Optional[ADCConfig] = None,
        rng: RngLike = None,
    ) -> None:
        self.logical_rows = logical_rows
        self.logical_cols = logical_cols
        self.array_rows = array_rows
        self.array_cols = array_cols
        self.device = device
        grid_rows, grid_cols = tile_grid(
            logical_rows, logical_cols, array_rows, array_cols
        )
        self.grid_rows = grid_rows
        self.grid_cols = grid_cols
        rngs = iter(spawn_rngs(rng, grid_rows * grid_cols))
        self.arrays: List[List[CrossbarArray]] = [
            [
                CrossbarArray(
                    array_rows, array_cols, device, adc=adc, rng=next(rngs)
                )
                for _ in range(grid_cols)
            ]
            for _ in range(grid_rows)
        ]
        self._effective_cache: Optional[np.ndarray] = None
        self._level_block_cache: Optional[np.ndarray] = None

    @property
    def array_count(self) -> int:
        """Physical arrays used by this logical matrix."""
        return self.grid_rows * self.grid_cols

    def program(self, levels: np.ndarray) -> None:
        """Distribute a logical level matrix over the array grid."""
        levels = np.asarray(levels)
        if levels.shape != (self.logical_rows, self.logical_cols):
            raise ValueError(
                f"levels shape {levels.shape} != logical "
                f"({self.logical_rows}, {self.logical_cols})"
            )
        for block_row in range(self.grid_rows):
            row_start = block_row * self.array_rows
            row_end = min(row_start + self.array_rows, self.logical_rows)
            for block_col in range(self.grid_cols):
                col_start = block_col * self.array_cols
                col_end = min(col_start + self.array_cols, self.logical_cols)
                self.arrays[block_row][block_col].program(
                    levels[row_start:row_end, col_start:col_end]
                )
        # Programming changes the physical state; both derived caches
        # (effective logical matrix, stacked level tensor) are stale
        # from here on.
        self._effective_cache = None
        self._level_block_cache = None

    def mvm(self, drive: np.ndarray) -> np.ndarray:
        """Tiled MVM: per-array digitised partial sums, added vertically.

        ``drive`` is ``(batch, logical_rows)`` non-negative amplitudes;
        returns ``(batch, logical_cols)`` level-unit outputs.
        """
        drive = np.asarray(drive, dtype=np.float64)
        if drive.ndim == 1:
            drive = drive[None, :]
        if drive.shape[1] != self.logical_rows:
            raise ValueError(
                f"drive width {drive.shape[1]} != logical rows "
                f"{self.logical_rows}"
            )
        batch = drive.shape[0]
        output = np.zeros((batch, self.logical_cols))
        for block_row in range(self.grid_rows):
            row_start = block_row * self.array_rows
            row_end = min(row_start + self.array_rows, self.logical_rows)
            block_drive = np.zeros((batch, self.array_rows))
            block_drive[:, : row_end - row_start] = drive[:, row_start:row_end]
            for block_col in range(self.grid_cols):
                col_start = block_col * self.array_cols
                col_end = min(col_start + self.array_cols, self.logical_cols)
                partial = self.arrays[block_row][block_col].mvm(block_drive)
                output[:, col_start:col_end] += partial[
                    :, : col_end - col_start
                ]
        return output

    def level_blocks(self) -> np.ndarray:
        """Stacked effective level matrices of every physical array.

        Returns a read-only ``(grid_rows, grid_cols, array_rows,
        array_cols)`` tensor — the exact per-array state a read
        multiplies by, which the vectorized backend contracts against
        in one batched matmul instead of looping arrays.  Cached;
        invalidated by :meth:`program`.
        """
        if self._level_block_cache is None:
            stack = np.empty(
                (
                    self.grid_rows,
                    self.grid_cols,
                    self.array_rows,
                    self.array_cols,
                )
            )
            for block_row in range(self.grid_rows):
                for block_col in range(self.grid_cols):
                    stack[block_row, block_col] = self.arrays[block_row][
                        block_col
                    ].effective_levels()
            stack.flags.writeable = False
            self._level_block_cache = stack
        return self._level_block_cache

    def effective_logical(self) -> np.ndarray:
        """The logical matrix the arrays actually hold, in level units.

        Includes programming error and stuck faults (whatever got
        written), assembled from each array's effective levels.  This
        is what an ideal read path would multiply by — the basis of the
        engine's linear fast path.  Cached; invalidated by
        :meth:`program`.
        """
        if self._effective_cache is not None:
            return self._effective_cache
        out = np.zeros((self.logical_rows, self.logical_cols))
        for block_row in range(self.grid_rows):
            row_start = block_row * self.array_rows
            row_end = min(row_start + self.array_rows, self.logical_rows)
            for block_col in range(self.grid_cols):
                col_start = block_col * self.array_cols
                col_end = min(col_start + self.array_cols, self.logical_cols)
                levels = self.arrays[block_row][block_col].effective_levels()
                out[row_start:row_end, col_start:col_end] = levels[
                    : row_end - row_start, : col_end - col_start
                ]
        self._effective_cache = out
        return out

    def fault_census(self) -> dict:
        """Stuck-cell totals across this tile's physical arrays.

        JSON-able: grid geometry, aggregate counts, and the per-array
        breakdown (row-major) — the per-tile observability the
        reliability campaigns report.
        """
        per_array = [
            array.fault_census() for row in self.arrays for array in row
        ]
        return {
            "grid": [self.grid_rows, self.grid_cols],
            "cells": sum(entry["cells"] for entry in per_array),
            "stuck_off": sum(entry["stuck_off"] for entry in per_array),
            "stuck_on": sum(entry["stuck_on"] for entry in per_array),
            "arrays": per_array,
        }

    @property
    def total_programs(self) -> int:
        """Sum of program operations across all arrays."""
        return sum(a.programs for row in self.arrays for a in row)

    @property
    def total_reads(self) -> int:
        """Sum of read (MVM) operations across all arrays."""
        return sum(a.reads for row in self.arrays for a in row)

    def __repr__(self) -> str:
        return (
            f"TiledCrossbar({self.logical_rows}x{self.logical_cols} over "
            f"{self.grid_rows}x{self.grid_cols} arrays of "
            f"{self.array_rows}x{self.array_cols})"
        )
