"""Input drivers: weighted spike coding and analog DAC (Sec. III-A-3(a)).

PipeLayer's *spike driver* "converts the input to a sequence of
spikes" and uses a *weighted spike coding* scheme: an ``a``-bit input
integer is presented bit-serially over ``a`` sub-cycles, the bit of
significance ``j`` driving the word line during sub-cycle ``j``; the
digitised column outputs are shifted by ``j`` and accumulated.  This
replaces a power-hungry multi-level DAC with binary drive — the paper
credits it with reduced area and energy (after ISAAC [9]).

:class:`SpikeCoder` performs the decomposition and the matching
shift-accumulate; :class:`AnalogDAC` models the alternative multi-level
driver, which applies the (quantized) value in a single sub-cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class InputEncoding:
    """How activations are quantized before driving word lines.

    Parameters
    ----------
    bits:
        Activation resolution; values map to integers in
        ``[0, 2**bits - 1]`` over the calibrated range.
    """

    bits: int = 8

    def __post_init__(self) -> None:
        check_positive("bits", self.bits)

    @property
    def max_int(self) -> int:
        """Largest representable activation integer."""
        return 2**self.bits - 1


class SpikeCoder:
    """Weighted spike (bit-serial) input coding.

    Operates on *non-negative integer* activation matrices; the caller
    (the crossbar engine) handles sign by splitting into positive and
    negative streams, exactly as differential input drive would.
    """

    def __init__(self, encoding: InputEncoding) -> None:
        self.encoding = encoding

    def decompose(self, integers: np.ndarray) -> List[np.ndarray]:
        """Split integers into per-bit binary planes, LSB first.

        Each returned array has the input's shape with values in
        ``{0.0, 1.0}`` — the word-line drive pattern of one sub-cycle.
        """
        integers = np.asarray(integers)
        if np.any(integers < 0):
            raise ValueError("spike coding requires non-negative integers")
        if np.any(integers > self.encoding.max_int):
            raise ValueError(
                f"integers exceed {self.encoding.bits}-bit range"
            )
        work = integers.astype(np.int64)
        planes = []
        for _ in range(self.encoding.bits):
            planes.append((work & 1).astype(np.float64))
            work >>= 1
        return planes

    def accumulate(self, partials: List[np.ndarray]) -> np.ndarray:
        """Shift-accumulate per-bit results: ``sum(partials[j] << j)``."""
        if len(partials) != self.encoding.bits:
            raise ValueError(
                f"expected {self.encoding.bits} partials, got {len(partials)}"
            )
        total = np.zeros_like(np.asarray(partials[0], dtype=np.float64))
        for significance, partial in enumerate(partials):
            total = total + np.asarray(partial, dtype=np.float64) * (
                2.0**significance
            )
        return total

    @property
    def subcycles(self) -> int:
        """Sub-cycles per MVM (one per input bit)."""
        return self.encoding.bits


class RateCoder:
    """Unary (rate) spike coding: the baseline weighted coding beats.

    The integer activation is presented as that many unit spikes over
    ``2**bits - 1`` sub-cycles, all of weight 1.  Functionally
    equivalent to the weighted scheme, but a ``b``-bit input costs
    ``2**b - 1`` sub-cycles instead of ``b`` — the exponential-vs-
    linear gap that motivates PipeLayer's "weighted spike coding scheme
    to further reduce the area and energy overhead" (Sec. III-A-3(a)).
    """

    def __init__(self, encoding: InputEncoding) -> None:
        self.encoding = encoding

    def decompose(self, integers: np.ndarray) -> List[np.ndarray]:
        """Unary planes: plane ``j`` drives where ``value > j``."""
        integers = np.asarray(integers)
        if np.any(integers < 0):
            raise ValueError("rate coding requires non-negative integers")
        if np.any(integers > self.encoding.max_int):
            raise ValueError(
                f"integers exceed {self.encoding.bits}-bit range"
            )
        work = integers.astype(np.int64)
        return [
            (work > threshold).astype(np.float64)
            for threshold in range(self.encoding.max_int)
        ]

    def accumulate(self, partials: List[np.ndarray]) -> np.ndarray:
        """Plain sum: every spike carries weight one."""
        if len(partials) != self.subcycles:
            raise ValueError(
                f"expected {self.subcycles} partials, got {len(partials)}"
            )
        total = np.zeros_like(np.asarray(partials[0], dtype=np.float64))
        for partial in partials:
            total = total + np.asarray(partial, dtype=np.float64)
        return total

    @property
    def subcycles(self) -> int:
        """Sub-cycles per MVM: one per representable level."""
        return self.encoding.max_int


class AnalogDAC:
    """Multi-level voltage driver: one sub-cycle, quantized amplitude.

    The integer activation drives the word line as an analog voltage
    proportional to its value; the full MVM completes in one sub-cycle
    at the cost of a ``bits``-bit DAC per word line.
    """

    def __init__(self, encoding: InputEncoding) -> None:
        self.encoding = encoding

    def drive(self, integers: np.ndarray) -> np.ndarray:
        """Word-line amplitudes (in integer units) for one sub-cycle."""
        integers = np.asarray(integers)
        if np.any(integers < 0) or np.any(integers > self.encoding.max_int):
            raise ValueError(
                f"integers must be in [0, {self.encoding.max_int}]"
            )
        return integers.astype(np.float64)

    @property
    def subcycles(self) -> int:
        """Sub-cycles per MVM (always one)."""
        return 1


def quantize_activations(
    values: np.ndarray, encoding: InputEncoding, max_abs: float
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Split signed activations into integer positive/negative streams.

    Returns ``(pos_int, neg_int, scale)`` where the original values are
    approximated by ``(pos_int - neg_int) * scale``.  ``max_abs`` is the
    calibration amplitude; values beyond it clip (driver saturation).
    """
    if max_abs <= 0:
        raise ValueError(f"max_abs must be > 0, got {max_abs}")
    values = np.asarray(values, dtype=np.float64)
    scale = max_abs / encoding.max_int
    quantized = np.rint(np.clip(values, -max_abs, max_abs) / scale)
    positive = np.maximum(quantized, 0.0).astype(np.int64)
    negative = np.maximum(-quantized, 0.0).astype(np.int64)
    return positive, negative, scale
