"""Activation-range calibration for crossbar deployment.

The spike driver quantizes activations over a fixed voltage range; by
default the engine calibrates that range *per call* (the max absolute
activation of the batch), which real hardware cannot do — the DAC
reference is set once at deployment.  This module implements the
standard fix: run a calibration set through the float network, record
per-layer activation statistics, and freeze each layer's
``activation_range`` before deployment.

Two policies are provided:

* ``max`` — the largest absolute input activation seen (no clipping on
  the calibration set, widest quantization step);
* ``percentile`` — a high percentile of |activation| (clips rare
  outliers in exchange for a finer step over the common range; usually
  more accurate at low bit widths).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

import numpy as np

from repro.nn.layers import Conv2D, Dense, FractionalStridedConv2D
from repro.nn.network import Sequential
from repro.utils.im2col import im2col, insert_zeros, pad_nchw
from repro.utils.validation import check_choice, check_in_range, check_positive
from repro.xbar.engine import CrossbarEngineConfig


@dataclass(frozen=True)
class LayerCalibration:
    """Observed input-activation statistics of one weight layer."""

    layer_name: str
    max_abs: float
    percentile_99: float
    mean_abs: float

    def range_for(self, policy: str) -> float:
        """The activation range the chosen policy freezes."""
        check_choice("policy", policy, ("max", "percentile"))
        value = self.max_abs if policy == "max" else self.percentile_99
        # Guard: an all-zero calibration trace still needs a positive
        # range for the quantizer.
        return max(value, 1e-12)


def collect_calibration(
    network: Sequential,
    calibration_images: np.ndarray,
    percentile: float = 99.0,
) -> Dict[str, LayerCalibration]:
    """Record per-layer input-activation statistics on a float run.

    The statistics describe what each crossbar's *word lines* will see:
    for a Dense layer its input vector, for a Conv2D layer the im2col
    rows (each receptive field), matching how the engine quantizes.
    """
    check_positive("calibration examples", calibration_images.shape[0])
    check_in_range("percentile", percentile, 50.0, 100.0)
    stats: Dict[str, LayerCalibration] = {}
    activations = np.asarray(calibration_images, dtype=np.float64)
    for layer in network.layers:
        if isinstance(layer, Dense):
            drive = activations
        elif isinstance(layer, Conv2D):
            drive = im2col(
                activations,
                layer.kernel_size,
                layer.kernel_size,
                layer.stride,
                layer.pad,
            )
        elif isinstance(layer, FractionalStridedConv2D):
            extended = pad_nchw(
                insert_zeros(activations, layer.stride),
                layer.kernel_size - 1 - layer.pad,
            )
            drive = im2col(extended, layer.kernel_size, layer.kernel_size)
        else:
            drive = None
        if drive is not None:
            magnitudes = np.abs(drive)
            # Percentile over the *nonzero* drive values: ReLU outputs
            # and (especially) zero-inserted FCNN maps are mostly exact
            # zeros, which would otherwise drag the percentile far
            # below the range the word lines actually use.
            nonzero = magnitudes[magnitudes > 0]
            reference = nonzero if nonzero.size else magnitudes.reshape(-1)
            stats[layer.name] = LayerCalibration(
                layer_name=layer.name,
                max_abs=float(magnitudes.max()),
                percentile_99=float(np.percentile(reference, percentile)),
                mean_abs=float(magnitudes.mean()),
            )
        activations = layer.forward(activations, training=False)
    if not stats:
        raise ValueError("network has no Dense or Conv2D layers")
    return stats


def calibrated_configs(
    base: CrossbarEngineConfig,
    calibration: Dict[str, LayerCalibration],
    policy: str = "percentile",
) -> Dict[str, CrossbarEngineConfig]:
    """Per-layer engine configs with frozen activation ranges."""
    check_choice("policy", policy, ("max", "percentile"))
    return {
        name: replace(base, activation_range=stats.range_for(policy))
        for name, stats in calibration.items()
    }


def deploy_calibrated(
    network: Sequential,
    base: CrossbarEngineConfig,
    calibration_images: np.ndarray,
    policy: str = "percentile",
    rng=None,
):
    """Calibrate and deploy in one step.

    Returns the :class:`~repro.core.compiler.Deployment`; each layer's
    engine carries its own frozen activation range.
    """
    from repro.core.compiler import deploy_network

    calibration = collect_calibration(network, calibration_images)
    configs = calibrated_configs(base, calibration, policy=policy)
    deployment = deploy_network(network, base, rng=rng)
    for name, engine in deployment.engines.items():
        if name in configs:
            engine.config = configs[name]
    return deployment


def calibration_report(
    calibration: Dict[str, LayerCalibration]
) -> List[str]:
    """Human-readable per-layer calibration table."""
    lines = [
        f"{'layer':<24s}{'max|x|':>12s}{'p99|x|':>12s}{'mean|x|':>12s}"
    ]
    for name, stats in calibration.items():
        lines.append(
            f"{name:<24s}{stats.max_abs:>12.4g}"
            f"{stats.percentile_99:>12.4g}{stats.mean_abs:>12.4g}"
        )
    return lines
