"""A single ReRAM crossbar array performing analog MVM (Fig. 3a-b).

The matrix is programmed into cell conductances; input signals drive
the word lines; the current at the end of each bit line is the result
of the matrix-vector multiplication (Sec. II-B).  The model works in
*level units* (one unit = the current of one conductance step under
unit word-line drive), with explicit conversion through the physical
conductance domain so that programming noise, stuck cells, read noise,
and ADC quantization all act where they do in the circuit.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.rng import RngLike, new_rng
from repro.utils.validation import check_positive
from repro.xbar.adc import ADCConfig, IntegrateFireADC
from repro.xbar.device import DeviceConfig, DeviceModel


class CrossbarArray:
    """One physical ``rows x cols`` array of programmable cells.

    Parameters
    ----------
    rows, cols:
        Physical word-line / bit-line counts.
    device:
        Cell electrical model.
    adc:
        Converter applied to every column read.  ``None`` selects a
        lossless converter for binary drive (sized for
        ``rows * (levels - 1)``).
    rng:
        Seed or generator for programming and read noise.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        device: DeviceConfig,
        adc: Optional[ADCConfig] = None,
        rng: RngLike = None,
    ) -> None:
        check_positive("rows", rows)
        check_positive("cols", cols)
        self.rows = rows
        self.cols = cols
        self.device = device
        self._model = DeviceModel(device, rng=new_rng(rng))
        if adc is None:
            adc = ADCConfig.lossless_for(rows, device.levels)
        self.adc = IntegrateFireADC(adc)
        self._levels: Optional[np.ndarray] = None
        self._conductance: Optional[np.ndarray] = None
        self.programs = 0
        self.reads = 0

    # -- programming -------------------------------------------------------
    def program(self, levels: np.ndarray) -> None:
        """Write a level matrix into the array (with device noise).

        ``levels`` must be ``(rows, cols)`` integers in the cell's
        level range; smaller matrices may be passed and are placed in
        the top-left corner with the rest of the array at level 0.
        """
        levels = np.asarray(levels)
        if levels.ndim != 2:
            raise ValueError(f"levels must be 2-D, got shape {levels.shape}")
        if levels.shape[0] > self.rows or levels.shape[1] > self.cols:
            raise ValueError(
                f"levels {levels.shape} exceed array ({self.rows}, {self.cols})"
            )
        full = np.zeros((self.rows, self.cols), dtype=np.int64)
        full[: levels.shape[0], : levels.shape[1]] = levels
        # The *level matrix* is the computational state: for an ideal
        # device it is exactly integer-valued, so both evaluation
        # backends compute bit-identical dot products no matter how
        # BLAS associates the sums.  The conductance matrix is derived
        # physical bookkeeping.
        self._levels = self._model.program_levels(full)
        self._levels.flags.writeable = False
        self._conductance = (
            self.device.g_min + self._levels * self.device.g_step
        )
        self.programs += 1

    @property
    def is_programmed(self) -> bool:
        """Whether the array holds a programmed matrix."""
        return self._levels is not None

    @property
    def conductance(self) -> np.ndarray:
        """The programmed conductance matrix (siemens), read-only view."""
        if self._conductance is None:
            raise RuntimeError("array has not been programmed")
        view = self._conductance.view()
        view.flags.writeable = False
        return view

    def read_noise_levels(self, shape) -> np.ndarray:
        """Draw per-read output noise from *this array's* stream.

        The explicit device-noise seam shared by both evaluation
        backends: one stacked draw of shape ``(subcycles, batch, cols)``
        consumes the generator exactly like that many sequential
        per-subcycle draws, which is what makes the vectorized backend
        bit-identical to the loop path under a shared seed.
        """
        return self._model.read_noise_levels(shape)

    def transient_upset_levels(self, shape) -> np.ndarray:
        """Per-read soft-error impulses from *this array's* own stream.

        Same stacked-equals-sequential contract as
        :meth:`read_noise_levels`; the upsets live on a dedicated child
        stream so enabling them never shifts the read-noise draws.
        """
        return self._model.transient_upset_levels(shape)

    def drift_factors(self, events: int) -> np.ndarray:
        """Drift decay for the next ``events`` reads (advances the clock)."""
        return self._model.drift_factors(events)

    def fault_census(self) -> dict:
        """Stuck-cell counts of this array's persistent defect mask."""
        return self._model.fault_census()

    def effective_levels(self) -> np.ndarray:
        """Stored matrix in level units, including programming error.

        This is the exact matrix every read multiplies by — the tensor
        the vectorized backend stacks, and the basis of the engine's
        linear fast path.
        """
        if self._levels is None:
            raise RuntimeError("array has not been programmed")
        return self._levels

    # -- evaluation -----------------------------------------------------------
    def mvm(self, drive: np.ndarray) -> np.ndarray:
        """Analog multiply-accumulate for a batch of word-line drives.

        ``drive`` is ``(batch, rows)`` non-negative amplitudes (binary
        for spike coding, multi-level for an analog DAC).  Returns the
        digitised column outputs ``(batch, cols)`` in level units:
        the bit-line currents baseline-corrected for the off-state
        leakage ``g_min`` (computed directly in the level domain, where
        ``currents - g_min * sum(drive) == drive @ levels * g_step``),
        read-noise-corrupted, then quantized by the ADC.
        """
        if self._levels is None:
            raise RuntimeError("array has not been programmed")
        drive = np.asarray(drive, dtype=np.float64)
        if drive.ndim == 1:
            drive = drive[None, :]
        if drive.shape[1] != self.rows:
            raise ValueError(
                f"drive has {drive.shape[1]} lanes, array has {self.rows} rows"
            )
        if np.any(drive < 0):
            raise ValueError("word-line drive must be non-negative")
        self.reads += int(drive.shape[0])

        level_values = drive @ self._levels
        # Read-path effect order (shared with the vectorized backend):
        # drift scales the signal, then Gaussian read noise, then
        # transient upsets, then the ADC digitises the sum.
        if self.device.drift_nu > 0.0:
            level_values = level_values * self._model.drift_factors(1)[0]
        if self.device.read_noise > 0.0:
            level_values = level_values + self._model.read_noise_levels(
                level_values.shape
            )
        if self.device.upset_rate > 0.0:
            level_values = level_values + self._model.transient_upset_levels(
                level_values.shape
            )
        return self.adc.convert(level_values)

    def exact_mvm(self, drive: np.ndarray) -> np.ndarray:
        """Reference result ignoring read noise and the ADC.

        Still includes programming error and stuck cells (whatever got
        written is what multiplies), so tests can isolate read-path
        effects.
        """
        drive = np.asarray(drive, dtype=np.float64)
        if drive.ndim == 1:
            drive = drive[None, :]
        return drive @ self.effective_levels()

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.rows, self.cols)

    def __repr__(self) -> str:
        return (
            f"CrossbarArray({self.rows}x{self.cols}, "
            f"levels={self.device.levels}, programmed={self.is_programmed})"
        )
