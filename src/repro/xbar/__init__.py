"""ReRAM crossbar functional simulator (Sec. II-B, Fig. 3).

Device physics -> weight mapping -> tiled arrays -> spike-coded input ->
integrate-and-fire ADC -> digital recombination, packaged as a drop-in
matmul engine for the DNN substrate.
"""

from repro.xbar.adc import ADCConfig, IntegrateFireADC
from repro.xbar.crossbar import CrossbarArray
from repro.xbar.dac import (
    AnalogDAC,
    InputEncoding,
    RateCoder,
    SpikeCoder,
    quantize_activations,
)
from repro.xbar.device import (
    NOISY_DEVICE,
    PIPELAYER_DEVICE,
    SOFT_ERROR_DEVICE,
    DeviceConfig,
    DeviceModel,
    apply_ir_drop,
)
from repro.xbar.calibration import (
    LayerCalibration,
    calibrated_configs,
    calibration_report,
    collect_calibration,
    deploy_calibrated,
)
from repro.xbar.engine import CrossbarEngine, CrossbarEngineConfig, XbarStats
from repro.xbar.memory import ReRAMMemory
from repro.xbar.mapping import (
    SlicedWeights,
    WeightMapping,
    map_weights,
    quantize_weights,
    slice_magnitudes,
)
from repro.xbar.tile import TiledCrossbar, tile_grid

__all__ = [
    "ADCConfig",
    "IntegrateFireADC",
    "CrossbarArray",
    "AnalogDAC",
    "InputEncoding",
    "SpikeCoder",
    "RateCoder",
    "quantize_activations",
    "DeviceConfig",
    "DeviceModel",
    "apply_ir_drop",
    "PIPELAYER_DEVICE",
    "NOISY_DEVICE",
    "SOFT_ERROR_DEVICE",
    "LayerCalibration",
    "collect_calibration",
    "calibrated_configs",
    "calibration_report",
    "deploy_calibrated",
    "CrossbarEngine",
    "CrossbarEngineConfig",
    "XbarStats",
    "ReRAMMemory",
    "WeightMapping",
    "SlicedWeights",
    "map_weights",
    "quantize_weights",
    "slice_magnitudes",
    "TiledCrossbar",
    "tile_grid",
]
