"""Crossbar matmul engine: the full input-to-output PIM datapath.

:class:`CrossbarEngine` is a drop-in
:class:`~repro.nn.engine.MatmulEngine`: any :class:`~repro.nn.layers.Dense`
or :class:`~repro.nn.layers.Conv2D` layer given this engine computes its
forward matmul through the complete simulated pipeline —

1. weights are quantized, sign-split (differential pairs) or offset,
   bit-sliced into multi-level cells (:mod:`repro.xbar.mapping`);
2. each slice plane is partitioned over 128x128 physical arrays
   (Fig. 3c, :mod:`repro.xbar.tile`) and *programmed*, which applies
   device noise and stuck faults (:mod:`repro.xbar.device`);
3. activations are quantized and driven either with weighted spike
   coding — one binary sub-cycle per input bit, PipeLayer's scheme — or
   by an analog DAC (:mod:`repro.xbar.dac`);
4. every array read is digitised by the integrate-and-fire ADC before
   partial sums merge (:mod:`repro.xbar.adc`);
5. digital shift-and-add recombines input bits, weight slices, and
   signs.

With an ideal device and a lossless ADC the pipeline is exactly integer
matmul; ``fast_ideal`` exploits that identity to skip the bit-serial
loop (the equivalence is covered by tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.nn.engine import MatmulEngine
from repro.utils.rng import RngLike, derive_seed, new_rng
from repro.utils.validation import check_choice, check_positive
from repro.xbar.adc import ADCConfig
from repro.xbar.dac import (
    AnalogDAC,
    InputEncoding,
    RateCoder,
    SpikeCoder,
    quantize_activations,
)
from repro.xbar.device import PIPELAYER_DEVICE, DeviceConfig
from repro.xbar.mapping import SlicedWeights, WeightMapping, map_weights
from repro.xbar.tile import TiledCrossbar


@dataclass(frozen=True)
class CrossbarEngineConfig:
    """Everything that defines one crossbar compute pipeline."""

    device: DeviceConfig = PIPELAYER_DEVICE
    mapping: WeightMapping = WeightMapping()
    encoding: InputEncoding = InputEncoding(bits=8)
    array_rows: int = 128
    array_cols: int = 128
    input_mode: str = "spike"
    adc_bits: Optional[int] = None
    activation_range: Optional[float] = None
    fast_ideal: bool = True
    fast_linear: bool = False

    def __post_init__(self) -> None:
        check_positive("array_rows", self.array_rows)
        check_positive("array_cols", self.array_cols)
        check_choice("input_mode", self.input_mode, ("spike", "rate", "analog"))
        if self.adc_bits is not None:
            check_positive("adc_bits", self.adc_bits)
        if self.activation_range is not None:
            check_positive("activation_range", self.activation_range)

    def adc_config(self) -> Optional[ADCConfig]:
        """ADC for one physical array under this drive mode.

        ``None`` means "use the array's lossless default" (only valid
        for binary drive; analog drive always gets an explicit config
        because its full scale grows with the DAC amplitude).
        """
        binary_full_scale = self.array_rows * (self.device.levels - 1)
        if self.input_mode in ("spike", "rate"):
            if self.adc_bits is None:
                return None
            return ADCConfig(
                bits=self.adc_bits,
                full_scale_levels=float(binary_full_scale),
            )
        full_scale = float(binary_full_scale * self.encoding.max_int)
        if self.adc_bits is None:
            bits = max(1, int(np.ceil(np.log2(full_scale + 1))))
            # One count per level unit so integer drives convert exactly.
            return ADCConfig(bits=bits, full_scale_levels=float(2**bits - 1))
        return ADCConfig(bits=self.adc_bits, full_scale_levels=full_scale)

    @property
    def is_linear(self) -> bool:
        """True when the read path is exact (noise only in programming).

        With no read noise and a lossless unit-grid ADC, the bit-serial
        pipeline is a linear function of the word-line drive, so the
        whole evaluation collapses to one matmul with the *effective*
        programmed matrix — up to the ADC's half-count rounding of
        non-integer (noisy-cell) partial sums, which the fast path
        approximates away (bounded by half an output LSB).
        """
        if self.device.read_noise != 0.0:
            return False
        adc = self.adc_config()
        if adc is None:
            return True
        needed = self.array_rows * (self.device.levels - 1)
        if self.input_mode == "analog":
            needed *= self.encoding.max_int
        return (
            adc.max_count >= needed
            and adc.full_scale_levels >= needed
            and adc.levels_per_count == 1.0
        )

    @property
    def is_ideal(self) -> bool:
        """True when the pipeline equals exact integer matmul."""
        device = self.device
        clean_device = (
            device.program_noise == 0.0
            and device.read_noise == 0.0
            and device.stuck_off_rate == 0.0
            and device.stuck_on_rate == 0.0
            and device.wire_resistance == 0.0
        )
        if not clean_device:
            return False
        adc = self.adc_config()
        if adc is None:
            return True
        if self.input_mode in ("spike", "rate"):
            needed = self.array_rows * (device.levels - 1)
        else:
            needed = (
                self.array_rows * (device.levels - 1) * self.encoding.max_int
            )
        # Exactness needs range AND a one-count-per-level grid.
        return (
            adc.max_count >= needed
            and adc.full_scale_levels >= needed
            and adc.levels_per_count == 1.0
        )


@dataclass
class XbarStats:
    """Operation counters consumed by the energy/latency models."""

    mvm_calls: int = 0
    subcycles: int = 0
    array_reads: int = 0
    array_programs: int = 0
    adc_conversions: int = 0
    weights_programmed: int = 0
    fast_ideal_calls: int = 0
    per_call_subcycles: list = field(default_factory=list)

    def reset(self) -> None:
        """Zero all counters."""
        self.mvm_calls = 0
        self.subcycles = 0
        self.array_reads = 0
        self.array_programs = 0
        self.adc_conversions = 0
        self.weights_programmed = 0
        self.fast_ideal_calls = 0
        self.per_call_subcycles = []


class CrossbarEngine(MatmulEngine):
    """Simulated ReRAM PIM matmul engine (see module docstring)."""

    def __init__(
        self, config: Optional[CrossbarEngineConfig] = None, rng: RngLike = None
    ) -> None:
        self.config = config or CrossbarEngineConfig()
        self._rng = new_rng(rng)
        self.stats = XbarStats()
        self._sliced: Optional[SlicedWeights] = None
        self._tiles: Dict[Tuple[str, int], TiledCrossbar] = {}
        self._cached_weights: Optional[np.ndarray] = None
        self._quantized: Optional[np.ndarray] = None
        self._coder = SpikeCoder(self.config.encoding)
        self._rate_coder = RateCoder(self.config.encoding)
        self._dac = AnalogDAC(self.config.encoding)
        self._effective: Optional[np.ndarray] = None

    # -- weight programming -------------------------------------------------
    def prepare(self, weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2:
            raise ValueError(f"weights must be 2-D, got {weights.shape}")
        if self._cached_weights is not None and np.array_equal(
            self._cached_weights, weights
        ):
            return
        reuse_tiles = (
            self._cached_weights is not None
            and self._cached_weights.shape == weights.shape
        )
        self._cached_weights = weights.copy()
        sliced = map_weights(weights, self.config.mapping)
        self._sliced = sliced
        radix = 2**sliced.mapping.cell_bits
        quantized = np.zeros(weights.shape)
        for index, plane in enumerate(sliced.pos_slices):
            quantized += plane.astype(np.float64) * float(radix) ** index
        negative = np.zeros(weights.shape)
        for index, plane in enumerate(sliced.neg_slices):
            negative += plane.astype(np.float64) * float(radix) ** index
        self._quantized = quantized - negative - sliced.offset_int

        adc = self.config.adc_config()
        planes = [("pos", sliced.pos_slices)]
        if sliced.mapping.scheme == "differential":
            planes.append(("neg", sliced.neg_slices))
        rows, cols = weights.shape
        if not reuse_tiles:
            # First deployment (or a reshape): build the physical
            # arrays.  Subsequent prepares *reprogram the same arrays*
            # — the cells, and in particular their stuck-fault masks,
            # persist across weight updates like real hardware.
            self._tiles = {}
            for plane_name, slices in planes:
                for slice_index in range(len(slices)):
                    self._tiles[(plane_name, slice_index)] = TiledCrossbar(
                        rows,
                        cols,
                        self.config.device,
                        array_rows=self.config.array_rows,
                        array_cols=self.config.array_cols,
                        adc=adc,
                        rng=derive_seed(
                            self._rng, f"{plane_name}:{slice_index}"
                        ),
                    )
        for plane_name, slices in planes:
            for slice_index, level_plane in enumerate(slices):
                tile = self._tiles[(plane_name, slice_index)]
                tile.program(level_plane)
                self.stats.array_programs += tile.array_count
        self.stats.weights_programmed += int(weights.size)
        self._effective = None

    @property
    def array_count(self) -> int:
        """Physical arrays holding the prepared matrix (all planes)."""
        return sum(tile.array_count for tile in self._tiles.values())

    def quantized_weights(self) -> np.ndarray:
        """The integer weight matrix the crossbars represent (scaled)."""
        if self._sliced is None or self._quantized is None:
            raise RuntimeError("prepare() must be called first")
        return self._quantized * self._sliced.scale

    def effective_weights(self) -> np.ndarray:
        """The matrix the arrays physically hold (scaled, with noise).

        Assembles the per-slice effective levels from every programmed
        array — the matrix an ideal read path would apply.  Equals
        :meth:`quantized_weights` for an ideal device; differs under
        programming noise or stuck faults.
        """
        if self._sliced is None:
            raise RuntimeError("prepare() must be called first")
        if self._effective is None:
            radix = float(2**self._sliced.mapping.cell_bits)
            effective = np.zeros(self._cached_weights.shape)
            for (plane_name, slice_index), tile in self._tiles.items():
                sign = -1.0 if plane_name == "neg" else 1.0
                effective += (
                    sign * radix**slice_index * tile.effective_logical()
                )
            effective -= self._sliced.offset_int
            self._effective = effective
        return self._effective * self._sliced.scale

    # -- evaluation ------------------------------------------------------------
    def matmul(self, activations: np.ndarray) -> np.ndarray:
        if self._sliced is None or self._quantized is None:
            raise RuntimeError("prepare() must be called before matmul()")
        activations = np.asarray(activations, dtype=np.float64)
        if activations.ndim != 2:
            raise ValueError(
                f"activations must be 2-D, got {activations.shape}"
            )
        if activations.shape[1] != self._cached_weights.shape[0]:
            raise ValueError(
                f"activations width {activations.shape[1]} != weight rows "
                f"{self._cached_weights.shape[0]}"
            )
        self.stats.mvm_calls += 1

        max_abs = self.config.activation_range
        if max_abs is None:
            observed = float(np.max(np.abs(activations))) if activations.size else 0.0
            if observed == 0.0:
                return np.zeros(
                    (activations.shape[0], self._cached_weights.shape[1])
                )
            max_abs = observed
        pos_int, neg_int, a_scale = quantize_activations(
            activations, self.config.encoding, max_abs
        )

        if self.config.fast_ideal and self.config.is_ideal:
            self.stats.fast_ideal_calls += 1
            signed = (pos_int - neg_int).astype(np.float64)
            return signed @ self._quantized * (a_scale * self._sliced.scale)
        if self.config.fast_linear and self.config.is_linear:
            # Opt-in idealisation: with noise only in programming and a
            # clean read path, apply the effective programmed matrix in
            # one matmul.  This drops the ADC's per-read integer
            # rounding of noisy (fractional) partial sums — a real
            # physical effect the full path keeps — so it is an
            # *approximation* (typically a few percent under 5%
            # programming noise), intended for fast crossbar-in-the-
            # loop training studies.
            self.stats.fast_ideal_calls += 1
            signed = (pos_int - neg_int).astype(np.float64)
            return signed @ self.effective_weights() * a_scale
        return self._full_path(pos_int, neg_int, a_scale)

    def _full_path(
        self, pos_int: np.ndarray, neg_int: np.ndarray, a_scale: float
    ) -> np.ndarray:
        """Bit-serial, slice-by-slice evaluation through the arrays."""
        sliced = self._sliced
        radix = float(2**sliced.mapping.cell_bits)
        batch = pos_int.shape[0]
        cols = self._cached_weights.shape[1]
        accumulator = np.zeros((batch, cols))
        call_subcycles = 0

        for input_sign, integers in ((1.0, pos_int), (-1.0, neg_int)):
            if not np.any(integers):
                continue
            if self.config.input_mode == "spike":
                planes = self._coder.decompose(integers)
                weights_per_plane = [2.0**j for j in range(len(planes))]
            elif self.config.input_mode == "rate":
                planes = self._rate_coder.decompose(integers)
                weights_per_plane = [1.0] * len(planes)
            else:
                planes = [self._dac.drive(integers)]
                weights_per_plane = [1.0]
            for plane, plane_weight in zip(planes, weights_per_plane):
                call_subcycles += 1
                for (plane_name, slice_index), tile in self._tiles.items():
                    partial = tile.mvm(plane)
                    weight_sign = -1.0 if plane_name == "neg" else 1.0
                    accumulator += (
                        input_sign
                        * weight_sign
                        * plane_weight
                        * radix**slice_index
                        * partial
                    )
                    self.stats.array_reads += tile.array_count * batch
                    self.stats.adc_conversions += batch * tile.logical_cols
            if sliced.mapping.scheme == "offset":
                # Remove the stored offset: offset * sum_i(x_i), digital.
                row_sums = integers.sum(axis=1, keepdims=True).astype(np.float64)
                accumulator -= input_sign * sliced.offset_int * row_sums

        self.stats.subcycles += call_subcycles
        self.stats.per_call_subcycles.append(call_subcycles)
        return accumulator * (a_scale * sliced.scale)
