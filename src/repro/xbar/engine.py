"""Crossbar matmul engine: the full input-to-output PIM datapath.

:class:`CrossbarEngine` is a drop-in
:class:`~repro.nn.engine.MatmulEngine`: any :class:`~repro.nn.layers.Dense`
or :class:`~repro.nn.layers.Conv2D` layer given this engine computes its
forward matmul through the complete simulated pipeline —

1. weights are quantized, sign-split (differential pairs) or offset,
   bit-sliced into multi-level cells (:mod:`repro.xbar.mapping`);
2. each slice plane is partitioned over 128x128 physical arrays
   (Fig. 3c, :mod:`repro.xbar.tile`) and *programmed*, which applies
   device noise and stuck faults (:mod:`repro.xbar.device`);
3. activations are quantized and driven either with weighted spike
   coding — one binary sub-cycle per input bit, PipeLayer's scheme — or
   by an analog DAC (:mod:`repro.xbar.dac`);
4. every array read is digitised by the integrate-and-fire ADC before
   partial sums merge (:mod:`repro.xbar.adc`); transient read-path
   faults — conductance drift and per-read soft-error upsets
   (:mod:`repro.xbar.device`) — strike between the analog sum and the
   converter, identically in both backends;
5. digital shift-and-add recombines input bits, weight slices, and
   signs.

With an ideal device and a lossless ADC the pipeline is exactly integer
matmul; ``fast_ideal`` exploits that identity to skip the bit-serial
loop (the equivalence is covered by tests).

Two interchangeable backends evaluate the full datapath:

``backend="loop"``
    The reference oracle: nested Python loops over input sub-cycles,
    slice planes, and physical arrays — one :meth:`TiledCrossbar.mvm`
    per (sub-cycle, plane).  Slow but structurally identical to the
    hardware description above.
``backend="vectorized"`` (default)
    Stacks every slice plane of every tile into one conductance tensor
    per sign, evaluates all sub-cycles of a batch with batched matmuls,
    and applies the I&F ADC quantization across the whole stack at
    once.  Bit-for-bit identical to the loop backend under a shared
    seed: read noise is drawn from each array's own generator in
    sub-cycle order (a stacked draw consumes a numpy ``Generator``
    exactly like sequential per-sub-cycle draws), and both backends
    share one ADC transfer function
    (:func:`repro.xbar.adc.quantize_levels`).  When every per-array
    conversion is provably the identity — integer level matrices, no
    read noise, unit-grid ADC with sufficient range (stuck faults
    allowed) — the sub-cycle loop additionally collapses onto a cached
    combined effective-weights matrix, turning the whole evaluation
    into one exact integer matmul (~100x over the loop backend on a
    256x256 layer).
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.nn.engine import MatmulEngine
from repro.telemetry import SCHEMA_VERSION, Collector, TelemetryLike
from repro.utils.logging import get_logger
from repro.utils.rng import RngLike, derive_seed, new_rng
from repro.utils.validation import check_choice, check_positive
from repro.xbar.adc import ADCConfig, quantize_levels
from repro.xbar.dac import (
    AnalogDAC,
    InputEncoding,
    RateCoder,
    SpikeCoder,
    quantize_activations,
)
from repro.xbar.device import PIPELAYER_DEVICE, DeviceConfig
from repro.xbar.mapping import SlicedWeights, WeightMapping, map_weights
from repro.xbar.tile import TiledCrossbar

_log = get_logger("engine")


@dataclass(frozen=True)
class CrossbarEngineConfig:
    """Everything that defines one crossbar compute pipeline."""

    device: DeviceConfig = PIPELAYER_DEVICE
    mapping: WeightMapping = WeightMapping()
    encoding: InputEncoding = InputEncoding(bits=8)
    array_rows: int = 128
    array_cols: int = 128
    input_mode: str = "spike"
    adc_bits: Optional[int] = None
    activation_range: Optional[float] = None
    fast_ideal: bool = True
    fast_linear: bool = False
    backend: str = "vectorized"

    def __post_init__(self) -> None:
        check_positive("array_rows", self.array_rows)
        check_positive("array_cols", self.array_cols)
        check_choice("input_mode", self.input_mode, ("spike", "rate", "analog"))
        check_choice("backend", self.backend, ("loop", "vectorized"))
        if self.adc_bits is not None:
            check_positive("adc_bits", self.adc_bits)
        if self.activation_range is not None:
            check_positive("activation_range", self.activation_range)

    def adc_config(self) -> Optional[ADCConfig]:
        """ADC for one physical array under this drive mode.

        ``None`` means "use the array's lossless default" (only valid
        for binary drive; analog drive always gets an explicit config
        because its full scale grows with the DAC amplitude).
        """
        binary_full_scale = self.array_rows * (self.device.levels - 1)
        if self.input_mode in ("spike", "rate"):
            if self.adc_bits is None:
                return None
            return ADCConfig(
                bits=self.adc_bits,
                full_scale_levels=float(binary_full_scale),
            )
        full_scale = float(binary_full_scale * self.encoding.max_int)
        if self.adc_bits is None:
            bits = max(1, int(np.ceil(np.log2(full_scale + 1))))
            # One count per level unit so integer drives convert exactly.
            return ADCConfig(bits=bits, full_scale_levels=float(2**bits - 1))
        return ADCConfig(bits=self.adc_bits, full_scale_levels=full_scale)

    @property
    def is_linear(self) -> bool:
        """True when the read path is exact (noise only in programming).

        With no read noise and a lossless unit-grid ADC, the bit-serial
        pipeline is a linear function of the word-line drive, so the
        whole evaluation collapses to one matmul with the *effective*
        programmed matrix — up to the ADC's half-count rounding of
        non-integer (noisy-cell) partial sums, which the fast path
        approximates away (bounded by half an output LSB).
        """
        if self.device.read_noise != 0.0 or self.device.has_transient_faults:
            return False
        adc = self.adc_config()
        if adc is None:
            return True
        needed = self.array_rows * (self.device.levels - 1)
        if self.input_mode == "analog":
            needed *= self.encoding.max_int
        return (
            adc.max_count >= needed
            and adc.full_scale_levels >= needed
            and adc.levels_per_count == 1.0
        )

    @property
    def is_ideal(self) -> bool:
        """True when the pipeline equals exact integer matmul."""
        device = self.device
        clean_device = (
            device.program_noise == 0.0
            and device.read_noise == 0.0
            and device.stuck_off_rate == 0.0
            and device.stuck_on_rate == 0.0
            and not device.has_transient_faults
            and device.wire_resistance == 0.0
        )
        if not clean_device:
            return False
        adc = self.adc_config()
        if adc is None:
            return True
        if self.input_mode in ("spike", "rate"):
            needed = self.array_rows * (device.levels - 1)
        else:
            needed = (
                self.array_rows * (device.levels - 1) * self.encoding.max_int
            )
        # Exactness needs range AND a one-count-per-level grid.
        return (
            adc.max_count >= needed
            and adc.full_scale_levels >= needed
            and adc.levels_per_count == 1.0
        )


def weights_hash(weights: np.ndarray) -> str:
    """Content digest of a weight matrix (shape + float64 bytes).

    The programmed-state identity of one engine: two weight arrays
    with the same hash program byte-identical crossbar levels under
    the same config, so callers (``prepare``, the serve layer's
    programmed-state cache) may skip reprogramming on a match.
    """
    array = np.ascontiguousarray(np.asarray(weights, dtype=np.float64))
    digest = hashlib.sha256()
    digest.update(repr(array.shape).encode())
    digest.update(array.tobytes())
    return digest.hexdigest()


def device_config_hash(config: CrossbarEngineConfig) -> str:
    """Content digest of everything that defines the compute pipeline.

    Hashes the full :class:`CrossbarEngineConfig` — device physics,
    mapping, encoding, array geometry, ADC, drive mode, and backend —
    via its frozen-dataclass ``repr`` (deterministic, nested configs
    included).  Together with :func:`weights_hash` this keys the
    programmed-crossbar state: same ``(weights_hash,
    device_config_hash)`` means the arrays would be programmed
    identically.
    """
    return hashlib.sha256(repr(config).encode()).hexdigest()


def engine_config_to_dict(config: CrossbarEngineConfig) -> Dict[str, Any]:
    """The full engine config as plain JSON data.

    Inverse of :func:`engine_config_from_dict`; the sweep layer uses
    this pair to carry a :class:`CrossbarEngineConfig` inside a cell
    spec (plain dicts pickle cheaply, hash canonically, and survive a
    JSON round-trip through the on-disk result cache).
    """
    return dataclasses.asdict(config)


def engine_config_from_dict(data: Mapping[str, Any]) -> CrossbarEngineConfig:
    """Rebuild a :class:`CrossbarEngineConfig` from its dict form.

    Accepts exactly the output of :func:`engine_config_to_dict`
    (unknown keys raise, matching the dataclass constructors), and
    re-runs every ``__post_init__`` validation on the way in.
    """
    fields = dict(data)
    device = fields.pop("device", None)
    mapping = fields.pop("mapping", None)
    encoding = fields.pop("encoding", None)
    return CrossbarEngineConfig(
        device=DeviceConfig(**device) if device is not None else PIPELAYER_DEVICE,
        mapping=WeightMapping(**mapping) if mapping is not None else WeightMapping(),
        encoding=(
            InputEncoding(**encoding)
            if encoding is not None
            else InputEncoding(bits=8)
        ),
        **fields,
    )


#: Engine-level counter paths surfaced as ``XbarStats`` attributes.
_STAT_FIELDS = (
    "mvm_calls",
    "subcycles",
    "array_reads",
    "array_programs",
    "adc_conversions",
    "weights_programmed",
    "fast_ideal_calls",
)

#: Physical event counters priced by the energy-attribution layer
#: (:mod:`repro.telemetry.energy`).  Dotted names are counter paths
#: only (no ``XbarStats`` attribute); all are emitted identically by
#: both full-path backends, so the bit-identity contract extends to
#: energy attribution for free.
_EVENT_FIELDS = (
    "dac.line_fires",
    "adc.samples",
    "shift_adds",
    "buffer.bits",
    "cell_writes",
    "static.array_subcycles",
    "static.controller_subcycles",
)

#: Digital accumulator width (bits) a result word occupies in the
#: output buffer — mirrors ``repro.core.pipelayer.ACCUMULATOR_BITS``
#: (the xbar layer must not import the core layer).
_ACCUMULATOR_BITS = 16


class XbarStats:
    """Operation counters consumed by the energy/latency models.

    Since the telemetry subsystem landed this is a *thin view* over a
    :class:`repro.telemetry.Collector`: the engine writes every
    operation count through its collector (engine-level totals plus
    per-tile ``tile[<plane>,<slice>]/...`` paths), and the attributes
    here (``mvm_calls``, ``array_reads``, ...) are read-only
    properties over the engine-level counters.  Counters are mutated
    through the collector (``stats.telemetry.count()`` / ``set()``);
    the deprecated attribute-assignment shim has been retired and
    assigning to a counter attribute raises :class:`AttributeError`.

    The per-call sub-cycle history is **opt-in** (``track_per_call``)
    and bounded by ``per_call_limit``: a training run makes one matmul
    call per layer per batch, so an always-on unbounded list grows
    without limit across epochs.  The aggregate ``subcycles`` counter
    is always maintained; the history only adds per-call resolution
    for callers that ask for it.
    """

    def __init__(
        self,
        track_per_call: bool = False,
        per_call_limit: int = 4096,
        collector: Optional[TelemetryLike] = None,
    ) -> None:
        check_positive("per_call_limit", per_call_limit)
        self.track_per_call = track_per_call
        self.per_call_limit = per_call_limit
        self.telemetry: TelemetryLike = (
            collector
            if collector is not None
            else Collector(record_spans=False)
        )
        self.per_call_subcycles: List[int] = []

    def reset(self) -> None:
        """Drop all engine counters (including per-tile sub-trees)."""
        for field in _STAT_FIELDS:
            self.telemetry.clear(field)
        for field in _EVENT_FIELDS:
            self.telemetry.clear(field)
        self.telemetry.clear("prepare.skips")
        self.telemetry.clear_tree("tile[")
        self.per_call_subcycles = []

    def record_call(self, subcycles: int) -> None:
        """Account one full-path matmul call of ``subcycles`` sub-cycles."""
        self.telemetry.count("subcycles", subcycles)
        if (
            self.track_per_call
            and len(self.per_call_subcycles) < self.per_call_limit
        ):
            self.per_call_subcycles.append(subcycles)

    def as_dict(self) -> Dict[str, int]:
        """Engine-level counters as a plain name -> value dict."""
        return {field: getattr(self, field) for field in _STAT_FIELDS}


def _stat_property(field: str) -> property:
    def getter(self: XbarStats) -> int:
        return int(self.telemetry.get(field))

    # Read-only: assigning raises AttributeError.  Counters are
    # mutated through the collector (stats.telemetry.count()/set()).
    return property(getter, doc=f"Engine-level {field!r} counter.")


for _field in _STAT_FIELDS:
    setattr(XbarStats, _field, _stat_property(_field))
del _field


@dataclass
class _VectorizedState:
    """Per-prepare() cache backing the vectorized backend.

    ``gmat`` is the stacked conductance tensor of *every* physical
    array of every slice plane, pre-transposed into the batched-matmul
    layout ``(grid_rows, array_rows, n_planes * grid_cols *
    array_cols)``; ``plane_weights`` carries each plane's signed
    shift-and-add factor (``±radix**slice``).  Built lazily on the
    first vectorized matmul and invalidated whenever ``prepare()``
    reprograms the arrays.  When the ADC is transparent (see
    ``collapsed``), ``gmat`` is ``None`` — the stacked path is never
    taken.
    """

    gmat: Optional[np.ndarray]
    plane_weights: np.ndarray
    arrays: list  # [plane][grid_row][grid_col] -> CrossbarArray
    adc: ADCConfig
    grid_rows: int
    grid_cols: int
    n_planes: int
    #: Combined signed effective level matrix (logical shape), present
    #: only when the ADC is provably transparent for this config — the
    #: effective-weights cache that collapses the whole bit-serial
    #: evaluation into one matmul.  Invalidated with the rest of the
    #: state whenever ``prepare()`` reprograms the arrays.
    collapsed: Optional[np.ndarray] = None


#: Soft cap (float64 elements) on the intermediate partial-sum tensor
#: of one vectorized chunk (~128 MB).  Rate coding drives hundreds of
#: sub-cycles per MVM; chunking the sub-cycle axis keeps memory flat
#: while preserving the per-array RNG stream order (sequential chunks
#: consume a generator exactly like one big draw).
_VECTOR_CHUNK_ELEMENTS = 16_000_000


class CrossbarEngine(MatmulEngine):
    """Simulated ReRAM PIM matmul engine (see module docstring)."""

    def __init__(
        self,
        config: Optional[CrossbarEngineConfig] = None,
        rng: RngLike = None,
        track_per_call: bool = False,
        collector: Optional[TelemetryLike] = None,
    ) -> None:
        self.config = config or CrossbarEngineConfig()
        self._rng = new_rng(rng)
        # Counters always flow through a collector; without an external
        # one the engine owns a private, span-free instance so stats
        # work exactly as before at the same cost.  An attached
        # collector (usually a per-layer scope from deploy_network)
        # additionally receives prepare/matmul timing spans and the
        # per-tile counter hierarchy.
        self.telemetry: TelemetryLike = (
            collector
            if collector is not None
            else Collector(record_spans=False)
        )
        self.stats = XbarStats(
            track_per_call=track_per_call, collector=self.telemetry
        )
        self._sliced: Optional[SlicedWeights] = None
        self._tiles: Dict[Tuple[str, int], TiledCrossbar] = {}
        self._tile_paths: Dict[Tuple[str, int], str] = {}
        self._cached_weights: Optional[np.ndarray] = None
        self._cached_weights_hash: Optional[str] = None
        self._quantized: Optional[np.ndarray] = None
        self._coder = SpikeCoder(self.config.encoding)
        self._rate_coder = RateCoder(self.config.encoding)
        self._dac = AnalogDAC(self.config.encoding)
        self._effective: Optional[np.ndarray] = None
        self._vector: Optional[_VectorizedState] = None

    # -- weight programming -------------------------------------------------
    def prepare(self, weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2:
            raise ValueError(f"weights must be 2-D, got {weights.shape}")
        incoming_hash = weights_hash(weights)
        if self._cached_weights_hash == incoming_hash:
            # Same programmed state: skip the reprogram entirely.  The
            # skip is counted so callers (the facade's in-process runs,
            # the serve layer's cache) can observe avoided programming.
            self.telemetry.count("prepare.skips", 1)
            return
        reuse_tiles = (
            self._cached_weights is not None
            and self._cached_weights.shape == weights.shape
        )
        self._cached_weights = weights.copy()
        self._cached_weights_hash = incoming_hash
        sliced = map_weights(weights, self.config.mapping)
        self._sliced = sliced
        radix = 2**sliced.mapping.cell_bits
        quantized = np.zeros(weights.shape)
        for index, plane in enumerate(sliced.pos_slices):
            quantized += plane.astype(np.float64) * float(radix) ** index
        negative = np.zeros(weights.shape)
        for index, plane in enumerate(sliced.neg_slices):
            negative += plane.astype(np.float64) * float(radix) ** index
        self._quantized = quantized - negative - sliced.offset_int

        adc = self.config.adc_config()
        planes = [("pos", sliced.pos_slices)]
        if sliced.mapping.scheme == "differential":
            planes.append(("neg", sliced.neg_slices))
        rows, cols = weights.shape
        _log.debug(
            "programming %dx%d weights onto %d slice plane group(s) "
            "(backend=%s, reuse_tiles=%s)",
            rows,
            cols,
            len(planes),
            self.config.backend,
            reuse_tiles,
        )
        if not reuse_tiles:
            # First deployment (or a reshape): build the physical
            # arrays.  Subsequent prepares *reprogram the same arrays*
            # — the cells, and in particular their stuck-fault masks,
            # persist across weight updates like real hardware.
            self._tiles = {}
            self._tile_paths = {}
            for plane_name, slices in planes:
                for slice_index in range(len(slices)):
                    self._tiles[(plane_name, slice_index)] = TiledCrossbar(
                        rows,
                        cols,
                        self.config.device,
                        array_rows=self.config.array_rows,
                        array_cols=self.config.array_cols,
                        adc=adc,
                        rng=derive_seed(
                            self._rng, f"{plane_name}:{slice_index}"
                        ),
                    )
                    # Component paths are built once: the matmul hot
                    # loops only ever do dict increments.
                    self._tile_paths[(plane_name, slice_index)] = (
                        f"tile[{plane_name},{slice_index}]"
                    )
        tel = self.telemetry
        with tel.span("prepare"):
            for plane_name, slices in planes:
                for slice_index, level_plane in enumerate(slices):
                    tile = self._tiles[(plane_name, slice_index)]
                    tile.program(level_plane)
                    tel.count("array_programs", tile.array_count)
                    # Write pulses hit every cell of every programmed
                    # physical array (edge arrays are padded, so the
                    # full rows x cols grid is pulsed).
                    tel.count(
                        "cell_writes",
                        tile.array_count
                        * self.config.array_rows
                        * self.config.array_cols,
                    )
                    tel.count(
                        self._tile_paths[(plane_name, slice_index)]
                        + "/programs",
                        tile.array_count,
                    )
            tel.count("weights_programmed", int(weights.size))
        # program() changed the physical state: both derived caches
        # (effective matrix, stacked conductance tensor) are stale.
        self._effective = None
        self._vector = None

    @property
    def array_count(self) -> int:
        """Physical arrays holding the prepared matrix (all planes)."""
        return sum(tile.array_count for tile in self._tiles.values())

    def cache_key(self) -> Tuple[str, str]:
        """``(weights_hash, device_config_hash)`` of the programmed state.

        Two engines with equal keys hold byte-identical programmed
        levels (same weights, same pipeline config), so one may stand
        in for the other without reprogramming.
        """
        if self._cached_weights_hash is None:
            raise RuntimeError("prepare() must be called first")
        return self._cached_weights_hash, device_config_hash(self.config)

    def info(self) -> dict:
        """Engine description surfaced by deployments and the facade."""
        return {
            "engine": "crossbar",
            "backend": self.config.backend,
            "input_mode": self.config.input_mode,
            "arrays": self.array_count,
        }

    def fault_report(self) -> Dict[str, object]:
        """Per-tile stuck-fault census across every programmed plane.

        One entry per (sign plane, weight slice) tile with its array
        grid and stuck-cell totals, plus engine-level totals — the
        defect observability consumed by :mod:`repro.reliability`.
        """
        if self._sliced is None:
            raise RuntimeError("prepare() must be called first")
        tiles = []
        totals = {"cells": 0, "stuck_off": 0, "stuck_on": 0}
        for (plane_name, slice_index), tile in sorted(self._tiles.items()):
            census = tile.fault_census()
            tiles.append(
                {
                    "plane": plane_name,
                    "slice": slice_index,
                    "grid": census["grid"],
                    "cells": census["cells"],
                    "stuck_off": census["stuck_off"],
                    "stuck_on": census["stuck_on"],
                }
            )
            for key in totals:
                totals[key] += census[key]
        return {"schema_version": SCHEMA_VERSION, **totals, "tiles": tiles}

    def quantized_weights(self) -> np.ndarray:
        """The integer weight matrix the crossbars represent (scaled)."""
        if self._sliced is None or self._quantized is None:
            raise RuntimeError("prepare() must be called first")
        return self._quantized * self._sliced.scale

    def effective_weights(self) -> np.ndarray:
        """The matrix the arrays physically hold (scaled, with noise).

        Assembles the per-slice effective levels from every programmed
        array — the matrix an ideal read path would apply.  Equals
        :meth:`quantized_weights` for an ideal device; differs under
        programming noise or stuck faults.
        """
        if self._sliced is None:
            raise RuntimeError("prepare() must be called first")
        if self._effective is None:
            radix = float(2**self._sliced.mapping.cell_bits)
            effective = np.zeros(self._cached_weights.shape)
            for (plane_name, slice_index), tile in self._tiles.items():
                sign = -1.0 if plane_name == "neg" else 1.0
                effective += (
                    sign * radix**slice_index * tile.effective_logical()
                )
            effective -= self._sliced.offset_int
            self._effective = effective
        return self._effective * self._sliced.scale

    # -- evaluation ------------------------------------------------------------
    def matmul(self, activations: np.ndarray) -> np.ndarray:
        if self._sliced is None or self._quantized is None:
            raise RuntimeError("prepare() must be called before matmul()")
        activations = np.asarray(activations, dtype=np.float64)
        if activations.ndim != 2:
            raise ValueError(
                f"activations must be 2-D, got {activations.shape}"
            )
        if activations.shape[1] != self._cached_weights.shape[0]:
            raise ValueError(
                f"activations width {activations.shape[1]} != weight rows "
                f"{self._cached_weights.shape[0]}"
            )
        tel = self.telemetry
        tel.count("mvm_calls", 1)
        # Multiply-accumulates of this call, counted in the shared
        # dispatch so both backends (and the fast-ideal collapse)
        # report identical work — the denominator of the ADC-per-MAC
        # efficiency metric in repro.telemetry.analysis.
        tel.count(
            "macs",
            activations.shape[0]
            * self._cached_weights.shape[0]
            * self._cached_weights.shape[1],
        )

        max_abs = self.config.activation_range
        if max_abs is None:
            observed = float(np.max(np.abs(activations))) if activations.size else 0.0
            if observed == 0.0:
                return np.zeros(
                    (activations.shape[0], self._cached_weights.shape[1])
                )
            max_abs = observed
        pos_int, neg_int, a_scale = quantize_activations(
            activations, self.config.encoding, max_abs
        )

        if self.config.fast_ideal and self.config.is_ideal:
            tel.count("fast_ideal_calls", 1)
            signed = (pos_int - neg_int).astype(np.float64)
            return signed @ self._quantized * (a_scale * self._sliced.scale)
        if self.config.fast_linear and self.config.is_linear:
            # Opt-in idealisation: with noise only in programming and a
            # clean read path, apply the effective programmed matrix in
            # one matmul.  This drops the ADC's per-read integer
            # rounding of noisy (fractional) partial sums — a real
            # physical effect the full path keeps — so it is an
            # *approximation* (typically a few percent under 5%
            # programming noise), intended for fast crossbar-in-the-
            # loop training studies.
            tel.count("fast_ideal_calls", 1)
            signed = (pos_int - neg_int).astype(np.float64)
            return signed @ self.effective_weights() * a_scale
        with tel.span("matmul"):
            if self.config.backend == "vectorized":
                return self._full_path_vectorized(pos_int, neg_int, a_scale)
            return self._full_path_loop(pos_int, neg_int, a_scale)

    def _full_path_loop(
        self, pos_int: np.ndarray, neg_int: np.ndarray, a_scale: float
    ) -> np.ndarray:
        """Bit-serial, slice-by-slice evaluation through the arrays.

        The reference oracle for ``backend="vectorized"``: one
        :meth:`TiledCrossbar.mvm` per (sub-cycle, slice plane), exactly
        as the module docstring narrates the hardware.
        """
        sliced = self._sliced
        radix = float(2**sliced.mapping.cell_bits)
        batch = pos_int.shape[0]
        cols = self._cached_weights.shape[1]
        accumulator = np.zeros((batch, cols))
        call_subcycles = 0
        tel = self.telemetry

        for input_sign, integers in ((1.0, pos_int), (-1.0, neg_int)):
            if not np.any(integers):
                continue
            if self.config.input_mode == "spike":
                planes = self._coder.decompose(integers)
                weights_per_plane = [2.0**j for j in range(len(planes))]
            elif self.config.input_mode == "rate":
                planes = self._rate_coder.decompose(integers)
                weights_per_plane = [1.0] * len(planes)
            else:
                planes = [self._dac.drive(integers)]
                weights_per_plane = [1.0]
            for plane, plane_weight in zip(planes, weights_per_plane):
                call_subcycles += 1
                for (plane_name, slice_index), tile in self._tiles.items():
                    partial = tile.mvm(plane)
                    weight_sign = -1.0 if plane_name == "neg" else 1.0
                    accumulator += (
                        input_sign
                        * weight_sign
                        * plane_weight
                        * radix**slice_index
                        * partial
                    )
                    tile_path = self._tile_paths[(plane_name, slice_index)]
                    tel.count("array_reads", tile.array_count * batch)
                    tel.count(
                        tile_path + "/reads", tile.array_count * batch
                    )
                    tel.count(
                        "adc_conversions", batch * tile.logical_cols
                    )
                    tel.count(
                        tile_path + "/adc.conversions",
                        batch * tile.logical_cols,
                    )
            if sliced.mapping.scheme == "offset":
                # Remove the stored offset: offset * sum_i(x_i), digital.
                row_sums = integers.sum(axis=1, keepdims=True).astype(np.float64)
                accumulator -= input_sign * sliced.offset_int * row_sums

        self._record_call_events(call_subcycles, batch)
        self.stats.record_call(call_subcycles)
        return accumulator * (a_scale * sliced.scale)

    def _record_call_events(self, call_subcycles: int, batch: int) -> None:
        """Physical event counters of one full-path matmul call.

        Both backends call this with the same ``call_subcycles`` and
        ``batch``, and every term below is a pure function of those
        plus the prepared geometry — so the event counters (and the
        energy attributed from them) are bit-identical across backends
        by construction.  Per array read: every word line fires
        (spike-driver/DAC lines), every bit line converts (I&F ADC)
        and merges (shift-add), matching
        :func:`repro.arch.components.array_subcycle_energy` exactly
        when priced through ``event_costs``.  Buffer traffic per call:
        the drive planes read the activations once per image
        (``rows x encoding bits``) and the results write back at
        accumulator width.  Static occupancy counts array- and
        controller-sub-cycles, the time base average power divides by.
        """
        tel = self.telemetry
        arrays_total = sum(
            tile.array_count for tile in self._tiles.values()
        )
        reads = call_subcycles * arrays_total * batch
        tel.count("dac.line_fires", reads * self.config.array_rows)
        tel.count("adc.samples", reads * self.config.array_cols)
        tel.count("shift_adds", reads * self.config.array_cols)
        logical_rows, logical_cols = self._cached_weights.shape
        tel.count(
            "buffer.bits",
            batch * logical_rows * self.config.encoding.bits
            + batch * logical_cols * _ACCUMULATOR_BITS,
        )
        tel.count("static.array_subcycles", reads)
        tel.count("static.controller_subcycles", call_subcycles * batch)

    # -- vectorized backend -------------------------------------------------
    def _decompose_drive(
        self, integers: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One input sign's sub-cycle stack and per-plane weights.

        Returns ``(planes, weights)``: ``planes`` is ``(subcycles,
        batch, rows)`` word-line drive — the same planes, in the same
        order, the loop backend feeds to the arrays one at a time —
        and ``weights`` the shift-and-add factor of each sub-cycle.
        """
        if self.config.input_mode == "spike":
            planes = self._coder.decompose(integers)
            weights = [2.0**j for j in range(len(planes))]
        elif self.config.input_mode == "rate":
            planes = self._rate_coder.decompose(integers)
            weights = [1.0] * len(planes)
        else:
            planes = [self._dac.drive(integers)]
            weights = [1.0]
        return np.stack(planes), np.asarray(weights)

    def _adc_transparent(self, adc: ADCConfig) -> bool:
        """True when every per-array conversion is provably the identity.

        Requires integer effective level matrices (no programming
        noise, no IR drop — stuck faults are fine, a stuck cell is
        still an integer level), a noiseless read path, and a
        unit-grid ADC whose range covers the worst-case column sum of
        this drive mode.  Under those conditions every pre-ADC partial
        sum is an integer already on the count grid and inside range,
        so clip+round returns it unchanged — which licenses the
        sub-cycle collapse in :meth:`_full_path_vectorized`.
        """
        device = self.config.device
        if (
            device.program_noise != 0.0
            or device.read_noise != 0.0
            or device.has_transient_faults
            or device.wire_resistance != 0.0
        ):
            return False
        needed = self.config.array_rows * (device.levels - 1)
        if self.config.input_mode == "analog":
            needed *= self.config.encoding.max_int
        return (
            adc.levels_per_count == 1.0
            and adc.max_count >= needed
            and adc.full_scale_levels >= needed
        )

    def _vector_state(self) -> _VectorizedState:
        """Build (or reuse) the stacked-conductance cache."""
        if self._vector is not None:
            return self._vector
        tiles = self._tiles
        first = next(iter(tiles.values()))
        grid_rows, grid_cols = first.grid_rows, first.grid_cols
        rows, cols = self.config.array_rows, self.config.array_cols
        radix = float(2**self._sliced.mapping.cell_bits)
        n_planes = len(tiles)
        arrays = []
        plane_weights = np.empty(n_planes)
        for index, ((plane_name, slice_index), tile) in enumerate(
            tiles.items()
        ):
            arrays.append(tile.arrays)
            sign = -1.0 if plane_name == "neg" else 1.0
            plane_weights[index] = sign * radix**slice_index
        adc = first.arrays[0][0].adc.config
        collapsed: Optional[np.ndarray] = None
        gmat: Optional[np.ndarray] = None
        if self._adc_transparent(adc):
            # Effective-weights cache: with a transparent ADC the whole
            # bit-serial evaluation equals one matmul against the
            # combined signed effective level matrix (see
            # _full_path_vectorized).  The stacked tensor is skipped
            # entirely — it would never be read.
            collapsed = np.zeros(self._cached_weights.shape)
            for (plane_name, slice_index), tile in tiles.items():
                sign = -1.0 if plane_name == "neg" else 1.0
                collapsed += (
                    sign * radix**slice_index * tile.effective_logical()
                )
        else:
            stacked = np.empty((n_planes, grid_rows, grid_cols, rows, cols))
            for index, (_, tile) in enumerate(tiles.items()):
                stacked[index] = tile.level_blocks()
            # (P, g, h, R, C) -> (g, R, P*h*C): one batched matmul per MVM.
            gmat = np.ascontiguousarray(
                stacked.transpose(1, 3, 0, 2, 4).reshape(
                    grid_rows, rows, n_planes * grid_cols * cols
                )
            )
        self._vector = _VectorizedState(
            gmat=gmat,
            plane_weights=plane_weights,
            arrays=arrays,
            adc=adc,
            grid_rows=grid_rows,
            grid_cols=grid_cols,
            n_planes=n_planes,
            collapsed=collapsed,
        )
        return self._vector

    def _accumulate_vectorized(
        self,
        state: _VectorizedState,
        planes: np.ndarray,
        plane_weights: np.ndarray,
        input_sign: float,
        accumulator: np.ndarray,
        logical_cols: int,
    ) -> None:
        """Run a ``(subcycles, batch, rows)`` drive stack through the arrays.

        Adds one input sign's shift-and-add total into ``accumulator``
        with every physical effect applied where the loop backend
        applies it: per-array read noise (drawn from each array's own
        stream in sub-cycle order), the I&F ADC on each array's columns
        *before* the vertical partial-sum add, then the sequential
        row-block fold of :meth:`TiledCrossbar.mvm`.  The sub-cycle
        axis is chunked to bound memory; chunks run in sub-cycle order
        so the RNG streams and the accumulation order are exactly the
        loop backend's.
        """
        device = self.config.device
        grid_rows, grid_cols = state.grid_rows, state.grid_cols
        rows, cols = self.config.array_rows, self.config.array_cols
        n_planes = state.n_planes
        subcycles, batch, logical_rows = planes.shape

        padded = np.zeros((subcycles, batch, grid_rows * rows))
        padded[:, :, :logical_rows] = planes
        blocked = padded.reshape(subcycles, batch, grid_rows, rows)

        per_subcycle = batch * n_planes * grid_rows * grid_cols * cols
        chunk = max(1, _VECTOR_CHUNK_ELEMENTS // per_subcycle)
        # On a unit count grid every post-ADC value is an integer, so
        # any summation order is exact and one einsum suffices.  On a
        # fractional grid (lossy ADC) the summands carry rounding, so
        # the loop backend's accumulation order is replicated term by
        # term to stay bit-identical.
        exact_grid = state.adc.levels_per_count == 1.0
        for start in range(0, subcycles, chunk):
            part = blocked[start : start + chunk]  # (K, B, g, R)
            span = part.shape[0]
            drive = np.ascontiguousarray(part.transpose(2, 0, 1, 3)).reshape(
                grid_rows, span * batch, rows
            )
            levels = np.matmul(drive, state.gmat).reshape(
                grid_rows, span, batch, n_planes, grid_cols, cols
            )
            # Per-array read-path effects in the loop backend's order:
            # drift scales the signal, then Gaussian read noise, then
            # transient upsets.  Each effect draws from its own child
            # stream per array, so a stacked (span, ...) draw consumes
            # each stream exactly like the loop's sequential
            # per-sub-cycle draws; drift is a deterministic per-event
            # factor from the same read clock the loop advances.
            drift = device.drift_nu > 0.0
            noise = device.read_noise > 0.0
            upsets = device.upset_rate > 0.0
            if drift or noise or upsets:
                for plane in range(n_planes):
                    for block_row in range(grid_rows):
                        for block_col in range(grid_cols):
                            array = state.arrays[plane][block_row][block_col]
                            view = levels[block_row, :, :, plane, block_col, :]
                            if drift:
                                view *= array.drift_factors(span)[
                                    :, None, None
                                ]
                            if noise:
                                view += array.read_noise_levels(
                                    (span, batch, cols)
                                )
                            if upsets:
                                view += array.transient_upset_levels(
                                    (span, batch, cols)
                                )
            quantized = quantize_levels(levels, state.adc)
            folded = quantized[0].copy()
            for block_row in range(1, grid_rows):
                folded += quantized[block_row]
            folded = folded.reshape(span, batch, n_planes, grid_cols * cols)[
                :, :, :, :logical_cols
            ]
            weights = plane_weights[start : start + span]
            if exact_grid:
                accumulator += input_sign * np.einsum(
                    "kbpn,k,p->bn", folded, weights, state.plane_weights
                )
            else:
                for sub in range(span):
                    for plane in range(n_planes):
                        accumulator += (
                            input_sign
                            * weights[sub]
                            * state.plane_weights[plane]
                        ) * folded[sub, :, plane, :]

    def _full_path_vectorized(
        self, pos_int: np.ndarray, neg_int: np.ndarray, a_scale: float
    ) -> np.ndarray:
        """Batched evaluation: all sub-cycles through stacked tensors.

        Bit-for-bit equivalent to :meth:`_full_path_loop` under a
        shared seed (covered by the backend-equivalence property
        tests): the level matrices, the per-array noise draws, the ADC
        transfer function, and the accumulation order all match the
        loop backend exactly.

        When every per-array ADC conversion is provably the identity
        (:meth:`_adc_transparent`), the sub-cycle loop collapses
        algebraically: the drive planes of one input sign recombine to
        the integer activations (``sum_k w_k * plane_k = integers`` in
        all three modes), so the whole evaluation is one matmul with
        the cached combined effective level matrix.  Every quantity
        involved is an exact float64 integer, so the single matmul is
        bit-identical to the loop's K*P*grid small ones regardless of
        BLAS summation order — this is where the >=10x throughput over
        the loop backend comes from.  Stats still account the full
        bit-serial schedule: the simulated hardware runs every
        sub-cycle; only the simulation skips redundant arithmetic.
        """
        sliced = self._sliced
        state = self._vector_state()
        batch = pos_int.shape[0]
        logical_cols = self._cached_weights.shape[1]
        accumulator = np.zeros((batch, logical_cols))
        call_subcycles = 0
        if self.config.input_mode == "spike":
            subcycles_per_sign = self._coder.subcycles
        elif self.config.input_mode == "rate":
            subcycles_per_sign = self._rate_coder.subcycles
        else:
            subcycles_per_sign = self._dac.subcycles

        for input_sign, integers in ((1.0, pos_int), (-1.0, neg_int)):
            if not np.any(integers):
                continue
            if state.collapsed is not None:
                accumulator += input_sign * (
                    integers.astype(np.float64) @ state.collapsed
                )
                call_subcycles += subcycles_per_sign
            else:
                planes, plane_weights = self._decompose_drive(integers)
                self._accumulate_vectorized(
                    state,
                    planes,
                    plane_weights,
                    input_sign,
                    accumulator,
                    logical_cols,
                )
                call_subcycles += planes.shape[0]
            if sliced.mapping.scheme == "offset":
                row_sums = integers.sum(axis=1, keepdims=True).astype(
                    np.float64
                )
                accumulator -= input_sign * sliced.offset_int * row_sums

        # Mirror the loop backend's operation accounting exactly —
        # engine totals, per-tile telemetry paths, and per-array
        # read/conversion counters all match the bit-serial schedule.
        tel = self.telemetry
        arrays_total = state.n_planes * state.grid_rows * state.grid_cols
        tel.count("array_reads", call_subcycles * arrays_total * batch)
        tel.count(
            "adc_conversions",
            call_subcycles * state.n_planes * batch * logical_cols,
        )
        for key, tile in self._tiles.items():
            tile_path = self._tile_paths[key]
            tel.count(
                tile_path + "/reads",
                call_subcycles * tile.array_count * batch,
            )
            tel.count(
                tile_path + "/adc.conversions",
                call_subcycles * batch * tile.logical_cols,
            )
        reads = call_subcycles * batch
        conversions = call_subcycles * batch * self.config.array_cols
        for tile_arrays in state.arrays:
            for row in tile_arrays:
                for array in row:
                    array.reads += reads
                    array.adc.conversions += conversions
        self._record_call_events(call_subcycles, batch)
        self.stats.record_call(call_subcycles)
        return accumulator * (a_scale * sliced.scale)

def validate_fault_report(document: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``document`` is a fault census.

    Checks the shape :meth:`CrossbarEngine.fault_report` emits:
    engine-level stuck-cell totals plus per-tile entries, with the
    totals equal to the sum over tiles.
    """
    if document.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            "unsupported fault_report schema_version "
            f"{document.get('schema_version')!r}"
        )
    tiles = document.get("tiles")
    if not isinstance(tiles, list):
        raise ValueError("fault_report must carry a tiles list")
    sums = {"cells": 0, "stuck_off": 0, "stuck_on": 0}
    for tile in tiles:
        if not isinstance(tile, dict):
            raise ValueError("fault_report tiles must be dicts")
        for key in ("plane", "slice", "grid"):
            if key not in tile:
                raise ValueError(f"fault_report tile missing {key!r}")
        for key in sums:
            value = tile.get(key)
            if not isinstance(value, int) or value < 0:
                raise ValueError(
                    f"fault_report tile {key} must be a "
                    f"non-negative int, got {value!r}"
                )
            sums[key] += value
    for key, expected in sums.items():
        if document.get(key) != expected:
            raise ValueError(
                f"fault_report total {key}={document.get(key)!r} "
                f"disagrees with tile sum {expected}"
            )
