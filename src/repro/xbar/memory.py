"""ReRAM subarrays in *memory* mode (Fig. 6's morphable duality).

"A morphable unit behaves the same as a regular ReRAM subarray in the
memory mode and performs matrix-vector multiplications in the computing
mode."  This module provides the memory half: data words are packed
into the same multi-level cells the crossbar uses for weights, through
the same device model — so programming noise, stuck cells and level
quantization corrupt stored *data* exactly as they corrupt weights,
and a single physical :class:`~repro.xbar.crossbar.CrossbarArray` can
alternate between storing a layer's intermediate results and computing
(the morphable workflow, exercised by tests).

Words of ``width`` bits are split into base-``2**cell_bits`` digits,
one cell each, row-major across the array.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.validation import check_positive
from repro.xbar.crossbar import CrossbarArray
from repro.xbar.device import DeviceConfig
from repro.utils.rng import RngLike


class ReRAMMemory:
    """A crossbar array used as a data store.

    Parameters
    ----------
    array:
        The physical array (possibly shared with compute use).
    """

    def __init__(self, array: CrossbarArray) -> None:
        self.array = array
        self._stored_shape: Optional[Tuple[int, ...]] = None
        self._stored_width: Optional[int] = None
        self._cells_per_word: Optional[int] = None

    @classmethod
    def create(
        cls,
        rows: int = 128,
        cols: int = 128,
        device: Optional[DeviceConfig] = None,
        rng: RngLike = None,
    ) -> "ReRAMMemory":
        """Build a standalone memory subarray."""
        return cls(
            CrossbarArray(rows, cols, device or DeviceConfig(), rng=rng)
        )

    # -- geometry ---------------------------------------------------------
    @property
    def cell_bits(self) -> int:
        return self.array.device.cell_bits

    @property
    def capacity_bits(self) -> int:
        """Total data capacity of the subarray."""
        return self.array.rows * self.array.cols * self.cell_bits

    def capacity_words(self, width: int) -> int:
        """How many ``width``-bit words fit."""
        check_positive("width", width)
        cells_per_word = -(-width // self.cell_bits)
        return (self.array.rows * self.array.cols) // cells_per_word

    # -- store / load ------------------------------------------------------
    def store(self, values: np.ndarray, width: int) -> None:
        """Write unsigned integers of ``width`` bits into the cells.

        Values are split LSB-digit-first into ``ceil(width/cell_bits)``
        cells each and programmed row-major; the write passes through
        the full device model (noise, stuck cells).
        """
        check_positive("width", width)
        values = np.asarray(values)
        if np.any(values < 0) or np.any(values >= 2**width):
            raise ValueError(f"values must fit in {width} unsigned bits")
        if values.size > self.capacity_words(width):
            raise ValueError(
                f"{values.size} words exceed capacity "
                f"{self.capacity_words(width)} at width {width}"
            )
        cells_per_word = -(-width // self.cell_bits)
        radix = 2**self.cell_bits
        work = values.astype(np.int64).ravel()
        digits = np.zeros((values.size, cells_per_word), dtype=np.int64)
        for digit in range(cells_per_word):
            digits[:, digit] = work % radix
            work = work // radix

        levels = np.zeros(
            (self.array.rows, self.array.cols), dtype=np.int64
        )
        flat = levels.reshape(-1)
        flat[: digits.size] = digits.reshape(-1)
        self.array.program(levels)
        self._stored_shape = values.shape
        self._stored_width = width
        self._cells_per_word = cells_per_word

    def load(self) -> np.ndarray:
        """Read the stored words back (through the noisy cells).

        Each cell's effective level is rounded to the nearest integer
        level — the sense amplifier's job — then digits reassemble into
        words.  With an ideal device the round trip is exact; noise or
        stuck cells produce bit errors, quantified by
        :meth:`bit_error_rate`.
        """
        if self._stored_shape is None:
            raise RuntimeError("nothing stored")
        levels = np.rint(self.array.effective_levels()).astype(np.int64)
        levels = np.clip(levels, 0, self.array.device.levels - 1)
        count = int(np.prod(self._stored_shape))
        digits = levels.reshape(-1)[: count * self._cells_per_word]
        digits = digits.reshape(count, self._cells_per_word)
        radix = 2**self.cell_bits
        values = np.zeros(count, dtype=np.int64)
        for digit in range(self._cells_per_word):
            values += digits[:, digit] * radix**digit
        limit = 2**self._stored_width
        return np.clip(values, 0, limit - 1).reshape(self._stored_shape)

    def bit_error_rate(self, original: np.ndarray) -> float:
        """Fraction of data bits flipped between store and load."""
        original = np.asarray(original).astype(np.int64)
        loaded = self.load().astype(np.int64)
        if original.shape != loaded.shape:
            raise ValueError("original shape does not match stored data")
        xor = np.bitwise_xor(original, loaded)
        flipped = sum(
            int(np.sum((xor >> bit) & 1))
            for bit in range(self._stored_width)
        )
        return flipped / (original.size * self._stored_width)
