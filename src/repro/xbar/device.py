"""ReRAM device model: conductance states, programming/read noise, faults.

A ReRAM cell stores information as a resistance state (Sec. II-B).  The
model quantifies what the architecture papers assume: a cell holds one
of ``2**cell_bits`` conductance levels between ``g_min = 1/r_off`` and
``g_max = 1/r_on``; programming hits the target level with log-normal
multiplicative error; a small fraction of cells are stuck at the lowest
or highest state (fabrication defects).

Default constants follow the metal-oxide RRAM literature the paper
cites (Wong et al., Proc. IEEE 2012): ``R_on = 10 kΩ``,
``R_off = 1 MΩ``, 4-bit multi-level cells (PipeLayer's choice).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.utils.rng import RngLike, spawn_rngs
from repro.utils.validation import check_in_range, check_non_negative, check_positive


@dataclass(frozen=True)
class DeviceConfig:
    """Electrical and statistical parameters of one ReRAM cell.

    Parameters
    ----------
    r_on, r_off:
        Low / high resistance states in ohms; conductance range is
        ``[1/r_off, 1/r_on]``.
    cell_bits:
        Bits stored per cell; the cell exposes ``2**cell_bits`` evenly
        spaced conductance levels.
    program_noise:
        Log-normal sigma of multiplicative programming error on the
        *level-conductance span* (0 disables noise).
    read_noise:
        Gaussian sigma of per-read output noise, expressed in units of
        one conductance level per column (0 disables).
    stuck_off_rate, stuck_on_rate:
        Fraction of cells stuck at the lowest / highest level.
    upset_rate:
        Probability, per read and per column output, of a *transient*
        soft error: the analog partial sum is hit by an impulse drawn
        uniformly from ``±upset_magnitude`` level units before the ADC
        digitises it (a radiation-/disturb-style read upset; gone on
        the next read, unlike a stuck cell).  0 disables.
    upset_magnitude:
        Amplitude bound of one upset impulse in conductance-level
        units.  ``None`` defaults to ``levels - 1`` — one full cell's
        worth of current, the analog equivalent of a flipped cell.
    drift_nu:
        Conductance-drift exponent: the signal read at the ``k``-th
        read event since programming is scaled by ``(1 + k) ** -nu``
        (metal-oxide RRAM relaxation, with read events standing in for
        elapsed time).  Reprogramming refreshes the cells and resets
        the clock.  0 disables.
    wire_resistance:
        Word/bit-line wire resistance per cell segment (ohms).  A
        first-order static IR-drop model: the effective conductance of
        the cell at (row i, column j) is degraded by the series wire
        resistance of its current path, ``g / (1 + g * r_wire *
        (i + j))``.  0 disables the effect.
    endurance:
        Write cycles a cell survives before wear-out (used by the
        lifetime analysis in :mod:`repro.arch.endurance`; it does not
        alter functional behaviour here).
    """

    r_on: float = 1e4
    r_off: float = 1e6
    cell_bits: int = 4
    program_noise: float = 0.0
    read_noise: float = 0.0
    stuck_off_rate: float = 0.0
    stuck_on_rate: float = 0.0
    upset_rate: float = 0.0
    upset_magnitude: Optional[float] = None
    drift_nu: float = 0.0
    wire_resistance: float = 0.0
    endurance: float = 1e9

    def __post_init__(self) -> None:
        check_positive("r_on", self.r_on)
        check_positive("r_off", self.r_off)
        if self.r_off <= self.r_on:
            raise ValueError(
                f"r_off ({self.r_off}) must exceed r_on ({self.r_on})"
            )
        check_positive("cell_bits", self.cell_bits)
        check_non_negative("program_noise", self.program_noise)
        check_non_negative("read_noise", self.read_noise)
        check_in_range("stuck_off_rate", self.stuck_off_rate, 0.0, 1.0)
        check_in_range("stuck_on_rate", self.stuck_on_rate, 0.0, 1.0)
        if self.stuck_off_rate + self.stuck_on_rate > 1.0:
            raise ValueError("stuck rates sum to more than 1")
        check_in_range("upset_rate", self.upset_rate, 0.0, 1.0)
        if self.upset_magnitude is not None:
            check_non_negative("upset_magnitude", self.upset_magnitude)
        check_non_negative("drift_nu", self.drift_nu)
        check_non_negative("wire_resistance", self.wire_resistance)
        check_positive("endurance", self.endurance)

    @property
    def g_min(self) -> float:
        """Conductance of the fully-off state (siemens)."""
        return 1.0 / self.r_off

    @property
    def g_max(self) -> float:
        """Conductance of the fully-on state (siemens)."""
        return 1.0 / self.r_on

    @property
    def levels(self) -> int:
        """Number of programmable conductance levels."""
        return 2**self.cell_bits

    @property
    def g_step(self) -> float:
        """Conductance difference between adjacent levels."""
        return (self.g_max - self.g_min) / (self.levels - 1)

    @property
    def on_off_ratio(self) -> float:
        """Resistance window ``r_off / r_on``."""
        return self.r_off / self.r_on

    @property
    def upset_levels(self) -> float:
        """Amplitude bound of one transient upset, in level units."""
        if self.upset_magnitude is not None:
            return self.upset_magnitude
        return float(self.levels - 1)

    @property
    def has_transient_faults(self) -> bool:
        """Whether any per-read (non-static) fault effect is enabled."""
        return self.upset_rate > 0.0 or self.drift_nu > 0.0

    def with_noise(
        self,
        program_noise: Optional[float] = None,
        read_noise: Optional[float] = None,
    ) -> "DeviceConfig":
        """Copy of this config with different noise settings."""
        return replace(
            self,
            program_noise=(
                self.program_noise if program_noise is None else program_noise
            ),
            read_noise=self.read_noise if read_noise is None else read_noise,
        )

    def ideal(self) -> "DeviceConfig":
        """Copy with all non-idealities disabled."""
        return replace(
            self,
            program_noise=0.0,
            read_noise=0.0,
            stuck_off_rate=0.0,
            stuck_on_rate=0.0,
            upset_rate=0.0,
            drift_nu=0.0,
            wire_resistance=0.0,
        )


def apply_ir_drop(conductance: np.ndarray, wire_resistance: float) -> np.ndarray:
    """First-order static IR-drop degradation of a conductance matrix.

    The cell at (row ``i``, column ``j``) sees a series wire resistance
    proportional to its Manhattan distance from the word-line driver
    (row axis) and the bit-line sense amplifier (column axis):
    ``r_series = wire_resistance * (i + j)``.  The effective
    conductance of the cell-plus-wires path is
    ``g / (1 + g * r_series)`` — always a *reduction*, growing with
    distance, the characteristic accuracy-eating gradient of large
    crossbars.
    """
    if wire_resistance < 0:
        raise ValueError(
            f"wire_resistance must be >= 0, got {wire_resistance}"
        )
    if wire_resistance == 0.0:
        return conductance
    rows, cols = conductance.shape
    distance = np.arange(rows)[:, None] + np.arange(cols)[None, :]
    series = wire_resistance * distance
    return conductance / (1.0 + conductance * series)


class DeviceModel:
    """Programs level matrices into (noisy) conductance matrices.

    Every stochastic effect draws from its **own child stream** of the
    constructor seed (programming noise, stuck-fault placement, read
    noise, transient upsets).  That makes the effects orthogonal knobs:
    enabling or re-rating one of them never shifts another's draws, so
    a reliability sweep at a fixed seed varies exactly one thing at a
    time — and it is what keeps the loop and vectorized engine
    backends bit-identical, because each backend may interleave the
    effects differently in code as long as it consumes each *stream*
    in the same per-read order.
    """

    def __init__(self, config: DeviceConfig, rng: RngLike = None) -> None:
        self.config = config
        (
            self._program_rng,
            self._fault_rng,
            self._read_rng,
            self._transient_rng,
        ) = spawn_rngs(rng, 4)
        self._fault_draw: Optional[np.ndarray] = None
        #: Read events since the last program — the drift time base.
        self.read_events = 0

    def apply_stuck_faults(self, levels: np.ndarray) -> np.ndarray:
        """Force stuck-at cells to their defect level.

        Fault *placement* is a property of the physical array, not of a
        write operation: the mask is drawn once (at the first program)
        and reused for every subsequent reprogram, so training loops
        that rewrite weights each batch face the same broken cells
        throughout — the situation noise-aware training adapts to.
        Reprogramming at a different shape is a physical impossibility
        (defects cannot move), so it raises instead of redrawing.
        """
        config = self.config
        if config.stuck_off_rate == 0.0 and config.stuck_on_rate == 0.0:
            return levels
        if self._fault_draw is None:
            self._fault_draw = self._fault_rng.random(levels.shape)
        elif self._fault_draw.shape != levels.shape:
            raise ValueError(
                f"stuck-fault mask was drawn for shape "
                f"{self._fault_draw.shape}; reprogramming at "
                f"{levels.shape} would silently move physical defects"
            )
        draw = self._fault_draw
        out = levels.copy()
        out[draw < config.stuck_off_rate] = 0
        out[draw > 1.0 - config.stuck_on_rate] = config.levels - 1
        return out

    def fault_census(self) -> dict:
        """Stuck-cell counts of the persistent mask (JSON-able).

        Zeros until the first program draws the mask.
        """
        config = self.config
        if self._fault_draw is None or (
            config.stuck_off_rate == 0.0 and config.stuck_on_rate == 0.0
        ):
            return {"cells": 0, "stuck_off": 0, "stuck_on": 0}
        draw = self._fault_draw
        return {
            "cells": int(draw.size),
            "stuck_off": int(np.count_nonzero(draw < config.stuck_off_rate)),
            "stuck_on": int(
                np.count_nonzero(draw > 1.0 - config.stuck_on_rate)
            ),
        }

    def program_levels(self, levels: np.ndarray) -> np.ndarray:
        """Effective stored levels after faults, noise, clip, IR drop.

        ``levels`` must be integers in ``[0, levels - 1]``; the result
        is the float level matrix the cell array actually holds — the
        computational domain of every read-path evaluation.  For an
        ideal device the result is *exactly* integer-valued (no
        conductance-domain round trip), which is what lets both
        evaluation backends produce bit-identical MVMs regardless of
        summation order.
        """
        levels = np.asarray(levels)
        config = self.config
        if np.any((levels < 0) | (levels >= config.levels)):
            raise ValueError(
                f"levels must be in [0, {config.levels - 1}]"
            )
        levels = self.apply_stuck_faults(levels)
        effective = levels.astype(np.float64)
        if config.program_noise > 0.0:
            factor = self._program_rng.lognormal(
                mean=0.0, sigma=config.program_noise, size=effective.shape
            )
            effective = effective * factor
        # A (re)program refreshes the cells: the drift clock restarts.
        self.read_events = 0
        effective = np.clip(effective, 0.0, float(config.levels - 1))
        if config.wire_resistance > 0.0:
            conductance = apply_ir_drop(
                config.g_min + effective * config.g_step,
                config.wire_resistance,
            )
            effective = (conductance - config.g_min) / config.g_step
        return effective

    def program(self, levels: np.ndarray) -> np.ndarray:
        """Convert integer levels to conductances with programming error.

        ``levels`` must be integers in ``[0, levels - 1]``.  The
        returned conductances are clipped to the physical window.
        """
        config = self.config
        effective = self.program_levels(levels)
        return config.g_min + effective * config.g_step

    def read_noise_levels(self, shape, reads: int = 1) -> np.ndarray:
        """Additive per-read output noise, in conductance-level units.

        The sigma is ``read_noise`` level units per column output (the
        domain the crossbar works in after baseline correction);
        ``reads`` independent reads accumulate as ``sqrt(reads)``.
        """
        config = self.config
        if config.read_noise == 0.0:
            return np.zeros(shape)
        sigma = config.read_noise * np.sqrt(reads)
        return self._read_rng.normal(0.0, sigma, size=shape)

    def transient_upset_levels(self, shape) -> np.ndarray:
        """Per-read soft-error impulses, in conductance-level units.

        Each output element is upset with probability ``upset_rate``;
        an upset adds a uniform impulse in ``±upset_levels``.  Mask and
        amplitude come from a *single* uniform draw per element (the
        sub-threshold coordinate ``u / rate`` is itself uniform), so
        stream consumption is one element per output regardless of how
        many upsets fire — the property that lets a stacked draw in
        the vectorized backend equal the loop backend's sequential
        per-sub-cycle draws.
        """
        config = self.config
        if config.upset_rate == 0.0:
            return np.zeros(shape)
        draw = self._transient_rng.random(shape)
        rate = config.upset_rate
        amplitude = (2.0 * (draw / rate) - 1.0) * config.upset_levels
        return np.where(draw < rate, amplitude, 0.0)

    def drift_factors(self, events: int) -> np.ndarray:
        """Signal decay factors for the next ``events`` read events.

        Returns ``(1 + k) ** -drift_nu`` for each upcoming read event
        ``k`` (counted since the last program) and advances the drift
        clock — deterministic, no stream consumed.  With drift
        disabled the factors are all 1 but the clock still advances,
        so enabling drift later in a config sweep never perturbs the
        other effects' alignment.
        """
        if events < 0:
            raise ValueError(f"events must be >= 0, got {events}")
        ticks = self.read_events + np.arange(events, dtype=np.float64)
        self.read_events += events
        if self.config.drift_nu == 0.0:
            return np.ones(events)
        return (1.0 + ticks) ** (-self.config.drift_nu)


#: Device used by PipeLayer-style experiments (4-bit MLC, ideal).
PIPELAYER_DEVICE = DeviceConfig(r_on=1e4, r_off=1e6, cell_bits=4)

#: A pessimistic realistic device for noise-sensitivity studies.
NOISY_DEVICE = DeviceConfig(
    r_on=1e4,
    r_off=1e6,
    cell_bits=4,
    program_noise=0.05,
    read_noise=0.2,
    stuck_off_rate=0.001,
    stuck_on_rate=0.001,
)

#: Transient-fault device for soft-error/reliability studies: clean
#: cells and writes, but occasional per-read upsets and mild drift.
SOFT_ERROR_DEVICE = DeviceConfig(
    r_on=1e4,
    r_off=1e6,
    cell_bits=4,
    upset_rate=1e-3,
    drift_nu=0.01,
)
