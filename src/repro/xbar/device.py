"""ReRAM device model: conductance states, programming/read noise, faults.

A ReRAM cell stores information as a resistance state (Sec. II-B).  The
model quantifies what the architecture papers assume: a cell holds one
of ``2**cell_bits`` conductance levels between ``g_min = 1/r_off`` and
``g_max = 1/r_on``; programming hits the target level with log-normal
multiplicative error; a small fraction of cells are stuck at the lowest
or highest state (fabrication defects).

Default constants follow the metal-oxide RRAM literature the paper
cites (Wong et al., Proc. IEEE 2012): ``R_on = 10 kΩ``,
``R_off = 1 MΩ``, 4-bit multi-level cells (PipeLayer's choice).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.utils.rng import RngLike, new_rng
from repro.utils.validation import check_in_range, check_non_negative, check_positive


@dataclass(frozen=True)
class DeviceConfig:
    """Electrical and statistical parameters of one ReRAM cell.

    Parameters
    ----------
    r_on, r_off:
        Low / high resistance states in ohms; conductance range is
        ``[1/r_off, 1/r_on]``.
    cell_bits:
        Bits stored per cell; the cell exposes ``2**cell_bits`` evenly
        spaced conductance levels.
    program_noise:
        Log-normal sigma of multiplicative programming error on the
        *level-conductance span* (0 disables noise).
    read_noise:
        Gaussian sigma of per-read output noise, expressed in units of
        one conductance level per column (0 disables).
    stuck_off_rate, stuck_on_rate:
        Fraction of cells stuck at the lowest / highest level.
    wire_resistance:
        Word/bit-line wire resistance per cell segment (ohms).  A
        first-order static IR-drop model: the effective conductance of
        the cell at (row i, column j) is degraded by the series wire
        resistance of its current path, ``g / (1 + g * r_wire *
        (i + j))``.  0 disables the effect.
    endurance:
        Write cycles a cell survives before wear-out (used by the
        lifetime analysis in :mod:`repro.arch.endurance`; it does not
        alter functional behaviour here).
    """

    r_on: float = 1e4
    r_off: float = 1e6
    cell_bits: int = 4
    program_noise: float = 0.0
    read_noise: float = 0.0
    stuck_off_rate: float = 0.0
    stuck_on_rate: float = 0.0
    wire_resistance: float = 0.0
    endurance: float = 1e9

    def __post_init__(self) -> None:
        check_positive("r_on", self.r_on)
        check_positive("r_off", self.r_off)
        if self.r_off <= self.r_on:
            raise ValueError(
                f"r_off ({self.r_off}) must exceed r_on ({self.r_on})"
            )
        check_positive("cell_bits", self.cell_bits)
        check_non_negative("program_noise", self.program_noise)
        check_non_negative("read_noise", self.read_noise)
        check_in_range("stuck_off_rate", self.stuck_off_rate, 0.0, 1.0)
        check_in_range("stuck_on_rate", self.stuck_on_rate, 0.0, 1.0)
        if self.stuck_off_rate + self.stuck_on_rate > 1.0:
            raise ValueError("stuck rates sum to more than 1")
        check_non_negative("wire_resistance", self.wire_resistance)
        check_positive("endurance", self.endurance)

    @property
    def g_min(self) -> float:
        """Conductance of the fully-off state (siemens)."""
        return 1.0 / self.r_off

    @property
    def g_max(self) -> float:
        """Conductance of the fully-on state (siemens)."""
        return 1.0 / self.r_on

    @property
    def levels(self) -> int:
        """Number of programmable conductance levels."""
        return 2**self.cell_bits

    @property
    def g_step(self) -> float:
        """Conductance difference between adjacent levels."""
        return (self.g_max - self.g_min) / (self.levels - 1)

    @property
    def on_off_ratio(self) -> float:
        """Resistance window ``r_off / r_on``."""
        return self.r_off / self.r_on

    def with_noise(
        self,
        program_noise: Optional[float] = None,
        read_noise: Optional[float] = None,
    ) -> "DeviceConfig":
        """Copy of this config with different noise settings."""
        return replace(
            self,
            program_noise=(
                self.program_noise if program_noise is None else program_noise
            ),
            read_noise=self.read_noise if read_noise is None else read_noise,
        )

    def ideal(self) -> "DeviceConfig":
        """Copy with all non-idealities disabled."""
        return replace(
            self,
            program_noise=0.0,
            read_noise=0.0,
            stuck_off_rate=0.0,
            stuck_on_rate=0.0,
            wire_resistance=0.0,
        )


def apply_ir_drop(conductance: np.ndarray, wire_resistance: float) -> np.ndarray:
    """First-order static IR-drop degradation of a conductance matrix.

    The cell at (row ``i``, column ``j``) sees a series wire resistance
    proportional to its Manhattan distance from the word-line driver
    (row axis) and the bit-line sense amplifier (column axis):
    ``r_series = wire_resistance * (i + j)``.  The effective
    conductance of the cell-plus-wires path is
    ``g / (1 + g * r_series)`` — always a *reduction*, growing with
    distance, the characteristic accuracy-eating gradient of large
    crossbars.
    """
    if wire_resistance < 0:
        raise ValueError(
            f"wire_resistance must be >= 0, got {wire_resistance}"
        )
    if wire_resistance == 0.0:
        return conductance
    rows, cols = conductance.shape
    distance = np.arange(rows)[:, None] + np.arange(cols)[None, :]
    series = wire_resistance * distance
    return conductance / (1.0 + conductance * series)


class DeviceModel:
    """Programs level matrices into (noisy) conductance matrices."""

    def __init__(self, config: DeviceConfig, rng: RngLike = None) -> None:
        self.config = config
        self._rng = new_rng(rng)
        self._fault_draw: Optional[np.ndarray] = None

    def apply_stuck_faults(self, levels: np.ndarray) -> np.ndarray:
        """Force stuck-at cells to their defect level.

        Fault *placement* is a property of the physical array, not of a
        write operation: the mask is drawn once (at the first program)
        and reused for every subsequent reprogram, so training loops
        that rewrite weights each batch face the same broken cells
        throughout — the situation noise-aware training adapts to.
        """
        config = self.config
        if config.stuck_off_rate == 0.0 and config.stuck_on_rate == 0.0:
            return levels
        if self._fault_draw is None or self._fault_draw.shape != levels.shape:
            self._fault_draw = self._rng.random(levels.shape)
        draw = self._fault_draw
        out = levels.copy()
        out[draw < config.stuck_off_rate] = 0
        out[draw > 1.0 - config.stuck_on_rate] = config.levels - 1
        return out

    def program_levels(self, levels: np.ndarray) -> np.ndarray:
        """Effective stored levels after faults, noise, clip, IR drop.

        ``levels`` must be integers in ``[0, levels - 1]``; the result
        is the float level matrix the cell array actually holds — the
        computational domain of every read-path evaluation.  For an
        ideal device the result is *exactly* integer-valued (no
        conductance-domain round trip), which is what lets both
        evaluation backends produce bit-identical MVMs regardless of
        summation order.
        """
        levels = np.asarray(levels)
        config = self.config
        if np.any((levels < 0) | (levels >= config.levels)):
            raise ValueError(
                f"levels must be in [0, {config.levels - 1}]"
            )
        levels = self.apply_stuck_faults(levels)
        effective = levels.astype(np.float64)
        if config.program_noise > 0.0:
            factor = self._rng.lognormal(
                mean=0.0, sigma=config.program_noise, size=effective.shape
            )
            effective = effective * factor
        effective = np.clip(effective, 0.0, float(config.levels - 1))
        if config.wire_resistance > 0.0:
            conductance = apply_ir_drop(
                config.g_min + effective * config.g_step,
                config.wire_resistance,
            )
            effective = (conductance - config.g_min) / config.g_step
        return effective

    def program(self, levels: np.ndarray) -> np.ndarray:
        """Convert integer levels to conductances with programming error.

        ``levels`` must be integers in ``[0, levels - 1]``.  The
        returned conductances are clipped to the physical window.
        """
        config = self.config
        effective = self.program_levels(levels)
        return config.g_min + effective * config.g_step

    def read_noise_levels(self, shape, reads: int = 1) -> np.ndarray:
        """Additive per-read output noise, in conductance-level units.

        The sigma is ``read_noise`` level units per column output (the
        domain the crossbar works in after baseline correction);
        ``reads`` independent reads accumulate as ``sqrt(reads)``.
        """
        config = self.config
        if config.read_noise == 0.0:
            return np.zeros(shape)
        sigma = config.read_noise * np.sqrt(reads)
        return self._rng.normal(0.0, sigma, size=shape)


#: Device used by PipeLayer-style experiments (4-bit MLC, ideal).
PIPELAYER_DEVICE = DeviceConfig(r_on=1e4, r_off=1e6, cell_bits=4)

#: A pessimistic realistic device for noise-sensitivity studies.
NOISY_DEVICE = DeviceConfig(
    r_on=1e4,
    r_off=1e6,
    cell_bits=4,
    program_noise=0.05,
    read_noise=0.2,
    stuck_off_rate=0.001,
    stuck_on_rate=0.001,
)
