"""Integrate-and-fire analog-to-digital conversion (Sec. III-A-3(b)).

PipeLayer digitises bit-line currents with an integrate-and-fire (I&F)
circuit feeding a counter: the column current charges a capacitor;
every time the integrated charge crosses a threshold the circuit fires
a spike and resets; the spike count is the digital value.  Functionally
that is a uniform quantizer of charge with a bounded count range, which
is what :class:`IntegrateFireADC` implements — in *level units* (one
unit = the current of one conductance step under unit drive), so the
same object serves any device configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ADCConfig:
    """Resolution and full-scale range of the I&F converter.

    Parameters
    ----------
    bits:
        Counter width; the output saturates at ``2**bits - 1`` counts.
    full_scale_levels:
        Analog input (in conductance-level units) that maps to the full
        count.  For loss-free conversion of a ``rows``-row array with
        ``levels``-level cells this must be at least
        ``rows * (levels - 1)`` with ``bits >= log2`` of the same.
    """

    bits: int = 8
    full_scale_levels: float = 255.0

    def __post_init__(self) -> None:
        check_positive("bits", self.bits)
        check_positive("full_scale_levels", self.full_scale_levels)

    @property
    def max_count(self) -> int:
        """Largest representable spike count."""
        return 2**self.bits - 1

    @property
    def levels_per_count(self) -> float:
        """Analog level units represented by one spike."""
        return self.full_scale_levels / self.max_count

    @classmethod
    def lossless_for(cls, rows: int, cell_levels: int) -> "ADCConfig":
        """Config that digitises a column exactly (no quantization loss).

        A column of ``rows`` cells each holding up to ``cell_levels - 1``
        level units needs ``rows * (cell_levels - 1) + 1`` distinct
        counts under binary (0/1) word-line drive.
        """
        check_positive("rows", rows)
        check_positive("cell_levels", cell_levels)
        needed = rows * (cell_levels - 1)
        bits = max(1, int(np.ceil(np.log2(needed + 1))))
        # Full scale equals the max count so one count == one level unit
        # and integer inputs convert exactly.
        return cls(bits=bits, full_scale_levels=float(2**bits - 1))


def quantize_levels(level_values: np.ndarray, config: ADCConfig) -> np.ndarray:
    """The I&F transfer function, vectorized over any input shape.

    Values are clipped at the full scale (counter saturation) and
    floored at zero (the I&F cannot fire a negative spike), snapped to
    the count grid, then mapped back to level units.  Both the per-array
    loop path and the stacked vectorized backend apply exactly this
    function, so ADC quantization is bit-identical between them.
    """
    level_values = np.asarray(level_values, dtype=np.float64)
    clipped = np.clip(level_values, 0.0, config.full_scale_levels)
    counts = np.rint(clipped / config.levels_per_count)
    return counts * config.levels_per_count


class IntegrateFireADC:
    """Quantize analog column outputs (level units) to spike counts."""

    def __init__(self, config: ADCConfig) -> None:
        self.config = config
        self.conversions = 0

    def convert(self, level_values: np.ndarray) -> np.ndarray:
        """Digitise ``level_values``; returns the same units, quantized.

        Delegates to :func:`quantize_levels` (the shared quantization
        seam) and counts the conversions for the energy models.
        """
        level_values = np.asarray(level_values, dtype=np.float64)
        self.conversions += int(level_values.size)
        return quantize_levels(level_values, self.config)

    def counts(self, level_values: np.ndarray) -> np.ndarray:
        """Raw spike counts (integers) for ``level_values``."""
        level_values = np.asarray(level_values, dtype=np.float64)
        clipped = np.clip(level_values, 0.0, self.config.full_scale_levels)
        return np.rint(clipped / self.config.levels_per_count).astype(np.int64)

    def is_lossless_for(self, rows: int, cell_levels: int) -> bool:
        """Whether this ADC digitises such a column without loss."""
        needed = rows * (cell_levels - 1)
        return (
            self.config.full_scale_levels >= needed
            and self.config.max_count >= needed
        )
