"""Weight-to-conductance mapping: sign handling and bit slicing.

A crossbar cell holds a small non-negative conductance, but DNN weights
are signed and need more precision than one cell provides.  Following
the PRIME/ISAAC/PipeLayer designs the paper builds on:

* **Sign** — either a *differential* pair of arrays (positive weights
  in one, negative magnitudes in the other, outputs subtracted; this
  is ReGAN's "positive subarray and negative subarray ... merged by the
  subtractor", Fig. 10 B) or an *offset* scheme (store ``w + W_max``
  unsigned and subtract ``W_max * sum(inputs)`` digitally).
* **Precision** — an integer weight is sliced into base-``2**cell_bits``
  digits spread across ``n_slices`` cell columns whose digitised
  outputs are shift-added (PipeLayer stores 16-bit weights in four
  4-bit cells).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.utils.validation import check_choice, check_positive


@dataclass(frozen=True)
class WeightMapping:
    """How float weights become cell levels.

    Parameters
    ----------
    weight_bits:
        Total signed weight resolution (sign + magnitude).
    cell_bits:
        Bits per ReRAM cell (must divide the magnitude into whole
        slices; the number of slices is ``ceil((weight_bits - 1) /
        cell_bits)``).
    scheme:
        ``"differential"`` or ``"offset"`` sign handling.
    """

    weight_bits: int = 16
    cell_bits: int = 4
    scheme: str = "differential"

    def __post_init__(self) -> None:
        check_positive("weight_bits", self.weight_bits)
        check_positive("cell_bits", self.cell_bits)
        if self.weight_bits < 2:
            raise ValueError("weight_bits must be >= 2 (sign + magnitude)")
        check_choice("scheme", self.scheme, ("differential", "offset"))

    @property
    def magnitude_bits(self) -> int:
        """Bits devoted to |w| (sign handled by the scheme)."""
        return self.weight_bits - 1

    @property
    def max_int(self) -> int:
        """Largest representable weight magnitude integer."""
        return 2**self.magnitude_bits - 1

    @property
    def n_slices(self) -> int:
        """Cells per weight (bit slices of the magnitude)."""
        return -(-self.magnitude_bits // self.cell_bits)  # ceil division

    @property
    def cells_per_weight(self) -> int:
        """Physical cells one signed weight occupies."""
        factor = 2 if self.scheme == "differential" else 1
        return factor * self.n_slices


@dataclass
class SlicedWeights:
    """Result of mapping a float matrix into cell-level planes.

    ``slices`` is a list (LSB slice first) of integer level matrices of
    the original weight-matrix shape; reconstruction is::

        q = sum(slices[s] * (2**cell_bits)**s)     # per sign plane
        W ~= (q_pos - q_neg) * scale               # differential
        W ~= (q - offset_int) * scale              # offset
    """

    mapping: WeightMapping
    scale: float
    pos_slices: List[np.ndarray]
    neg_slices: List[np.ndarray]
    offset_int: int

    @property
    def shape(self) -> Tuple[int, int]:
        return self.pos_slices[0].shape

    def reconstruct(self) -> np.ndarray:
        """Exact float matrix the mapping represents (noise-free)."""
        radix = float(2**self.mapping.cell_bits)
        positive = np.zeros(self.shape)
        negative = np.zeros(self.shape)
        for index, plane in enumerate(self.pos_slices):
            positive += plane.astype(np.float64) * radix**index
        for index, plane in enumerate(self.neg_slices):
            negative += plane.astype(np.float64) * radix**index
        if self.mapping.scheme == "differential":
            return (positive - negative) * self.scale
        return (positive - self.offset_int) * self.scale


def quantize_weights(
    weights: np.ndarray, mapping: WeightMapping
) -> Tuple[np.ndarray, float]:
    """Symmetric quantization of a float matrix to signed integers.

    Returns ``(q, scale)`` with ``q`` in ``[-max_int, max_int]`` and
    ``weights ~= q * scale``.  An all-zero matrix maps to scale 1.
    """
    weights = np.asarray(weights, dtype=np.float64)
    amplitude = float(np.max(np.abs(weights))) if weights.size else 0.0
    scale = amplitude / mapping.max_int
    if scale == 0.0:
        # All-zero matrix, or an amplitude so small the scale
        # underflows float64 — either way, nothing representable.
        return np.zeros(weights.shape, dtype=np.int64), 1.0
    quantized = np.rint(weights / scale).astype(np.int64)
    return np.clip(quantized, -mapping.max_int, mapping.max_int), scale


def slice_magnitudes(
    magnitudes: np.ndarray, mapping: WeightMapping
) -> List[np.ndarray]:
    """Split non-negative integers into base-``2**cell_bits`` digits.

    LSB digit first; every digit is a valid cell level.
    """
    magnitudes = np.asarray(magnitudes)
    if np.any(magnitudes < 0):
        raise ValueError("magnitudes must be non-negative")
    radix = 2**mapping.cell_bits
    work = magnitudes.astype(np.int64)
    slices = []
    for _ in range(mapping.n_slices):
        slices.append(work % radix)
        work //= radix
    if np.any(work != 0):
        raise ValueError(
            f"magnitudes exceed {mapping.n_slices} slices of "
            f"{mapping.cell_bits} bits"
        )
    return slices


def map_weights(weights: np.ndarray, mapping: WeightMapping) -> SlicedWeights:
    """Full mapping: float matrix -> per-slice cell-level planes."""
    quantized, scale = quantize_weights(weights, mapping)
    if mapping.scheme == "differential":
        positive = np.maximum(quantized, 0)
        negative = np.maximum(-quantized, 0)
        return SlicedWeights(
            mapping=mapping,
            scale=scale,
            pos_slices=slice_magnitudes(positive, mapping),
            neg_slices=slice_magnitudes(negative, mapping),
            offset_int=0,
        )
    # Offset scheme: store q + max_int as an unsigned value.  The
    # shifted range is [0, 2*max_int], one bit wider than the magnitude;
    # grow the slice count if needed.
    shifted = quantized + mapping.max_int
    wide = WeightMapping(
        weight_bits=mapping.weight_bits + 1,
        cell_bits=mapping.cell_bits,
        scheme="offset",
    )
    slices = slice_magnitudes(shifted, wide)
    zero_plane = [np.zeros_like(plane) for plane in slices]
    return SlicedWeights(
        mapping=WeightMapping(
            weight_bits=wide.weight_bits,
            cell_bits=mapping.cell_bits,
            scheme="offset",
        ),
        scale=scale,
        pos_slices=slices,
        neg_slices=zero_plane,
        offset_int=mapping.max_int,
    )
