"""Error-propagation metrics: where a fault's damage goes.

A reliability campaign wants more than a final accuracy number — it
wants to see *where* injected faults enter the computation and how far
they travel.  :func:`lockstep_trace` runs a golden (exact float)
network and its fault-injected crossbar twin over the same inputs,
layer pair by layer pair, and accumulates the divergence after every
weighted layer; :func:`weight_error` measures the damage already done
in the weight domain (what the arrays hold vs what was asked for).

Both networks must be architecturally identical with identical
parameters — the campaign builds them from the same workload seed and
copies the trained weights across — so every divergence is
attributable to the injected device faults alone.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.nn.layers import Conv2D, Dense, FractionalStridedConv2D
from repro.nn.network import Sequential

#: Layer types whose forward pass runs through a crossbar engine.
WEIGHT_LAYERS = (Dense, Conv2D, FractionalStridedConv2D)


def relative_rms(error_sse: float, reference_energy: float) -> float:
    """Relative RMS error ``sqrt(sum(err^2) / sum(ref^2))``.

    0 when the reference signal itself is identically zero (no signal,
    no meaningful relative error).
    """
    if reference_energy == 0.0:
        return 0.0
    return float(np.sqrt(error_sse / reference_energy))


def lockstep_trace(
    reference: Sequential,
    faulty: Sequential,
    inputs: np.ndarray,
    batch: int = 32,
) -> Tuple[np.ndarray, np.ndarray, List[Dict[str, float]]]:
    """Forward both networks in lockstep, tracking per-layer divergence.

    Returns ``(reference_logits, faulty_logits, layer_records)`` where
    ``layer_records`` holds, for each weighted layer in network order,
    the relative RMS error and worst absolute error of the faulty
    network's activations immediately after that layer — the
    error-propagation profile of the injected faults.
    """
    if len(reference.layers) != len(faulty.layers):
        raise ValueError(
            f"networks differ in depth: {len(reference.layers)} vs "
            f"{len(faulty.layers)}"
        )
    tracked = [
        (index, layer.name)
        for index, layer in enumerate(faulty.layers)
        if isinstance(layer, WEIGHT_LAYERS)
    ]
    sse = {index: 0.0 for index, _ in tracked}
    energy = {index: 0.0 for index, _ in tracked}
    max_abs = {index: 0.0 for index, _ in tracked}
    ref_logits = []
    faulty_logits = []
    count = inputs.shape[0]
    for start in range(0, count, batch):
        x_ref = inputs[start : start + batch]
        x_faulty = x_ref
        for index, (ref_layer, faulty_layer) in enumerate(
            zip(reference.layers, faulty.layers)
        ):
            x_ref = ref_layer.forward(x_ref, training=False)
            x_faulty = faulty_layer.forward(x_faulty, training=False)
            if index in sse:
                difference = x_faulty - x_ref
                sse[index] += float(np.sum(difference * difference))
                energy[index] += float(np.sum(x_ref * x_ref))
                max_abs[index] = max(
                    max_abs[index], float(np.max(np.abs(difference)))
                )
        ref_logits.append(x_ref)
        faulty_logits.append(x_faulty)
    records = [
        {
            "layer": name,
            "output_rms_error": relative_rms(sse[index], energy[index]),
            "output_max_abs_error": max_abs[index],
        }
        for index, name in tracked
    ]
    return (
        np.concatenate(ref_logits, axis=0),
        np.concatenate(faulty_logits, axis=0),
        records,
    )


def weight_error(engine) -> float:
    """Relative RMS deviation of programmed vs requested weights.

    Compares the matrix the arrays physically hold (with programming
    noise and stuck faults baked in) against the quantized matrix the
    compiler asked for; 0 for an ideal device.
    """
    requested = engine.quantized_weights()
    effective = engine.effective_weights()
    difference = effective - requested
    return relative_rms(
        float(np.sum(difference * difference)),
        float(np.sum(requested * requested)),
    )


def output_metrics(
    ref_logits: np.ndarray,
    faulty_logits: np.ndarray,
    labels: np.ndarray,
) -> Dict[str, float]:
    """Network-output damage summary of one scenario run.

    ``mismatch_rate`` is the fraction of inputs whose *prediction*
    changed relative to the golden network — the end-to-end soft-error
    rate the fault tolerance literature reports — independent of
    whether either prediction is correct.
    """
    ref_predictions = np.argmax(ref_logits, axis=1)
    faulty_predictions = np.argmax(faulty_logits, axis=1)
    difference = faulty_logits - ref_logits
    return {
        "accuracy": float(np.mean(faulty_predictions == labels)),
        "mismatch_rate": float(np.mean(faulty_predictions != ref_predictions)),
        "logit_rms_error": relative_rms(
            float(np.sum(difference * difference)),
            float(np.sum(ref_logits * ref_logits)),
        ),
    }
