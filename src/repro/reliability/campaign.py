"""Deterministic fault-injection campaigns over simulated workloads.

A *campaign* answers the question the fault-tolerance literature keeps
asking of ReRAM accelerators: how fast does a deployed network degrade
as device faults scale up?  :func:`run_campaign` sweeps one fault axis
(stuck cells, transient read upsets, conductance drift, programming or
read noise) across a workload from the :class:`repro.api.Simulator`
facade and reports per-scenario, per-layer, and per-tile damage as one
JSON-able document.

Seeding discipline
------------------
Everything derives from the single ``seed`` argument: the network
weights, the (float) reference training run, the evaluation inputs,
and every per-array device stream.  Two campaigns with the same
arguments produce **byte-identical** JSON; and because each device
effect draws from its own child stream, sweeping one axis moves only
that effect — stuck-fault *placement*, for example, is nested across
rates (the cells broken at 0.1% are a subset of those broken at 1%).
The ``"both"`` backend mode runs every scenario through the loop and
vectorized engines and verifies the reports agree exactly — the
backend-equivalence contract, enforced at campaign granularity.

Sweep cells
-----------
Each (backend × scenario) point of a campaign is one pure sweep cell
(:func:`run_campaign_cell`, kind ``"campaign_scenario"``): the cell
spec carries the complete configuration — workload, seed, scenario,
engine config as plain data — and the cell rebuilds its golden
reference deterministically in whatever process it lands (memoised
per process, so a worker trains the reference once, not once per
cell).  :func:`run_campaign` is the ``workers=1`` configuration of
that same machinery; ``workers=N`` shards the cells over a process
pool and merges a byte-identical report.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.reliability.metrics import (
    lockstep_trace,
    output_metrics,
    weight_error,
)
from repro.sweep import SweepCache, SweepCell, run_sweep
from repro.telemetry import NULL_COLLECTOR, SCHEMA_VERSION, TelemetryLike
from repro.utils.validation import check_choice, check_positive
from repro.xbar.device import DeviceConfig
from repro.xbar.engine import (
    CrossbarEngineConfig,
    engine_config_from_dict,
    engine_config_to_dict,
)

#: Sweepable fault axes: name -> DeviceConfig overrides at one rate.
#: The "stuck" axis splits the rate evenly between stuck-off and
#: stuck-on cells (fabrication defects come in both polarities).
AXES: Dict[str, Callable[[float], Dict[str, float]]] = {
    "stuck": lambda rate: {
        "stuck_off_rate": rate / 2.0,
        "stuck_on_rate": rate / 2.0,
    },
    "upset": lambda rate: {"upset_rate": rate},
    "drift": lambda rate: {"drift_nu": rate},
    "program": lambda rate: {"program_noise": rate},
    "read": lambda rate: {"read_noise": rate},
}

#: Default sweep points per axis (always starting from the fault-free
#: point, so every report carries its own quantization-only floor).
DEFAULT_RATES: Dict[str, Sequence[float]] = {
    "stuck": (0.0, 0.001, 0.01, 0.05),
    "upset": (0.0, 0.001, 0.01, 0.05),
    "drift": (0.0, 0.01, 0.05, 0.2),
    "program": (0.0, 0.02, 0.05, 0.1),
    "read": (0.0, 0.1, 0.3, 1.0),
}

BACKENDS = ("loop", "vectorized", "both")


class BackendMismatchError(AssertionError):
    """Loop and vectorized backends disagreed on a fault outcome.

    Raised by ``backend="both"`` campaigns; either backend alone is
    deterministic, so a mismatch means the bit-identity contract of
    :mod:`repro.xbar.engine` is broken, not that the run is noisy.
    """


@dataclass(frozen=True)
class FaultScenario:
    """One point of a sweep: an axis at a rate."""

    name: str
    axis: str
    rate: float

    def device(self, base: DeviceConfig) -> DeviceConfig:
        """The base device with this scenario's fault rate applied."""
        return replace(base, **AXES[self.axis](self.rate))


def scenarios_for(
    axis: str, rates: Optional[Sequence[float]] = None
) -> List[FaultScenario]:
    """Build the scenario list for one axis (default rates if ``None``)."""
    check_choice("axis", axis, tuple(sorted(AXES)))
    if rates is None:
        rates = DEFAULT_RATES[axis]
    return [
        FaultScenario(name=f"{axis}={float(rate):g}", axis=axis, rate=float(rate))
        for rate in rates
    ]


def _scenario_result(
    scenario: FaultScenario,
    workload: str,
    seed: int,
    base_config: CrossbarEngineConfig,
    backend: str,
    reference,
    inputs: np.ndarray,
    labels: np.ndarray,
    baseline_accuracy: float,
    batch: int,
    include_tiles: bool,
    collector: Optional[TelemetryLike] = None,
) -> Dict[str, Any]:
    """Run one scenario through one backend and report its damage."""
    from repro.api import Simulator

    device = scenario.device(base_config.device)
    config = replace(base_config, device=device)
    sim = Simulator.from_workload(
        workload,
        engine_config=config,
        backend=backend,
        seed=seed,
        collector=collector,
    )
    # The scenario network inherits the golden network's (trained)
    # weights, so every divergence below is injected-fault damage.
    for source, target in zip(
        reference.network.parameters(), sim.network.parameters()
    ):
        target.copy_from(source)
    ref_logits, faulty_logits, layer_records = lockstep_trace(
        reference.network, sim.network, inputs, batch=batch
    )
    metrics = output_metrics(ref_logits, faulty_logits, labels)
    layers = []
    engines = sim.deployment.engines if sim.deployment else {}
    for record in layer_records:
        entry: Dict[str, Any] = dict(record)
        engine = engines.get(record["layer"])
        if engine is not None:
            fault = engine.fault_report()
            entry["weight_rms_error"] = weight_error(engine)
            entry["arrays"] = engine.array_count
            entry["cells"] = fault["cells"]
            entry["stuck_off"] = fault["stuck_off"]
            entry["stuck_on"] = fault["stuck_on"]
            if include_tiles:
                entry["tiles"] = fault["tiles"]
        layers.append(entry)
    stats = sim.stats()
    sim.undeploy()
    return {
        "name": scenario.name,
        "axis": scenario.axis,
        "rate": scenario.rate,
        "device": AXES[scenario.axis](scenario.rate),
        "accuracy": metrics["accuracy"],
        "accuracy_drop": baseline_accuracy - metrics["accuracy"],
        "mismatch_rate": metrics["mismatch_rate"],
        "logit_rms_error": metrics["logit_rms_error"],
        "layers": layers,
        "stats": stats,
    }


@dataclass
class ReferenceContext:
    """The golden float model plus its evaluation set and baseline."""

    reference: Any
    inputs: np.ndarray
    labels: np.ndarray
    baseline_accuracy: float


#: Per-process memo of reference contexts keyed by their defining
#: arguments.  A worker process runs many cells of the same campaign;
#: the (trained) golden reference is identical for all of them, so it
#: is built once per process and reused.  Bounded small: a process
#: rarely serves more than one campaign configuration at a time.
_REFERENCE_MEMO: Dict[str, ReferenceContext] = {}
_REFERENCE_MEMO_MAX = 2


def _build_reference(
    workload: str,
    seed: int,
    count: int,
    batch: int,
    train_epochs: int,
    train_count: int,
    collector: Optional[TelemetryLike],
) -> ReferenceContext:
    from repro.api import Simulator
    from repro.serve.jobs import TrainingJob

    reference = Simulator.from_workload(
        workload, seed=seed, deploy=False, collector=collector
    )
    if train_epochs > 0:
        reference.run(
            TrainingJob(
                workload=workload,
                seed=seed,
                epochs=train_epochs,
                batch=batch,
                train_count=train_count,
            )
        )
    inputs, labels = reference.make_inputs(count)
    baseline_logits = np.concatenate(
        [
            reference.network.forward(
                inputs[start : start + batch], training=False
            )
            for start in range(0, count, batch)
        ],
        axis=0,
    )
    baseline_accuracy = float(
        np.mean(np.argmax(baseline_logits, axis=1) == labels)
    )
    return ReferenceContext(reference, inputs, labels, baseline_accuracy)


def reference_context(
    workload: str,
    seed: int,
    count: int,
    batch: int,
    train_epochs: int,
    train_count: int,
    collector: Optional[TelemetryLike] = None,
) -> ReferenceContext:
    """Golden reference for one campaign configuration, memoised.

    Deterministic in its arguments (the same seed trains the same
    network and draws the same inputs in any process), so the
    per-process memo changes cost, never results.  The memo is only
    consulted for *untelemetered* requests — a caller that passes a
    live collector gets a fresh build so its ``reference/...`` counter
    tree is complete — but every build (telemetered or not) is stored,
    which is how ``workers=1`` cells reuse the context their campaign
    just built.
    """
    key = repr(
        (
            workload,
            int(seed),
            int(count),
            int(batch),
            int(train_epochs),
            int(train_count),
        )
    )
    live = collector is not None and bool(collector)
    if not live and key in _REFERENCE_MEMO:
        return _REFERENCE_MEMO[key]
    context = _build_reference(
        workload, seed, count, batch, train_epochs, train_count, collector
    )
    while len(_REFERENCE_MEMO) >= _REFERENCE_MEMO_MAX:
        _REFERENCE_MEMO.pop(next(iter(_REFERENCE_MEMO)))
    _REFERENCE_MEMO[key] = context
    return context


def run_campaign_cell(
    spec: Dict[str, Any], collector: TelemetryLike
) -> Dict[str, Any]:
    """Sweep cell function for one (backend × scenario) campaign point.

    Pure and pickle-free by construction (module-level, plain-data
    spec): the spec carries everything — workload, seed, the scenario
    triple, the full engine config as a dict — and the golden
    reference is rebuilt deterministically in whichever process the
    cell lands (see :func:`reference_context`).  Registered as sweep
    kind ``"campaign_scenario"``.
    """
    scenario = FaultScenario(
        name=str(spec["name"]),
        axis=str(spec["axis"]),
        rate=float(spec["rate"]),
    )
    base_config = engine_config_from_dict(spec["engine_config"])
    context = reference_context(
        spec["workload"],
        int(spec["seed"]),
        int(spec["count"]),
        int(spec["batch"]),
        int(spec["train_epochs"]),
        int(spec["train_count"]),
    )
    return _scenario_result(
        scenario,
        str(spec["workload"]),
        int(spec["seed"]),
        base_config,
        str(spec["backend"]),
        context.reference,
        context.inputs,
        context.labels,
        context.baseline_accuracy,
        int(spec["batch"]),
        bool(spec["include_tiles"]),
        collector=collector,
    )


def run_campaign(
    workload: str = "mlp",
    axis: str = "stuck",
    rates: Optional[Sequence[float]] = None,
    seed: int = 0,
    count: int = 64,
    batch: int = 32,
    backend: str = "vectorized",
    engine_config: Optional[CrossbarEngineConfig] = None,
    train_epochs: int = 5,
    train_count: int = 256,
    include_tiles: bool = True,
    collector: Optional[TelemetryLike] = None,
    workers: int = 1,
    sweep_cache: Optional[SweepCache] = None,
    shard_order: Optional[Sequence[int]] = None,
    mp_context: Optional[str] = None,
) -> Dict[str, Any]:
    """Sweep one fault axis across a workload; return the full report.

    Parameters
    ----------
    workload:
        A :attr:`repro.api.Simulator.WORKLOADS` name.
    axis, rates:
        The fault knob to sweep (see :data:`AXES`) and its sweep
        points; ``None`` takes :data:`DEFAULT_RATES`.
    seed:
        Master seed — same arguments, same seed: byte-identical report.
    count, batch:
        Evaluation inputs and lockstep batch size.
    backend:
        ``"loop"``, ``"vectorized"``, or ``"both"`` (run both, verify
        identical fault outcomes, raise :class:`BackendMismatchError`
        otherwise).
    engine_config:
        Base crossbar pipeline; scenario devices are grafted onto it.
    train_epochs, train_count:
        Float-path epochs and training-set size used to train the
        golden network before evaluation (``train_epochs=0`` keeps the
        untrained init, where accuracy sits at chance and only
        mismatch/error metrics carry signal).
    include_tiles:
        Attach the per-tile stuck-cell census to every layer record.
    collector:
        Optional :class:`repro.telemetry.Collector` (or scoped view):
        the reference training run writes under ``reference/...``, each
        scenario's engines under ``scenario[<name>]/...`` (prefixed by
        ``backend[<name>]/`` in ``"both"`` mode so the two runs stay
        separable), plus campaign-level ``scenarios`` counters and —
        on the single-process path — per-scenario timing spans.
    workers:
        Process count for the scenario sweep.  ``workers=1`` runs the
        cells inline (the legacy single-process path); any value
        produces a byte-identical report.
    sweep_cache:
        Optional :class:`repro.sweep.SweepCache`: completed scenario
        cells replay from disk, so an interrupted campaign resumes
        without recomputation.
    shard_order, mp_context:
        Passed through to :func:`repro.sweep.run_sweep` (test hooks).
    """
    check_choice("backend", backend, BACKENDS)
    check_positive("count", count)
    check_positive("batch", batch)
    tel = collector if collector is not None else NULL_COLLECTOR
    scenarios = scenarios_for(axis, rates)
    base_config = engine_config or CrossbarEngineConfig()

    # Golden model: exact float forward, trained on the float path.
    # Built through the same memoised context the cells use, so the
    # inline (workers=1) cells reuse it instead of retraining.
    with tel.span("reference"):
        context = reference_context(
            workload,
            seed,
            count,
            batch,
            train_epochs,
            train_count,
            collector=tel.scope("reference"),
        )
    baseline_accuracy = context.baseline_accuracy

    backends = ("loop", "vectorized") if backend == "both" else (backend,)
    config_dict = engine_config_to_dict(base_config)
    cells: List[SweepCell] = []
    scopes: List[str] = []
    for run_backend in backends:
        for scenario in scenarios:
            scope = f"scenario[{scenario.name}]"
            if backend == "both":
                scope = f"backend[{run_backend}]/{scope}"
            scopes.append(scope)
            cells.append(
                SweepCell(
                    "campaign_scenario",
                    {
                        "name": scenario.name,
                        "axis": scenario.axis,
                        "rate": scenario.rate,
                        "workload": workload,
                        "seed": int(seed),
                        "count": int(count),
                        "batch": int(batch),
                        "backend": run_backend,
                        "engine_config": config_dict,
                        "train_epochs": int(train_epochs),
                        "train_count": int(train_count),
                        "include_tiles": bool(include_tiles),
                    },
                )
            )

    sweep = run_sweep(
        cells,
        workers=workers,
        cache=sweep_cache,
        collector=tel,
        scope_for=lambda index, cell: scopes[index],
        shard_order=shard_order,
        mp_context=mp_context,
    )
    tel.count("scenarios", len(cells))
    results_flat = sweep.results()
    per_backend: Dict[str, List[Dict[str, Any]]] = {
        run_backend: results_flat[
            position * len(scenarios) : (position + 1) * len(scenarios)
        ]
        for position, run_backend in enumerate(backends)
    }
    backends_match: Optional[bool] = None
    if backend == "both":
        for loop_result, vec_result in zip(
            per_backend["loop"], per_backend["vectorized"]
        ):
            if loop_result != vec_result:
                raise BackendMismatchError(
                    f"scenario {loop_result['name']!r}: loop and "
                    f"vectorized backends reported different fault "
                    f"outcomes under seed {seed}"
                )
        backends_match = True
    results = per_backend[backends[-1]]

    report: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "workload": workload,
        "axis": axis,
        "rates": [scenario.rate for scenario in scenarios],
        "seed": int(seed),
        "count": int(count),
        "batch": int(batch),
        "train_epochs": int(train_epochs),
        "train_count": int(train_count),
        "backend": backend,
        "base_device": asdict(base_config.device),
        "baseline_accuracy": baseline_accuracy,
        "scenarios": results,
    }
    if backends_match is not None:
        report["backends_match"] = backends_match
    return report


def campaign_summary(report: Dict[str, Any]) -> str:
    """Human-readable rendering of a campaign report (CLI text mode)."""
    lines = [
        f"reliability campaign: {report['workload']} / {report['axis']} "
        f"axis, {report['count']} inputs, seed {report['seed']}, "
        f"backend {report['backend']}"
        + (
            " (loop == vectorized ✓)"
            if report.get("backends_match")
            else ""
        ),
        f"golden accuracy {report['baseline_accuracy']:.3f} "
        f"(float reference, {report['train_epochs']} epoch(s))",
        f"{'scenario':<16s}{'accuracy':>10s}{'drop':>8s}"
        f"{'mismatch':>10s}{'logit rms':>11s}{'stuck':>8s}",
    ]
    for scenario in report["scenarios"]:
        stuck = sum(
            layer.get("stuck_off", 0) + layer.get("stuck_on", 0)
            for layer in scenario["layers"]
        )
        lines.append(
            f"{scenario['name']:<16s}{scenario['accuracy']:>10.3f}"
            f"{scenario['accuracy_drop']:>8.3f}"
            f"{scenario['mismatch_rate']:>10.3f}"
            f"{scenario['logit_rms_error']:>11.4f}{stuck:>8d}"
        )
    worst = report["scenarios"][-1]
    deepest = max(
        worst["layers"],
        key=lambda layer: layer["output_rms_error"],
        default=None,
    )
    if deepest is not None:
        lines.append(
            f"worst scenario {worst['name']}: largest layer error at "
            f"{deepest['layer']} (rms {deepest['output_rms_error']:.4f})"
        )
    return "\n".join(lines)
