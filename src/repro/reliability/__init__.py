"""Deterministic fault-injection & reliability campaigns.

The robustness/observability layer over the crossbar simulator: sweep
a fault axis (stuck cells, transient read upsets, conductance drift,
programming/read noise) across a deployed workload and report
accuracy degradation and error propagation per scenario, per layer,
and per tile — reproducibly (one seed, byte-identical JSON) and
backend-consistently (loop and vectorized engines report identical
fault outcomes).
"""

from repro.reliability.campaign import (
    AXES,
    DEFAULT_RATES,
    BackendMismatchError,
    FaultScenario,
    campaign_summary,
    run_campaign,
    scenarios_for,
)
from repro.reliability.metrics import (
    lockstep_trace,
    output_metrics,
    relative_rms,
    weight_error,
)

__all__ = [
    "AXES",
    "DEFAULT_RATES",
    "BackendMismatchError",
    "FaultScenario",
    "campaign_summary",
    "run_campaign",
    "scenarios_for",
    "lockstep_trace",
    "output_metrics",
    "relative_rms",
    "weight_error",
]
