"""Command-line interface: regenerate the paper's results from a shell.

Usage::

    repro table1                        # both Table I rows
    repro table1 --json                 # same, machine-readable
    repro fig4                          # mapping trade-off sweep
    repro fig5 --layers 8               # pipeline cycles + chart
    repro fig9                          # GAN pipeline schemes
    repro summary alexnet               # workload inventory
    repro trace --layers 3 --batch 4    # ASCII Gantt
    repro infer mnist_cnn --backend vectorized
    repro train mlp --epochs 2
    repro reliability mlp --axis stuck --backend both
    repro serve --port 8077             # multi-tenant job server
    repro serve --smoke 20 --json       # CI smoke: mixed jobs, twice
    repro top --port 8077               # live per-tenant latency table
    repro check --format json          # determinism/contract linter

(``python -m repro.cli ...`` works identically when the console script
is not installed.)

Every subcommand accepts the shared ``--seed`` / ``--batch`` options
and a ``--json`` flag that switches the output to a machine-readable
document.  All result data comes from :mod:`repro.api` — the CLI is a
thin presentation layer over the same facade library users import.

``repro profile <subcommand> ...`` wraps any other subcommand in a
:class:`repro.telemetry.Collector` and reports hierarchical counters,
timing spans, and a Chrome-trace file on top of the wrapped workload.
``repro report`` renders the *derived* metrics — stage utilization,
bubbles, ADC conversions per MAC — from a saved profile JSON or a
freshly run subcommand.  ``repro bench`` drives the whole benchmark
suite through one registry and gates on the committed baselines.

The global ``--log-level`` / ``-v`` flags wire Python ``logging``
through the stack (component-prefixed ``repro.*`` loggers); the
default is WARNING, so unflagged output is byte-identical.
"""

from __future__ import annotations

import argparse
import io
import json
import sys
import time
from pathlib import Path
from typing import Any, List, Optional, Tuple

from repro import api
from repro.reliability import AXES, campaign_summary
from repro.telemetry import (
    SCHEMA_VERSION,
    Collector,
    analyze_counters,
    counters_from,
    histogram_percentiles,
    parse_prometheus,
    profile_report,
    render_analysis_report,
    sample_value,
    validate_analysis_report,
    validate_profile_report,
)
from repro.utils.logging import configure as _configure_logging
from repro.workloads import (
    alexnet_spec,
    mnist_cnn_spec,
    regan_suite,
    vggnet_spec,
)

#: Subcommands that may not be wrapped by profile/report (they are
#: wrappers, whole-suite drivers, long-lived servers, or — like the
#: linter — not simulations at all).
_UNWRAPPABLE = ("profile", "report", "bench", "check", "serve", "top")

_WORKLOADS = {
    "mnist": mnist_cnn_spec,
    "alexnet": alexnet_spec,
    "vggnet": vggnet_spec,
}


def _emit(args: argparse.Namespace, document: Any, text: str) -> int:
    """Print ``document`` as JSON or the human ``text`` rendering.

    Every JSON document leaving the CLI carries ``schema_version``:
    dictionaries that lack the field gain it, bare lists are wrapped as
    ``{"schema_version": ..., "rows": [...]}``.
    """
    if args.json:
        if isinstance(document, dict):
            if "schema_version" not in document:
                document = {"schema_version": SCHEMA_VERSION, **document}
        else:
            document = {"schema_version": SCHEMA_VERSION, "rows": document}
        json.dump(document, sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        print(text)
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    rows = api.Simulator.table1(batch=args.batch)
    text = "\n\n".join(row.summary() for row in rows.values())
    return _emit(args, api.table1_report(batch=args.batch), text)


def _cmd_fig4(args: argparse.Namespace) -> int:
    sweep = api.mapping_sweep()
    lines = ["Fig. 4 mapping trade-off (114x114x128 -> 112x112x256, 3x3):"]
    lines.append(f"{'X':>8s} {'passes/img':>12s} {'arrays':>10s}")
    for row in sweep["rows"]:
        lines.append(
            f"{row['duplication']:>8d} {row['passes_per_image']:>12d} "
            f"{row['arrays']:>10d}"
        )
    return _emit(args, sweep, "\n".join(lines))


def _cmd_fig5(args: argparse.Namespace) -> int:
    sweep = api.pipeline_sweep(layers=args.layers)
    lines = [f"Fig. 5 pipeline, L = {args.layers}:"]
    lines.append(
        f"{'B':>6s} {'sequential':>12s} {'pipelined':>12s} {'speedup':>9s}"
    )
    for row in sweep["rows"]:
        lines.append(
            f"{row['batch']:>6d} {row['sequential_cycles']:>12d} "
            f"{row['pipelined_cycles']:>12d} {row['speedup']:>8.2f}x"
        )
    return _emit(args, sweep, "\n".join(lines))


def _cmd_fig9(args: argparse.Namespace) -> int:
    report = api.gan_scheme_report(batch=args.batch)
    depths = {
        name: (generator.depth, discriminator.depth)
        for name, (generator, discriminator) in regan_suite().items()
    }
    lines = []
    for dataset, rows in report["datasets"].items():
        l_g, l_d = depths[dataset]
        lines.append(f"{dataset} (L_G={l_g}, L_D={l_d}, B={args.batch}):")
        for row in rows:
            lines.append(
                f"  {row['scheme']:<12s} {row['cycles']:>6d} cycles "
                f"{row['speedup']:>7.2f}x"
            )
    return _emit(args, report, "\n".join(lines))


def _cmd_summary(args: argparse.Namespace) -> int:
    if args.workload not in _WORKLOADS:
        print(
            f"unknown workload {args.workload!r}; pick from "
            f"{sorted(_WORKLOADS)}",
            file=sys.stderr,
        )
        return 2
    spec = _WORKLOADS[args.workload]()
    document = {
        "name": spec.name,
        "depth": spec.depth,
        "layers": len(spec.layers),
        "total_macs": spec.total_macs,
        "total_weights": spec.total_weights,
        "total_activations": spec.total_activations,
    }
    return _emit(args, document, spec.summary())


def _cmd_trace(args: argparse.Namespace) -> int:
    document = api.schedule_trace(
        layers=args.layers,
        batch=args.batch,
        gan=args.gan,
        scheme=args.scheme,
        collector=getattr(args, "collector", None),
    )
    if args.gan:
        header = (
            f"GAN iteration, L_D=L_G={args.layers}, B={args.batch}, "
            f"scheme={args.scheme} -> {document['makespan']} cycles"
        )
    else:
        header = (
            f"training pipeline, L={args.layers}, B={args.batch}, "
            f"2 batches -> {document['makespan']} cycles"
        )
    return _emit(args, document, header + "\n" + document["gantt"])


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.arch.sensitivity import tech_sensitivity

    rows = tech_sensitivity(
        args.metric,
        workers=args.workers,
        collector=getattr(args, "collector", None),
    )
    document = [
        {
            "field": row.field,
            "metric_low": row.metric_low,
            "metric_nominal": row.metric_nominal,
            "metric_high": row.metric_high,
            "swing": row.swing,
        }
        for row in rows
    ]
    lines = [f"PipeLayer {args.metric} sensitivity (0.5x .. 2x per field):"]
    lines.append(
        f"{'parameter':<28s}{'0.5x':>10s}{'nominal':>10s}{'2x':>10s}"
        f"{'swing':>8s}"
    )
    for row in rows:
        lines.append(
            f"{row.field:<28s}{row.metric_low:>10.2f}"
            f"{row.metric_nominal:>10.2f}{row.metric_high:>10.2f}"
            f"{row.swing:>8.2f}"
        )
    return _emit(args, document, "\n".join(lines))


def _cmd_area(args: argparse.Namespace) -> int:
    from repro.arch.report import pipelayer_report
    from repro.core.pipelayer import PipeLayerModel

    if args.workload not in _WORKLOADS:
        print(
            f"unknown workload {args.workload!r}; pick from "
            f"{sorted(_WORKLOADS)}",
            file=sys.stderr,
        )
        return 2
    model = PipeLayerModel(
        _WORKLOADS[args.workload](), array_budget=args.budget
    )
    report = pipelayer_report(model, batch=args.batch)
    document = {
        "name": report.name,
        "array_count": report.array_count,
        "compute_area_mm2": report.compute_area_mm2,
        "memory_area_mm2": report.memory_area_mm2,
        "total_area_mm2": report.total_area_mm2,
        "static_power_w": report.static_power_w,
        "dynamic_power_w": report.dynamic_power_w,
        "total_power_w": report.total_power_w,
        "area_vs_gpu": report.area_vs_gpu,
    }
    return _emit(args, document, report.summary())


def _cmd_reliability(args: argparse.Namespace) -> int:
    rates, code = _parse_rates(args)
    if code:
        return code
    report = api.reliability_report(
        workload=args.workload,
        axis=args.axis,
        rates=rates,
        seed=args.seed,
        count=args.count,
        batch=args.batch,
        backend=args.backend,
        train_epochs=args.train_epochs,
        include_tiles=not args.no_tiles,
        collector=getattr(args, "collector", None),
        workers=args.workers,
    )
    return _emit(args, report, campaign_summary(report))


def _parse_rates(args: argparse.Namespace) -> "Tuple[Optional[List[float]], int]":
    """The ``--rates`` list as floats, or an argparse-style error code."""
    if args.rates is None:
        return None, 0
    try:
        rates = [float(rate) for rate in args.rates.split(",") if rate]
    except ValueError:
        print(
            f"--rates must be comma-separated numbers, got {args.rates!r}",
            file=sys.stderr,
        )
        return None, 2
    if not rates:
        print("--rates must name at least one rate", file=sys.stderr)
        return None, 2
    return rates, 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Distributed deterministic sweep: (scenario × seed × backend) cells."""
    from repro.reliability.campaign import scenarios_for
    from repro.sweep import (
        SweepCache,
        SweepCell,
        run_sweep,
        sweep_report,
        sweep_summary,
    )
    from repro.utils.io import write_json_atomic
    from repro.xbar.engine import CrossbarEngineConfig, engine_config_to_dict

    rates, code = _parse_rates(args)
    if code:
        return code
    if args.seeds is not None:
        try:
            seeds = [int(seed) for seed in args.seeds.split(",") if seed]
        except ValueError:
            print(
                f"--seeds must be comma-separated integers, got "
                f"{args.seeds!r}",
                file=sys.stderr,
            )
            return 2
        if not seeds:
            print("--seeds must name at least one seed", file=sys.stderr)
            return 2
    else:
        seeds = [args.seed]
    backends = (
        ("loop", "vectorized") if args.backend == "both" else (args.backend,)
    )
    scenarios = scenarios_for(args.axis, rates)
    config_dict = engine_config_to_dict(CrossbarEngineConfig())

    cells: List[Any] = []
    scopes: List[str] = []
    for seed in seeds:
        for run_backend in backends:
            for scenario in scenarios:
                scopes.append(
                    f"cell[{scenario.name},seed={seed},"
                    f"backend={run_backend}]"
                )
                cells.append(
                    SweepCell(
                        "campaign_scenario",
                        {
                            "name": scenario.name,
                            "axis": scenario.axis,
                            "rate": scenario.rate,
                            "workload": args.workload,
                            "seed": int(seed),
                            "count": int(args.count),
                            "batch": int(args.batch),
                            "backend": run_backend,
                            "engine_config": config_dict,
                            "train_epochs": int(args.train_epochs),
                            "train_count": 256,
                            "include_tiles": not args.no_tiles,
                        },
                    )
                )

    trace_root = None
    trace_log = None
    if args.trace_out:
        from repro.telemetry import TraceContext, TraceLog

        trace_log = TraceLog(proc="driver")
        trace_root = TraceContext.root("sweep", trace_log)

    collector = getattr(args, "collector", None)
    run = run_sweep(
        cells,
        workers=args.workers,
        cache=SweepCache(args.cache_dir) if args.cache_dir else None,
        collector=collector.scope("sweep") if collector else None,
        scope_for=lambda index, cell: scopes[index],
        trace=trace_root,
    )
    if trace_root is not None and trace_log is not None:
        from repro.telemetry import trace_chrome_document

        trace_root.finish({"cells": len(cells)})
        write_json_atomic(
            Path(args.trace_out),
            trace_chrome_document(trace_log.spans()),
        )
    report = sweep_report(
        run,
        {
            "workload": args.workload,
            "axis": args.axis,
            "rates": [scenario.rate for scenario in scenarios],
            "seeds": seeds,
            "backends": list(backends),
            "count": int(args.count),
            "batch": int(args.batch),
            "train_epochs": int(args.train_epochs),
            "include_tiles": not args.no_tiles,
        },
    )
    if args.stats_out:
        # Execution facts (worker count, cache hits) are deliberately
        # not part of the deterministic report document.
        write_json_atomic(Path(args.stats_out), run.stats)
    text = sweep_summary(report)
    stats = run.stats
    text += (
        f"\n{stats['workers']} worker(s): {stats['cache_hits']} cached, "
        f"{stats['recomputed']} computed"
    )
    return _emit(args, report, text)


def _cmd_infer(args: argparse.Namespace) -> int:
    sim = api.Simulator.from_workload(
        args.workload,
        backend=args.backend,
        seed=args.seed,
        collector=getattr(args, "collector", None),
    )
    job = api.InferenceJob(
        workload=args.workload,
        seed=args.seed,
        backend=args.backend,
        count=args.count,
        batch=args.batch,
    )
    result = sim.run(job)
    return _emit(args, result.to_dict(), result.summary())


def _cmd_train(args: argparse.Namespace) -> int:
    sim = api.Simulator.from_workload(
        args.workload,
        backend=args.backend,
        seed=args.seed,
        collector=getattr(args, "collector", None),
    )
    job = api.TrainingJob(
        workload=args.workload,
        seed=args.seed,
        backend=args.backend,
        epochs=args.epochs,
        batch=args.batch,
        train_count=args.train_count,
        test_count=args.test_count,
    )
    result = sim.run(job)
    return _emit(args, result.to_dict(), result.summary())


def _smoke_jobs(count: int, seed: int) -> List["api.JobSpec"]:
    """A deterministic mixed-kind, multi-tenant job list for smokes.

    Mostly small inference jobs spread over three tenants and two
    model seeds (so coalescing and the programmed-state cache both
    engage), salted with a training job and a reliability campaign for
    kind coverage.
    """
    jobs: List[api.JobSpec] = []
    for index in range(count):
        tenant = f"tenant{index % 3}"
        slot = index % 8
        if slot == 5:
            jobs.append(
                api.TrainingJob(
                    workload="mlp",
                    seed=seed + 10,
                    epochs=1,
                    batch=16,
                    train_count=64,
                    test_count=32,
                    tenant=tenant,
                )
            )
        elif slot == 7:
            jobs.append(
                api.ReliabilityJob(
                    workload="mlp",
                    seed=seed,
                    axis="stuck",
                    rates=(0.02,),
                    count=16,
                    batch=16,
                    train_epochs=0,
                    include_tiles=False,
                    tenant=tenant,
                )
            )
        else:
            jobs.append(
                api.InferenceJob(
                    workload="mlp",
                    seed=seed + (index % 2),
                    count=16,
                    batch=8,
                    input_seed=None if index % 3 == 0 else 100 + slot,
                    tenant=tenant,
                )
            )
    return jobs


def _smoke_metrics_checks(
    snapshots: List[str], job_count: int
) -> Tuple[bool, bool, int]:
    """Parse the smoke's two ``/v1/metrics`` scrapes and check them.

    Returns ``(metrics_ok, metrics_deterministic, e2e_count)``:
    ``metrics_ok`` means both scrapes parse and the latency histograms
    are nonzero; ``metrics_deterministic`` means every latency
    *observation count* advanced by exactly ``job_count`` per pass
    (wall-clock values vary; how many samples land does not).
    """
    try:
        first, second = (
            parse_prometheus(snapshot) for snapshot in snapshots
        )
    except ValueError:
        return False, False, 0
    names = (
        "repro_serve_latency_queue_wait_seconds_count",
        "repro_serve_latency_e2e_seconds_count",
        "repro_serve_jobs_done",
    )
    counts = [
        (int(sample_value(first, name)), int(sample_value(second, name)))
        for name in names
    ]
    metrics_ok = all(after > 0 for _, after in counts)
    metrics_deterministic = all(
        before == job_count and after == 2 * job_count
        for before, after in counts
    )
    return metrics_ok, metrics_deterministic, counts[1][1]


def _smoke_energy_checks(
    snapshots: List[str], stats: dict
) -> Tuple[bool, bool]:
    """Check the smoke's energy attribution gauges over three passes.

    ``energy_ok``: the server-wide ``energy/*_joules`` counters are
    present and positive, the ``energy/average_watts`` gauge exists,
    and every tenant exposes its own unit-suffixed
    ``energy/total_joules``.  ``energy_deterministic``: the joules the
    third identical pass added equal the second pass's delta *exactly*
    (pass one additionally pays one-time array programming; after
    that, identical job mixes must cost identical energy).  The
    server quantizes every contribution to an exact binary grid, so
    these are byte-level equalities, not tolerances.
    """
    try:
        scrapes = [parse_prometheus(snapshot) for snapshot in snapshots]
    except ValueError:
        return False, False
    if len(scrapes) < 3:
        return False, False
    counters = stats.get("counters", {})
    tenants = sorted(
        {
            path[len(_TENANT_PREFIX) : path.index("]")]
            for path in counters
            if path.startswith(_TENANT_PREFIX) and "]" in path
        }
    )
    energy_ok = (
        counters.get("serve/energy/total_joules", 0.0) > 0.0
        and counters.get("serve/energy/simulated_seconds", 0.0) > 0.0
        and "serve/energy/average_watts" in counters
        and bool(tenants)
        and all(
            f"serve/tenant[{tenant}]/energy/total_joules" in counters
            for tenant in tenants
        )
    )
    targets: List[Tuple[str, Optional[dict]]] = [
        ("repro_serve_energy_total_joules", None),
        ("repro_serve_energy_simulated_seconds", None),
    ]
    targets.extend(
        ("repro_serve_tenant_energy_total_joules", {"tenant": tenant})
        for tenant in tenants
    )
    energy_deterministic = True
    for name, labels in targets:
        first, second, third = (
            sample_value(scrape, name, labels) for scrape in scrapes
        )
        if third - second != second - first:
            energy_deterministic = False
    steady = sample_value(
        scrapes[2], "repro_serve_energy_total_joules"
    ) - sample_value(scrapes[1], "repro_serve_energy_total_joules")
    energy_deterministic = energy_deterministic and steady > 0.0
    return energy_ok, energy_deterministic


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the multi-tenant job server (or its self-checking smoke)."""
    from repro.serve.client import ServeClient
    from repro.serve.server import (
        ServerConfig,
        running_server,
        validate_job_report,
    )
    from repro.telemetry import validate_trace_document

    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_coalesce=args.max_coalesce,
        event_log=args.event_log,
    )
    if args.smoke is None:
        with running_server(config) as (_, (host, port)):
            print(
                f"repro serve listening on http://{host}:{port} "
                "(POST /v1/jobs; Ctrl-C to stop)"
            )
            try:
                while True:
                    time.sleep(3600)
            except KeyboardInterrupt:
                pass
        return 0

    if args.smoke < 1:
        print("serve: --smoke needs at least 1 job", file=sys.stderr)
        return 2
    jobs = _smoke_jobs(args.smoke, args.seed)
    collector = Collector()
    with running_server(config, collector=collector) as (_, (host, port)):
        client = ServeClient(host, port)
        if not client.health():
            print("serve: health probe failed", file=sys.stderr)
            return 1
        # Same mix three times: every warm pass must hit the cache and
        # reproduce every result payload byte-for-byte.  A metrics
        # scrape after each pass checks the exposition is parseable,
        # its observation counts advance deterministically, and the
        # energy counters grow by an identical exact delta once the
        # one-time programming cost of pass one is behind.
        reports, metric_snapshots = [], []
        for _ in range(3):
            reports.append(client.run_many(jobs))
            metric_snapshots.append(client.metrics_text())
        stats = client.stats()
        trace_ok = True
        try:
            validate_trace_document(
                client.trace(reports[0][0]["job_id"])
            )
        except (ValueError, KeyError, IndexError):
            trace_ok = False
    for run in reports:
        for report in run:
            validate_job_report(report)
    failed = sum(
        1
        for run in reports
        for report in run
        if report["status"] != "done"
    )
    first_results = [r["result"] for r in reports[0]]
    deterministic = all(
        [r["result"] for r in run] == first_results
        for run in reports[1:]
    )
    metrics_ok, metrics_deterministic, observed = _smoke_metrics_checks(
        metric_snapshots[:2], len(jobs)
    )
    energy_ok, energy_deterministic = _smoke_energy_checks(
        metric_snapshots, stats
    )
    cache_hits = int(stats["counters"].get("serve/cache/hits", 0))
    coalesced = int(stats["counters"].get("serve/coalesced.jobs", 0))
    ok = (
        deterministic
        and cache_hits > 0
        and failed == 0
        and metrics_ok
        and metrics_deterministic
        and energy_ok
        and energy_deterministic
        and trace_ok
    )
    document = {
        "schema_version": SCHEMA_VERSION,
        "jobs": len(jobs),
        "runs": 3,
        "failed": failed,
        "deterministic": deterministic,
        "cache_hits": cache_hits,
        "cache": stats["cache"],
        "coalesced_jobs": coalesced,
        "metrics_ok": metrics_ok,
        "metrics_deterministic": metrics_deterministic,
        "energy_ok": energy_ok,
        "energy_deterministic": energy_deterministic,
        "energy_joules": stats["counters"].get(
            "serve/energy/total_joules", 0.0
        ),
        "latency_observations": observed,
        "trace_ok": trace_ok,
        "ok": ok,
    }
    if args.event_log is not None:
        from repro.telemetry import read_event_log

        document["events"] = len(read_event_log(args.event_log))
    text = (
        f"serve smoke: {len(jobs)} jobs x 3 runs on {host}:{port} — "
        f"{failed} failed, deterministic={deterministic}, "
        f"cache hits={cache_hits}, coalesced jobs={coalesced}, "
        f"metrics ok={metrics_ok} deterministic="
        f"{metrics_deterministic}, energy ok={energy_ok} "
        f"deterministic={energy_deterministic}, trace ok={trace_ok} "
        f"-> {'OK' if ok else 'FAIL'}"
    )
    _emit(args, document, text)
    return 0 if ok else 1


_TENANT_PREFIX = "serve/tenant["


def _top_rows(
    stats: dict, previous: Optional[dict], interval: float
) -> List[dict]:
    """Per-tenant throughput/latency/cache rows from a stats document."""
    counters = stats.get("counters", {})
    histograms = stats.get("histograms", {})
    tenants = sorted(
        {
            path[len(_TENANT_PREFIX) : path.index("]")]
            for path in list(counters) + list(histograms)
            if path.startswith(_TENANT_PREFIX) and "]" in path
        }
    )
    rows = []
    for tenant in tenants:
        prefix = f"{_TENANT_PREFIX}{tenant}]/"
        done = sum(
            value
            for path, value in counters.items()
            if path.startswith(f"{prefix}jobs[")
        )
        previous_done = 0.0
        if previous is not None:
            previous_done = sum(
                value
                for path, value in previous.get("counters", {}).items()
                if path.startswith(f"{prefix}jobs[")
            )
        histogram = histograms.get(f"{prefix}latency/e2e_seconds")
        percentiles = (
            histogram_percentiles(histogram)
            if histogram
            else {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        )
        rows.append(
            {
                "tenant": tenant,
                "submitted": int(counters.get(f"{prefix}submitted", 0)),
                "done": int(done),
                "throughput_jobs_s": (
                    (done - previous_done) / interval
                    if previous is not None and interval > 0
                    else 0.0
                ),
                **{
                    key: round(float(value), 6)
                    for key, value in percentiles.items()
                },
                "energy_joules": float(
                    counters.get(f"{prefix}energy/total_joules", 0.0)
                ),
            }
        )
    return rows


def _render_top(stats: dict, rows: List[dict]) -> str:
    """One ``repro top`` frame as plain text."""
    cache = stats.get("cache", {})
    lookups = cache.get("hits", 0) + cache.get("misses", 0)
    hit_ratio = cache.get("hits", 0) / lookups if lookups else 0.0
    lines = [
        f"queue depth {stats.get('queue_depth', 0)}; cache "
        f"{cache.get('hits', 0)}/{lookups} hits "
        f"({hit_ratio:.0%}), {cache.get('entries', 0)} resident",
        f"{'tenant':<12s}{'subm':>6s}{'done':>6s}{'jobs/s':>8s}"
        f"{'p50(s)':>10s}{'p95(s)':>10s}{'p99(s)':>10s}"
        f"{'energy(J)':>11s}",
    ]
    for row in rows:
        lines.append(
            f"{row['tenant']:<12s}{row['submitted']:>6d}"
            f"{row['done']:>6d}{row['throughput_jobs_s']:>8.2f}"
            f"{row['p50']:>10.4f}{row['p95']:>10.4f}{row['p99']:>10.4f}"
            f"{row['energy_joules']:>11.3e}"
        )
    if len(lines) == 2:
        lines.append("(no tenant activity yet)")
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    """Live per-tenant throughput/latency table over ``/v1/stats``."""
    from repro.serve.client import ServeClient, ServeError

    client = ServeClient(args.host, args.port)
    previous: Optional[dict] = None
    for iteration in range(args.count):
        if iteration:
            time.sleep(args.interval)
        try:
            stats = client.stats()
        except (OSError, ServeError) as error:
            print(f"top: cannot reach server: {error}", file=sys.stderr)
            return 1
        rows = _top_rows(
            stats, previous, args.interval if iteration else 0.0
        )
        if args.json:
            document = {
                "schema_version": SCHEMA_VERSION,
                "queue_depth": stats.get("queue_depth", 0),
                "cache": stats.get("cache", {}),
                "tenants": rows,
            }
            json.dump(document, sys.stdout, indent=2)
            sys.stdout.write("\n")
        else:
            print(_render_top(stats, rows))
        previous = stats
    return 0


def _profile_summary(document: dict) -> str:
    """Human rendering of a profile report (text mode)."""
    counters = document["counters"]
    lines = [
        f"profiled `repro {' '.join(document['command'])}` in "
        f"{document['wall_time_s']:.3f} s (exit {document['exit_code']}): "
        f"{len(counters)} counters, {len(document['spans'])} spans"
        + (
            f" ({document['spans_dropped']} dropped)"
            if document["spans_dropped"]
            else ""
        ),
    ]
    top = sorted(counters.items(), key=lambda kv: -abs(kv[1]))[:10]
    width = max((len(path) for path, _ in top), default=0)
    for path, value in top:
        lines.append(f"  {path:<{width}s}  {value}")
    if len(counters) > len(top):
        lines.append(f"  ... {len(counters) - len(top)} more")
    if "chrome_trace" in document:
        lines.append(
            f"chrome trace written to {document['chrome_trace']} "
            "(load in chrome://tracing or ui.perfetto.dev)"
        )
    return "\n".join(lines)


def _parse_wrapped(
    args: argparse.Namespace, wrapper: str
) -> Tuple[Optional[List[str]], Optional[argparse.Namespace], int]:
    """Parse the remainder arguments of a wrapper subcommand.

    Returns ``(command, inner_namespace, exit_code)``; on usage errors
    ``command``/``inner_namespace`` are ``None`` and ``exit_code`` is
    the code to return.
    """
    command = list(args.wrapped)
    if command and command[0] == "--":
        command = command[1:]
    if not command:
        print(
            f"{wrapper}: name a subcommand to wrap, e.g. "
            f"'repro {wrapper} infer mlp --json'",
            file=sys.stderr,
        )
        return None, None, 2
    if command[0] in _UNWRAPPABLE:
        print(
            f"{wrapper}: cannot wrap {command[0]!r}", file=sys.stderr
        )
        return None, None, 2
    parser = build_parser()
    try:
        inner = parser.parse_args(command)
    except SystemExit:
        return None, None, 2
    return command, inner, 0


def _run_wrapped(
    command: List[str], inner: argparse.Namespace
) -> Tuple[Collector, int, float, str]:
    """Run a parsed subcommand under a fresh telemetry collector.

    The wrapped command prints its own report; stdout is captured so
    the wrapper's document can be the only thing on stdout.  Returns
    ``(collector, exit_code, wall_time_s, captured_stdout)``.
    """
    collector = Collector()
    inner.collector = collector
    buffer = io.StringIO()
    original_stdout = sys.stdout
    sys.stdout = buffer
    start = time.perf_counter()
    try:
        with collector.span(f"command[{command[0]}]"):
            exit_code = inner.func(inner)
    finally:
        sys.stdout = original_stdout
    wall_time_s = time.perf_counter() - start
    return collector, exit_code, wall_time_s, buffer.getvalue()


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run any other subcommand under a telemetry collector."""
    command, inner, code = _parse_wrapped(args, "profile")
    if command is None:
        return code
    collector, exit_code, wall_time_s, wrapped_output = _run_wrapped(
        command, inner
    )
    collector.write_chrome_trace(args.trace_out)
    document = profile_report(
        collector,
        command,
        exit_code,
        wall_time_s,
        chrome_trace=args.trace_out,
    )
    validate_profile_report(document)
    if args.json or getattr(inner, "json", False):
        json.dump(document, sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        if wrapped_output:
            sys.stdout.write(wrapped_output)
        print(_profile_summary(document))
    return exit_code


def _cmd_report(args: argparse.Namespace) -> int:
    """Derived-metrics analysis of a profile JSON or a fresh run."""
    if args.profile_path:
        if args.wrapped and [w for w in args.wrapped if w != "--"]:
            print(
                "report: pass either --profile or a subcommand to run, "
                "not both",
                file=sys.stderr,
            )
            return 2
        try:
            with open(args.profile_path) as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"report: cannot read profile: {error}", file=sys.stderr)
            return 2
        version = (
            document.get("schema_version")
            if isinstance(document, dict)
            else None
        )
        if version != SCHEMA_VERSION:
            print(
                f"report: profile {args.profile_path} has "
                f"schema_version {version!r}; this build reads version "
                f"{SCHEMA_VERSION} — regenerate it with 'repro profile "
                f"... --json'",
                file=sys.stderr,
            )
            return 2
        try:
            counters = counters_from(document)
        except TypeError as error:
            print(f"report: {error}", file=sys.stderr)
            return 2
        source = args.profile_path
        exit_code = 0
    else:
        command, inner, code = _parse_wrapped(args, "report")
        if command is None:
            return code
        collector, exit_code, _, _ = _run_wrapped(command, inner)
        counters = collector.counters()
        source = "repro " + " ".join(command)
    if args.energy:
        from repro.arch.components import event_costs
        from repro.arch.params import DEFAULT_TECH
        from repro.telemetry import (
            attribute_energy,
            render_energy_report,
            validate_energy_report,
        )

        report = attribute_energy(
            counters, event_costs(DEFAULT_TECH), source_name=source
        )
        validate_energy_report(report)
        return _emit(args, report, render_energy_report(report))
    analysis = analyze_counters(counters, source_name=source)
    validate_analysis_report(analysis)
    return _emit(args, analysis, render_analysis_report(analysis))


def _cmd_check(args: argparse.Namespace) -> int:
    """The determinism & contract linter (``repro.checks``)."""
    from repro import checks

    select = None
    if args.select:
        select = [
            rule.strip()
            for rule in args.select.split(",")
            if rule.strip()
        ]
    if args.list_rules:
        width = max(len(rule_id) for rule_id in checks.RULES)
        for rule_id, (summary, allow) in checks.rule_table().items():
            if select is not None and rule_id not in select:
                continue
            suffix = f"  [allowed: {', '.join(allow)}]" if allow else ""
            print(f"{rule_id:<{width}s}  {summary}{suffix}")
        return 0
    config = checks.CheckConfig(select=select)
    try:
        findings = checks.check_paths(
            [Path(p) for p in args.paths] or None, config=config
        )
    except (ValueError, FileNotFoundError) as error:
        print(f"check: {error}", file=sys.stderr)
        return 2
    stale = []
    if args.baseline:
        try:
            baseline = checks.load_baseline(Path(args.baseline))
        except (OSError, ValueError) as error:
            print(f"check: bad baseline: {error}", file=sys.stderr)
            return 2
        findings, stale = checks.apply_baseline(findings, baseline)
        for entry in stale:
            print(
                "check: stale baseline entry (no longer fires): "
                f"{entry['path']}: {entry['rule']} {entry['message']}"
                " -- delete it from the baseline",
                file=sys.stderr,
            )
    targets = args.paths or [str(checks.default_root())]
    if args.format == "sarif":
        checked = select if select is not None else sorted(checks.RULES)
        document = checks.sarif_document(findings, rule_ids=checked)
        checks.validate_sarif_document(document)
        json.dump(document, sys.stdout, indent=2)
        sys.stdout.write("\n")
    elif args.format == "json" or args.json:
        document = checks.check_report(findings, targets, select)
        json.dump(document, sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        print(
            checks.render_findings(
                findings, select if select is not None else checks.RULES
            )
        )
    return 1 if findings or stale else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Unified benchmark runner with baseline regression gating."""
    from repro import bench as bench_mod

    bench_dir = args.bench_dir
    if args.list_benches:
        try:
            specs = bench_mod.discover(bench_dir)
        except FileNotFoundError as error:
            print(f"bench: {error}", file=sys.stderr)
            return 2
        width = max((len(spec.name) for spec in specs), default=0)
        for spec in specs:
            print(f"{spec.name:<{width}s}  suite={spec.suite}")
        return 0
    # Benches print their result tables as they run; capture them so
    # the runner's summary (or JSON document) is the only output.
    buffer = io.StringIO()
    original_stdout = sys.stdout
    sys.stdout = buffer
    try:
        run = bench_mod.run_suite(
            suite=args.suite,
            name_filter=args.filter,
            workers=args.workers,
            bench_dir=bench_dir,
            baseline_dir=args.baseline_dir,
            trajectory_path=args.trajectory,
            update_baselines=args.update_baselines,
            rel_tol=(
                args.rel_tol
                if args.rel_tol is not None
                else bench_mod.DEFAULT_REL_TOL
            ),
        )
    except FileNotFoundError as error:
        sys.stdout = original_stdout
        print(f"bench: {error}", file=sys.stderr)
        return 2
    finally:
        sys.stdout = original_stdout
    _emit(args, run.to_dict(), run.summary())
    return run.exit_code


def _add_logging_flags(parser: argparse.ArgumentParser, **kwargs) -> None:
    """Attach the global logging flags to ``parser``.

    The flags live on the main parser (with real defaults) AND on the
    shared subcommand parent with ``default=argparse.SUPPRESS`` — a
    subparser otherwise overwrites the main parser's value with its own
    default, which would discard ``repro -v infer``.
    """
    parser.add_argument(
        "--log-level",
        choices=("critical", "error", "warning", "info", "debug"),
        help="logging threshold for the repro.* loggers "
        "(default warning; overrides -v)",
        **kwargs,
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        help="increase log verbosity (-v info, -vv debug)",
        **kwargs,
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    shared = argparse.ArgumentParser(add_help=False)
    shared.add_argument(
        "--seed", type=int, default=0, help="master RNG seed (default 0)"
    )
    shared.add_argument(
        "--batch", type=int, default=32, help="batch size (default 32)"
    )
    shared.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON document instead of text",
    )
    _add_logging_flags(shared, default=argparse.SUPPRESS)

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate results from 'ReRAM-based Accelerator "
        "for Deep Learning' (DATE 2018).",
    )
    _add_logging_flags(parser)
    parser.set_defaults(log_level=None, verbose=0)
    sub = parser.add_subparsers(dest="command", required=True)

    p_table1 = sub.add_parser(
        "table1", parents=[shared], help="Table I: both accelerators"
    )
    p_table1.set_defaults(func=_cmd_table1)

    p_fig4 = sub.add_parser(
        "fig4", parents=[shared], help="Fig. 4 mapping sweep"
    )
    p_fig4.set_defaults(func=_cmd_fig4)

    p_fig5 = sub.add_parser(
        "fig5", parents=[shared], help="Fig. 5 pipeline cycles"
    )
    p_fig5.add_argument("--layers", type=int, default=8)
    p_fig5.set_defaults(func=_cmd_fig5)

    p_fig9 = sub.add_parser(
        "fig9", parents=[shared], help="Fig. 9 GAN pipeline schemes"
    )
    p_fig9.set_defaults(func=_cmd_fig9)

    p_summary = sub.add_parser(
        "summary", parents=[shared], help="workload inventory"
    )
    p_summary.add_argument("workload")
    p_summary.set_defaults(func=_cmd_summary)

    p_sens = sub.add_parser(
        "sensitivity",
        parents=[shared],
        help="tech-parameter tornado for Table I",
    )
    p_sens.add_argument(
        "--metric", choices=("speedup", "energy"), default="speedup"
    )
    p_sens.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard the tornado fields over N processes",
    )
    p_sens.set_defaults(func=_cmd_sensitivity)

    p_area = sub.add_parser(
        "area", parents=[shared], help="area/power budget of a workload"
    )
    p_area.add_argument("workload")
    p_area.add_argument("--budget", type=int, default=262144)
    p_area.set_defaults(func=_cmd_area)

    p_trace = sub.add_parser(
        "trace", parents=[shared], help="ASCII Gantt of a schedule"
    )
    p_trace.add_argument("--layers", type=int, default=3)
    p_trace.add_argument("--gan", action="store_true")
    p_trace.add_argument("--scheme", default="sp_cs")
    p_trace.set_defaults(func=_cmd_trace, batch=4)

    p_infer = sub.add_parser(
        "infer",
        parents=[shared],
        help="run synthetic inference through the crossbar simulator",
    )
    p_infer.add_argument(
        "workload",
        nargs="?",
        default="mlp",
        choices=api.Simulator.WORKLOADS,
    )
    p_infer.add_argument(
        "--backend", choices=("loop", "vectorized"), default=None
    )
    p_infer.add_argument("--count", type=int, default=64)
    p_infer.set_defaults(func=_cmd_infer)

    p_reliability = sub.add_parser(
        "reliability",
        parents=[shared],
        help="deterministic fault-injection campaign over a workload",
    )
    p_reliability.add_argument(
        "workload",
        nargs="?",
        default="mlp",
        choices=api.Simulator.WORKLOADS,
    )
    p_reliability.add_argument(
        "--axis", choices=tuple(sorted(AXES)), default="stuck"
    )
    p_reliability.add_argument(
        "--rates",
        default=None,
        help="comma-separated sweep points (default: per-axis preset)",
    )
    p_reliability.add_argument(
        "--backend",
        choices=("loop", "vectorized", "both"),
        default="vectorized",
        help="'both' also verifies loop == vectorized fault outcomes",
    )
    p_reliability.add_argument("--count", type=int, default=32)
    p_reliability.add_argument("--train-epochs", type=int, default=5)
    p_reliability.add_argument(
        "--no-tiles",
        action="store_true",
        help="omit the per-tile stuck-cell census from layer records",
    )
    p_reliability.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard scenarios over N processes (byte-identical report "
        "for any N)",
    )
    p_reliability.set_defaults(func=_cmd_reliability)

    p_sweep = sub.add_parser(
        "sweep",
        parents=[shared],
        help="distributed deterministic sweep over (scenario x seed "
        "x backend) cells",
        description="Shard fault-injection scenario cells over a "
        "process pool (repro.sweep).  The merged sweep_report is "
        "byte-identical for any --workers value; with --cache-dir, "
        "completed cells replay from disk so interrupted sweeps "
        "resume without recomputation.",
    )
    p_sweep.add_argument(
        "workload",
        nargs="?",
        default="mlp",
        choices=api.Simulator.WORKLOADS,
    )
    p_sweep.add_argument(
        "--axis", choices=tuple(sorted(AXES)), default="stuck"
    )
    p_sweep.add_argument(
        "--rates",
        default=None,
        help="comma-separated sweep points (default: per-axis preset)",
    )
    p_sweep.add_argument(
        "--seeds",
        default=None,
        help="comma-separated master seeds (default: --seed)",
    )
    p_sweep.add_argument(
        "--backend",
        choices=("loop", "vectorized", "both"),
        default="vectorized",
        help="'both' adds one cell per backend per scenario",
    )
    p_sweep.add_argument("--count", type=int, default=32)
    p_sweep.add_argument("--train-epochs", type=int, default=5)
    p_sweep.add_argument(
        "--no-tiles",
        action="store_true",
        help="omit the per-tile stuck-cell census from layer records",
    )
    p_sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process count for the cell pool (default 1: inline)",
    )
    p_sweep.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="on-disk cell cache keyed by (config_hash, seed); "
        "enables resume-after-interruption",
    )
    p_sweep.add_argument(
        "--stats-out",
        type=Path,
        default=None,
        help="write execution stats (workers, cache hits) to this "
        "file; they are kept out of the deterministic report",
    )
    p_sweep.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help="write a stitched Chrome-trace of the sweep (logical "
        "clocks; byte-identical for any --workers value)",
    )
    p_sweep.set_defaults(func=_cmd_sweep)

    p_train = sub.add_parser(
        "train",
        parents=[shared],
        help="crossbar-in-the-loop training on a synthetic set",
    )
    p_train.add_argument(
        "workload",
        nargs="?",
        default="mlp",
        choices=api.Simulator.WORKLOADS,
    )
    p_train.add_argument(
        "--backend", choices=("loop", "vectorized"), default=None
    )
    p_train.add_argument("--epochs", type=int, default=1)
    p_train.add_argument("--train-count", type=int, default=256)
    p_train.add_argument("--test-count", type=int, default=64)
    p_train.set_defaults(func=_cmd_train)

    p_serve = sub.add_parser(
        "serve",
        parents=[shared],
        help="async multi-tenant job server over the simulator",
        description="Serve simulation-as-a-service: accept "
        "schema-versioned JSON job specs (inference/training/"
        "reliability) from concurrent tenants on a tiny HTTP API, "
        "coalesce compatible inference requests into single batched "
        "crossbar evaluations (bit-identical to running them alone), "
        "and cache programmed-crossbar state by (weights_hash, "
        "device_config_hash) so repeat tenants skip reprogramming.  "
        "--smoke N runs an in-process server+client self-check: the "
        "same N-job mix twice, asserting every report validates, "
        "results are deterministic, and the cache was hit.",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default 0 = ephemeral, printed at startup)",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=4,
        help="worker threads executing jobs (default 4)",
    )
    p_serve.add_argument(
        "--max-coalesce",
        type=int,
        default=8,
        help="max inference jobs per coalesced batch (default 8)",
    )
    p_serve.add_argument(
        "--smoke",
        type=int,
        default=None,
        metavar="N",
        help="run the N-job self-check instead of serving forever",
    )
    p_serve.add_argument(
        "--event-log",
        type=Path,
        default=None,
        metavar="FILE",
        help="append one JSONL event per job lifecycle transition "
        "(submitted/dispatched/done/error) to FILE",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_top = sub.add_parser(
        "top",
        parents=[shared],
        help="live per-tenant throughput/latency table from a running "
        "server",
        description="Poll a job server's /v1/stats and render "
        "per-tenant submitted/done counts, throughput, e2e latency "
        "percentiles (p50/p95/p99 from the server's histograms), and "
        "the programmed-state cache hit ratio.",
    )
    p_top.add_argument(
        "--host", default="127.0.0.1", help="server address"
    )
    p_top.add_argument(
        "--port", type=int, required=True, help="server port"
    )
    p_top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between polls (default 2)",
    )
    p_top.add_argument(
        "--count",
        type=int,
        default=1,
        help="how many frames to render before exiting (default 1)",
    )
    p_top.set_defaults(func=_cmd_top)

    p_profile = sub.add_parser(
        "profile",
        parents=[shared],
        help="run any subcommand under a telemetry collector",
        description="Wrap another subcommand in a telemetry collector "
        "and report hierarchical counters, timing spans, and a "
        "Chrome-trace file.  The counter section is deterministic "
        "(byte-identical across same-seed runs and across engine "
        "backends); spans are wall-clock.",
    )
    p_profile.add_argument(
        "--trace-out",
        default="profile_trace.json",
        help="Chrome-trace output path (default profile_trace.json)",
    )
    p_profile.add_argument(
        "wrapped",
        nargs=argparse.REMAINDER,
        help="the subcommand to profile, with its own arguments",
    )
    p_profile.set_defaults(func=_cmd_profile)

    p_report = sub.add_parser(
        "report",
        parents=[shared],
        help="derived metrics (utilization, bubbles, ADC/MAC) from "
        "telemetry",
        description="Turn a telemetry counter tree into derived "
        "metrics: per-stage pipeline utilization and bubble cycles, "
        "per-tile crossbar occupancy, and ADC conversions per MAC.  "
        "Reads a saved `repro profile --json` document (--profile) or "
        "runs a subcommand fresh and analyses its counters.",
    )
    p_report.add_argument(
        "--profile",
        dest="profile_path",
        default=None,
        metavar="FILE",
        help="analyse a saved profile/analysis JSON instead of running "
        "a subcommand",
    )
    p_report.add_argument(
        "--energy",
        action="store_true",
        help="attribute energy instead: price the event counters "
        "through the technology cost table and render the per-group "
        "energy/power breakdown",
    )
    p_report.add_argument(
        "wrapped",
        nargs=argparse.REMAINDER,
        help="the subcommand to run and analyse, with its arguments",
    )
    p_report.set_defaults(func=_cmd_report)

    p_bench = sub.add_parser(
        "bench",
        parents=[shared],
        help="run the benchmark suite and gate on committed baselines",
        description="Discover benchmarks/bench_*.py through the "
        "repro.bench registry, execute the selected suite, append the "
        "run to BENCH_trajectory.json, and compare deterministic "
        "metrics against benchmarks/baselines/*.json.  Exits non-zero "
        "on any bench failure or out-of-tolerance metric.",
    )
    p_bench.add_argument(
        "--suite",
        choices=("quick", "full"),
        default="quick",
        help="suite tier to run (default quick; full includes slow "
        "benches)",
    )
    p_bench.add_argument(
        "--filter",
        default=None,
        metavar="GLOB",
        help="fnmatch glob over bench names, e.g. 'fig*'",
    )
    p_bench.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard benches over N processes (deterministic metrics "
        "are unaffected; wall times then share the host)",
    )
    p_bench.add_argument(
        "--bench-dir",
        type=Path,
        default=None,
        help="benchmark directory (default: ./benchmarks or the "
        "checkout's)",
    )
    p_bench.add_argument(
        "--baseline-dir",
        type=Path,
        default=None,
        help="baseline directory (default: <bench-dir>/baselines)",
    )
    p_bench.add_argument(
        "--trajectory",
        type=Path,
        default=None,
        help="run-history file (default: <bench-dir>/../"
        "BENCH_trajectory.json)",
    )
    p_bench.add_argument(
        "--update-baselines",
        action="store_true",
        help="rewrite the baselines from this run instead of comparing",
    )
    p_bench.add_argument(
        "--rel-tol",
        type=float,
        default=None,
        help="relative tolerance for --update-baselines bands",
    )
    p_bench.add_argument(
        "--list",
        dest="list_benches",
        action="store_true",
        help="list the registered benches and exit",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_check = sub.add_parser(
        "check",
        help="AST-based determinism & contract linter over the package",
        description="Run the repro.checks rules (RNG001 randomness "
        "routing, DET001 wall-clock isolation, SCHEMA001 schema_version "
        "stamping, TEL001 telemetry path grammar, API001 deprecated "
        "shim imports, PY001/PY002 hygiene) plus the whole-program "
        "pass (ARCH001 layer DAG, CONC001-003 concurrency contracts, "
        "SCHEMA002 validator exhaustiveness, NOQA001 stale "
        "suppressions) over the installed package or the given paths.  "
        "Exits 1 on findings (or stale baseline entries), 0 when "
        "clean.  Suppress one line with '# repro: noqa[RULE]'.",
    )
    p_check.add_argument(
        "paths",
        nargs="*",
        help="files or directories to check (default: the installed "
        "repro package)",
    )
    p_check.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default text; sarif emits a SARIF 2.1.0 "
        "log for GitHub code scanning)",
    )
    p_check.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="checks_baseline.json ratchet file: listed findings are "
        "muted, entries that no longer fire are reported stale (exit "
        "1) so the file only ever shrinks",
    )
    p_check.add_argument(
        "--json",
        action="store_true",
        help="shorthand for --format json",
    )
    p_check.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run, e.g. RNG001,DET001 "
        "(default: all)",
    )
    p_check.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    p_check.set_defaults(func=_cmd_check)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.log_level or args.verbose:
        _configure_logging(args.log_level, args.verbose)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
