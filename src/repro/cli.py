"""Command-line interface: regenerate the paper's results from a shell.

Usage::

    python -m repro.cli table1              # both Table I rows
    python -m repro.cli fig4                # mapping trade-off sweep
    python -m repro.cli fig5 --layers 8     # pipeline cycles + chart
    python -m repro.cli fig9                # GAN pipeline schemes
    python -m repro.cli summary alexnet     # workload inventory
    python -m repro.cli trace --layers 3 --batch 4   # ASCII Gantt

Each subcommand prints the same series the corresponding benchmark
records; the CLI exists so users can explore parameters without writing
code.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.estimator import pipelayer_table1, regan_table1
from repro.core.gan_pipeline import scheme_table
from repro.core.gan_schedule import simulate_gan_iteration
from repro.core.mapping import balanced_mapping
from repro.core.pipeline import (
    training_cycles_pipelined,
    training_cycles_sequential,
)
from repro.core.schedule import simulate_training_pipeline
from repro.core.trace import render_gan_schedule, render_training_schedule
from repro.workloads import (
    FIG4_EXAMPLE,
    alexnet_spec,
    mnist_cnn_spec,
    regan_suite,
    vggnet_spec,
)

_WORKLOADS = {
    "mnist": mnist_cnn_spec,
    "alexnet": alexnet_spec,
    "vggnet": vggnet_spec,
}


def _cmd_table1(args: argparse.Namespace) -> int:
    print(pipelayer_table1(batch=args.batch).summary())
    print()
    print(regan_table1(batch=args.batch).summary())
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    print("Fig. 4 mapping trade-off (114x114x128 -> 112x112x256, 3x3):")
    print(f"{'X':>8s} {'passes/img':>12s} {'arrays':>10s}")
    for duplication in (1, 4, 16, 64, 256, 1024, 4096, 12544):
        mapping = balanced_mapping(FIG4_EXAMPLE, duplication)
        print(
            f"{duplication:>8d} {mapping.passes_per_image:>12d} "
            f"{mapping.total_arrays:>10d}"
        )
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    layers = args.layers
    print(f"Fig. 5 pipeline, L = {layers}:")
    print(f"{'B':>6s} {'sequential':>12s} {'pipelined':>12s} {'speedup':>9s}")
    for batch in (1, 2, 4, 8, 16, 32, 64, 128):
        n_inputs = batch * 4
        sequential = training_cycles_sequential(layers, n_inputs, batch)
        pipelined = training_cycles_pipelined(layers, n_inputs, batch)
        print(
            f"{batch:>6d} {sequential:>12d} {pipelined:>12d} "
            f"{sequential / pipelined:>8.2f}x"
        )
    return 0


def _cmd_fig9(args: argparse.Namespace) -> int:
    for dataset, (generator, discriminator) in regan_suite().items():
        print(f"{dataset} (L_G={generator.depth}, L_D={discriminator.depth},"
              f" B={args.batch}):")
        for row in scheme_table(
            discriminator.depth, generator.depth, args.batch
        ):
            print(
                f"  {row['scheme']:<12s} {row['cycles']:>6d} cycles "
                f"{row['speedup']:>7.2f}x"
            )
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    if args.workload not in _WORKLOADS:
        print(
            f"unknown workload {args.workload!r}; pick from "
            f"{sorted(_WORKLOADS)}",
            file=sys.stderr,
        )
        return 2
    print(_WORKLOADS[args.workload]().summary())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.gan:
        result = simulate_gan_iteration(
            args.layers, args.layers, args.batch, args.scheme
        )
        print(
            f"GAN iteration, L_D=L_G={args.layers}, B={args.batch}, "
            f"scheme={args.scheme} -> {result.makespan} cycles"
        )
        print(render_gan_schedule(result))
    else:
        result = simulate_training_pipeline(
            args.layers, args.batch * 2, args.batch
        )
        print(
            f"training pipeline, L={args.layers}, B={args.batch}, "
            f"2 batches -> {result.makespan} cycles"
        )
        print(render_training_schedule(result))
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.arch.sensitivity import tech_sensitivity
    from repro.core.estimator import pipelayer_table1

    metric = {
        "speedup": lambda tech: pipelayer_table1(tech=tech).speedup,
        "energy": lambda tech: pipelayer_table1(tech=tech).energy_saving,
    }[args.metric]
    print(f"PipeLayer {args.metric} sensitivity (0.5x .. 2x per field):")
    print(f"{'parameter':<28s}{'0.5x':>10s}{'nominal':>10s}{'2x':>10s}"
          f"{'swing':>8s}")
    for row in tech_sensitivity(metric):
        print(
            f"{row.field:<28s}{row.metric_low:>10.2f}"
            f"{row.metric_nominal:>10.2f}{row.metric_high:>10.2f}"
            f"{row.swing:>8.2f}"
        )
    return 0


def _cmd_area(args: argparse.Namespace) -> int:
    from repro.arch.report import pipelayer_report
    from repro.core.pipelayer import PipeLayerModel

    if args.workload not in _WORKLOADS:
        print(
            f"unknown workload {args.workload!r}; pick from "
            f"{sorted(_WORKLOADS)}",
            file=sys.stderr,
        )
        return 2
    model = PipeLayerModel(
        _WORKLOADS[args.workload](), array_budget=args.budget
    )
    print(pipelayer_report(model, batch=args.batch).summary())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate results from 'ReRAM-based Accelerator "
        "for Deep Learning' (DATE 2018).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table1 = sub.add_parser("table1", help="Table I: both accelerators")
    p_table1.add_argument("--batch", type=int, default=32)
    p_table1.set_defaults(func=_cmd_table1)

    p_fig4 = sub.add_parser("fig4", help="Fig. 4 mapping sweep")
    p_fig4.set_defaults(func=_cmd_fig4)

    p_fig5 = sub.add_parser("fig5", help="Fig. 5 pipeline cycles")
    p_fig5.add_argument("--layers", type=int, default=8)
    p_fig5.set_defaults(func=_cmd_fig5)

    p_fig9 = sub.add_parser("fig9", help="Fig. 9 GAN pipeline schemes")
    p_fig9.add_argument("--batch", type=int, default=32)
    p_fig9.set_defaults(func=_cmd_fig9)

    p_summary = sub.add_parser("summary", help="workload inventory")
    p_summary.add_argument("workload")
    p_summary.set_defaults(func=_cmd_summary)

    p_sens = sub.add_parser(
        "sensitivity", help="tech-parameter tornado for Table I"
    )
    p_sens.add_argument(
        "--metric", choices=("speedup", "energy"), default="speedup"
    )
    p_sens.set_defaults(func=_cmd_sensitivity)

    p_area = sub.add_parser("area", help="area/power budget of a workload")
    p_area.add_argument("workload")
    p_area.add_argument("--budget", type=int, default=262144)
    p_area.add_argument("--batch", type=int, default=32)
    p_area.set_defaults(func=_cmd_area)

    p_trace = sub.add_parser("trace", help="ASCII Gantt of a schedule")
    p_trace.add_argument("--layers", type=int, default=3)
    p_trace.add_argument("--batch", type=int, default=4)
    p_trace.add_argument("--gan", action="store_true")
    p_trace.add_argument("--scheme", default="sp_cs")
    p_trace.set_defaults(func=_cmd_trace)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
