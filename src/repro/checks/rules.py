"""The named contracts enforced by ``repro check``.

Each rule encodes one repo-specific invariant the reproducibility
story depends on.  Rules are registered with
:func:`repro.checks.engine.register` and individually suppressible
with ``# repro: noqa[RULE]`` on the flagged line.

========  ==========================================================
RNG001    randomness outside :mod:`repro.utils.rng` (``np.random``
          distributions / ``default_rng`` / the stdlib ``random``
          module); all streams must come from ``new_rng`` /
          ``spawn_rngs`` / ``derive_seed``.
DET001    wall-clock (``time.time`` / ``perf_counter`` /
          ``datetime.now`` ...) outside ``repro/telemetry/`` and the
          ``repro/cli.py`` timing shims; simulation results must not
          depend on the host clock.
SCHEMA001 a public ``*_report`` / ``*_document`` / ``report``
          function returning a JSON dict literal without a
          ``schema_version`` key.
TEL001    telemetry counter/span path literals that break the
          ``/``-separated lowercase ``segment[idx].metric`` grammar.
TEL002    histogram/metric observation paths (``observe`` /
          ``timed`` call sites) whose leaf lacks a unit suffix
          (``_seconds``, ``_bytes``, ``_jobs``, ...); unit-suffixed
          names are what keep the Prometheus exposition legible.
API001    importing a deprecated ``repro.core`` flat-shim name from
          inside the package (the shim table in
          ``repro/core/__init__.py`` is the source of truth).
PY001     mutable default argument values.
PY002     ``==`` / ``!=`` against non-sentinel float literals
          (exact sentinels ``0.0`` / ``1.0`` used for mode detection
          on configured values are exempt).
PY003     parameter names that shadow a builtin (``filter``,
          ``input``, ``id``, ...); the builtin becomes unreachable
          for the whole function body.
========  ==========================================================
"""

from __future__ import annotations

import ast
import builtins
import re
from pathlib import Path
from typing import Dict, Iterator, Optional, Sequence, Set, Tuple

from repro.checks.engine import (
    FileContext,
    Finding,
    Rule,
    register,
)

# -- shared AST helpers -----------------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Local name -> canonical dotted import target for one module.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy import
    random as nr`` maps ``nr -> numpy.random``; ``import numpy.random``
    binds only ``numpy``.
    """
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    table[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    table[root] = root
        elif isinstance(node, ast.ImportFrom) and node.module:
            if node.level:
                continue
            for alias in node.names:
                local = alias.asname or alias.name
                table[local] = f"{node.module}.{alias.name}"
    return table


def canonical_dotted(
    node: ast.AST, aliases: Dict[str, str]
) -> Optional[str]:
    """The import-resolved dotted name used at ``node``, if any."""
    name = dotted_name(node)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    resolved = aliases.get(head, head)
    return f"{resolved}.{rest}" if rest else resolved


def function_returns(node: ast.AST) -> Iterator[ast.Return]:
    """``return`` statements belonging to ``node`` itself.

    Does not descend into nested function or class definitions.
    """
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(
            child,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            continue
        if isinstance(child, ast.Return):
            yield child
        stack.extend(ast.iter_child_nodes(child))


# -- RNG001 -----------------------------------------------------------------


@register
class RngRule(Rule):
    """All randomness must route through :mod:`repro.utils.rng`."""

    id = "RNG001"
    summary = (
        "randomness outside repro.utils.rng "
        "(np.random/default_rng/stdlib random)"
    )
    allow = ("repro/utils/rng.py",)

    _MESSAGE = (
        "randomness must route through repro.utils.rng "
        "(new_rng/spawn_rngs/derive_seed), not {what}"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        aliases = import_aliases(context.tree)
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if top == "random":
                        yield context.finding(
                            self,
                            node,
                            self._MESSAGE.format(
                                what=f"'import {alias.name}'"
                            ),
                        )
            elif isinstance(node, ast.ImportFrom) and node.module:
                module = node.module
                if module == "random" or module.startswith("random."):
                    yield context.finding(
                        self,
                        node,
                        self._MESSAGE.format(what=f"'from {module} import'"),
                    )
                elif module == "numpy.random":
                    for alias in node.names:
                        if alias.name[:1].islower():
                            yield context.finding(
                                self,
                                node,
                                self._MESSAGE.format(
                                    what=(
                                        f"'from numpy.random import "
                                        f"{alias.name}'"
                                    )
                                ),
                            )
            elif isinstance(node, ast.Attribute):
                name = canonical_dotted(node, aliases)
                if (
                    name is not None
                    and name.startswith("numpy.random.")
                    and name.count(".") == 2
                    and node.attr[:1].islower()
                ):
                    yield context.finding(
                        self, node, self._MESSAGE.format(what=f"'{name}'")
                    )


# -- DET001 -----------------------------------------------------------------


@register
class WallClockRule(Rule):
    """Wall-clock reads are confined to telemetry and CLI shims."""

    id = "DET001"
    summary = (
        "wall-clock (time.time/perf_counter/datetime.now) outside "
        "repro/telemetry/ and repro/cli.py"
    )
    allow = ("repro/telemetry/*", "repro/cli.py")

    _BANNED = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.process_time",
            "time.process_time_ns",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        }
    )
    #: leaf names whose direct ``from time import ...`` is also banned
    _BANNED_TIME_LEAVES = frozenset(
        name.split(".", 1)[1]
        for name in _BANNED
        if name.startswith("time.")
    )

    _MESSAGE = (
        "wall-clock source {what} outside repro/telemetry/ (simulation "
        "outputs must be clock-independent)"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        aliases = import_aliases(context.tree)
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in self._BANNED_TIME_LEAVES:
                        yield context.finding(
                            self,
                            node,
                            self._MESSAGE.format(
                                what=f"'from time import {alias.name}'"
                            ),
                        )
            elif isinstance(node, ast.Attribute):
                name = canonical_dotted(node, aliases)
                if name in self._BANNED:
                    yield context.finding(
                        self, node, self._MESSAGE.format(what=f"'{name}'")
                    )


# -- SCHEMA001 --------------------------------------------------------------


@register
class SchemaStampRule(Rule):
    """Emitted JSON documents must carry ``schema_version``.

    Applies to public functions and methods named ``report`` or ending
    in ``_report`` / ``_document`` that return a dict literal: every
    such literal must contain an explicit ``"schema_version"`` key
    (a ``**spread`` does not count — the stamp must be visible at the
    emit site).  Documents routed through ``repro.cli._emit`` are
    stamped there and need no per-command handling.
    """

    id = "SCHEMA001"
    summary = (
        "public *_report/*_document function returns a dict literal "
        "without a schema_version key"
    )

    _NAMES = ("_report", "_document")

    def _matches(self, name: str) -> bool:
        if name.startswith("_"):
            return False
        return name == "report" or name.endswith(self._NAMES)

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if not self._matches(node.name):
                continue
            for statement in function_returns(node):
                value = statement.value
                if not isinstance(value, ast.Dict):
                    continue
                keys = {
                    key.value
                    for key in value.keys
                    if isinstance(key, ast.Constant)
                }
                if "schema_version" not in keys:
                    yield context.finding(
                        self,
                        statement,
                        f"{node.name}() returns a document without a "
                        "'schema_version' key",
                    )


# -- TEL001 -----------------------------------------------------------------

#: One path atom: lowercase identifier with an optional ``[idx]``.
_TEL_ATOM = r"[a-z0-9_]+(?:\[[a-z0-9_.,=+-]*\])?"
#: A segment: atom, optionally dotted metric suffixes (``seg.metric``).
_TEL_LEAF = rf"{_TEL_ATOM}(?:\.{_TEL_ATOM})*"
#: A full counter/span path: ``/``-separated segments.
_TEL_PATH = re.compile(rf"{_TEL_LEAF}(?:/{_TEL_LEAF})*\Z")

#: Receiver names (after stripping leading underscores) that look
#: like collectors at telemetry call sites.
_TEL_RECEIVERS = frozenset({"tel", "telemetry", "collector"})


def _telemetry_receiver(func: ast.Attribute) -> Optional[str]:
    """The name of the object a telemetry method is called on."""
    value = func.value
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Name):
        return value.id
    return None


def _path_template(node: ast.AST) -> Optional[str]:
    """The path template with placeholders replaced by ``'0'``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts = []
        for piece in node.values:
            if isinstance(piece, ast.Constant):
                parts.append(str(piece.value))
            else:
                parts.append("0")
        return "".join(parts)
    return None


@register
class TelemetryPathRule(Rule):
    """Counter/span paths follow the ``/``-separated lowercase grammar.

    Checked at ``count`` / ``set`` / ``span`` / ``scope`` call sites on
    receivers that look like collectors (``tel``, ``collector``,
    ``telemetry``).  For f-strings only the constant fragments are
    validated; each placeholder is treated as a valid atom.
    """

    id = "TEL001"
    summary = (
        "telemetry path literal breaks the lowercase "
        "'seg[idx]/seg.metric' grammar"
    )

    _METHODS = frozenset({"count", "set", "span", "scope"})

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._METHODS
                and node.args
            ):
                continue
            receiver = _telemetry_receiver(node.func)
            if (
                receiver is None
                or receiver.lstrip("_") not in _TEL_RECEIVERS
            ):
                continue
            template = _path_template(node.args[0])
            if template is None:
                continue
            if not _TEL_PATH.match(template):
                yield context.finding(
                    self,
                    node.args[0],
                    f"telemetry path {template!r} must be /-separated "
                    "lowercase segments with optional [idx] and "
                    ".metric suffixes",
                )


# -- TEL002 -----------------------------------------------------------------

#: Unit suffixes an observation path's leaf may end with — what makes
#: a histogram name self-describing in the Prometheus exposition.
_TEL_UNITS = (
    "seconds", "bytes", "jobs", "inputs", "cells", "entries",
    "calls", "ratio", "total", "joules", "watts",
)


@register
class MetricNameRule(Rule):
    """Observation paths are lowercase and carry a unit suffix.

    Checked at ``observe`` / ``timed`` call sites — the histogram half
    of the collector API — on receivers that look like collectors or
    scoped views (``tel`` / ``collector`` / ``telemetry`` plus any
    name ending in ``scope`` or ``collector``, e.g. ``_serve_scope``).
    Beyond the TEL001 path grammar, the leaf's final dotted atom must
    end in one of the unit suffixes (``_seconds``, ``_bytes``,
    ``_jobs``, ...), so every exposed metric name says what it
    measures (``latency/queue_wait_seconds``, never
    ``latency/queue_wait``).
    """

    id = "TEL002"
    summary = (
        "observed metric path must be lowercase and unit-suffixed "
        "(_seconds, _bytes, _jobs, ...)"
    )

    _METHODS = frozenset({"observe", "timed"})

    @staticmethod
    def _is_collector_name(receiver: str) -> bool:
        stripped = receiver.lstrip("_")
        return (
            stripped in _TEL_RECEIVERS
            or stripped.endswith("scope")
            or stripped.endswith("collector")
        )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._METHODS
                and node.args
            ):
                continue
            receiver = _telemetry_receiver(node.func)
            if receiver is None or not self._is_collector_name(receiver):
                continue
            template = _path_template(node.args[0])
            if template is None:
                continue
            if not _TEL_PATH.match(template):
                yield context.finding(
                    self,
                    node.args[0],
                    f"metric path {template!r} must be /-separated "
                    "lowercase segments with optional [idx] and "
                    ".metric suffixes",
                )
                continue
            leaf = template.rsplit("/", 1)[-1].rsplit(".", 1)[-1]
            base = leaf.partition("[")[0]
            if not base.endswith(tuple(f"_{u}" for u in _TEL_UNITS)):
                yield context.finding(
                    self,
                    node.args[0],
                    f"metric path {template!r} leaf {base!r} lacks a "
                    "unit suffix; end it in one of "
                    f"{', '.join('_' + u for u in _TEL_UNITS)}",
                )


# -- API001 -----------------------------------------------------------------


@register
class DeprecatedCoreImportRule(Rule):
    """No internal imports of the retired ``repro.core`` flat names.

    The name table (``_RETIRED`` — historically ``_DEPRECATED`` — in
    ``repro/core/__init__.py``) is parsed from the checked tree
    itself, so retiring or adding a name needs no checker change.
    """

    id = "API001"
    summary = (
        "import of a deprecated repro.core flat-shim name from "
        "inside the package"
    )
    allow = ("repro/core/__init__.py",)

    def __init__(
        self, deprecated: Optional[Sequence[str]] = None
    ) -> None:
        self._deprecated: Set[str] = set(deprecated or ())

    def prepare(self, root: Optional[Path]) -> None:
        if root is None or self._deprecated:
            return
        shim_file = Path(root) / "core" / "__init__.py"
        if not shim_file.is_file():
            return
        self._deprecated = self._parse_table(shim_file.read_text())

    @staticmethod
    def _parse_table(source: str) -> Set[str]:
        try:
            tree = ast.parse(source)
        except SyntaxError:
            return set()
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id in ("_RETIRED", "_DEPRECATED")
                and isinstance(node.value, ast.Dict)
            ):
                return {
                    key.value
                    for key in node.value.keys
                    if isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                }
        return set()

    def check(self, context: FileContext) -> Iterator[Finding]:
        if not self._deprecated:
            return
        aliases = import_aliases(context.tree)
        for node in ast.walk(context.tree):
            if (
                isinstance(node, ast.ImportFrom)
                and node.module == "repro.core"
            ):
                for alias in node.names:
                    if alias.name in self._deprecated:
                        yield context.finding(
                            self,
                            node,
                            f"{alias.name!r} is a deprecated repro.core "
                            "shim; import it from its defining "
                            "submodule",
                        )
            elif isinstance(node, ast.Attribute):
                name = canonical_dotted(node, aliases)
                if (
                    name is not None
                    and name.startswith("repro.core.")
                    and name.rsplit(".", 1)[1] in self._deprecated
                    and name.count(".") == 2
                ):
                    yield context.finding(
                        self,
                        node,
                        f"{name!r} resolves through the deprecated "
                        "repro.core shim; use the defining submodule",
                    )


# -- PY001 ------------------------------------------------------------------


@register
class MutableDefaultRule(Rule):
    """No mutable default argument values."""

    id = "PY001"
    summary = "mutable default argument value"

    _CALLS = frozenset({"list", "dict", "set"})

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
             ast.SetComp),
        ):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._CALLS
        )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                default
                for default in node.args.kw_defaults
                if default is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    name = getattr(node, "name", "<lambda>")
                    yield context.finding(
                        self,
                        default,
                        f"mutable default in {name}(); use None and "
                        "create inside the function",
                    )


# -- PY002 ------------------------------------------------------------------


@register
class FloatEqualityRule(Rule):
    """No ``==`` / ``!=`` against non-sentinel float literals.

    Comparing a *computed* float for exact equality is almost always a
    bug.  The exact sentinels ``0.0`` and ``1.0`` are exempt: the
    codebase compares configured knobs (noise rates, ADC level scale)
    against their disabled/identity defaults, which are assigned — not
    computed — and therefore compare exactly.
    """

    id = "PY002"
    summary = "==/!= against a non-sentinel float literal"

    _SENTINELS = (0.0, 1.0)

    def _float_literal(self, node: ast.AST) -> Optional[float]:
        if isinstance(node, ast.UnaryOp) and isinstance(
            node.op, (ast.USub, ast.UAdd)
        ):
            node = node.operand
        if isinstance(node, ast.Constant) and isinstance(
            node.value, float
        ):
            return node.value
        return None

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(
                isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
            ):
                continue
            for side in [node.left, *node.comparators]:
                value = self._float_literal(side)
                if value is not None and value not in self._SENTINELS:
                    yield context.finding(
                        self,
                        side,
                        f"exact float comparison against {value!r}; "
                        "use math.isclose or an explicit tolerance",
                    )


# -- PY003 ------------------------------------------------------------------


@register
class BuiltinShadowParamRule(Rule):
    """No parameter names that shadow a builtin.

    A parameter named ``filter`` or ``input`` hides the builtin for
    the entire function body — the classic way a later edit that
    *does* need the builtin turns into a confusing ``TypeError``
    (this repo's ``run_suite(filter=...)`` was exactly that trap).
    Flags every lowercase public builtin name used as a parameter of a
    function, method, or lambda; the interactive ``site`` injections
    (``exit``, ``help``, ...) are exempt since nothing in library code
    reaches for them.
    """

    id = "PY003"
    summary = "parameter name shadows a builtin"

    _SITE_INJECTED = frozenset(
        {"copyright", "credits", "exit", "help", "license", "quit"}
    )
    _BUILTINS = (
        frozenset(
            name
            for name in dir(builtins)
            if name.islower() and not name.startswith("_")
        )
        - _SITE_INJECTED
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            arguments = node.args
            params = [
                *arguments.posonlyargs,
                *arguments.args,
                *arguments.kwonlyargs,
            ]
            if arguments.vararg is not None:
                params.append(arguments.vararg)
            if arguments.kwarg is not None:
                params.append(arguments.kwarg)
            for param in params:
                if param.arg in self._BUILTINS:
                    name = getattr(node, "name", "<lambda>")
                    yield context.finding(
                        self,
                        param,
                        f"parameter {param.arg!r} of {name}() shadows "
                        "the builtin; rename it (a trailing underscore "
                        "or a qualified name both work)",
                    )


#: Rule metadata for docs and ``--list-rules``: id -> (summary, allow).
def rule_table() -> Dict[str, Tuple[str, Tuple[str, ...]]]:
    """``{rule_id: (summary, default allowed paths)}`` in order."""
    from repro.checks.engine import RULES

    return {
        rule_id: (rule_class.summary, tuple(rule_class.allow))
        for rule_id, rule_class in RULES.items()
    }
