"""Project-wide import graph for the cross-file check rules.

:func:`build_import_graph` parses every module under one package root
and resolves its ``import`` / ``from ... import`` statements to
in-project modules, producing an :class:`ImportGraph` of
:class:`ImportEdge` s.  Each edge is classified:

``eager``
    executed at module import time — the edges that define load order,
    fork behaviour, and the layer architecture;
``lazy``
    inside a function body — the sanctioned escape hatch for a
    higher-layer dependency used at call time;
``typing``
    inside an ``if TYPE_CHECKING:`` block — annotations only, never
    executed.

Resolution handles ``import a.b.c``, ``from a.b import c`` (where
``c`` may be a submodule or a symbol), aliasing (``from x import y as
z``), relative imports at any level, and namespace packages (no
``__init__.py`` required — module names derive from file paths).
Imports of modules outside the project (stdlib, numpy) are ignored.

The module also owns the repo's **layer table**: the committed layer
DAG (:data:`LAYER_TABLE`) that ``ARCH001`` enforces — eager imports
must point at the same or a lower layer.  Longest prefix wins, so a
single file can be re-layered without moving it (``repro/serve/
jobs.py`` is the JobSpec wire format and lives in the API layer even
though it sits in the ``serve/`` directory).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

#: The committed layer DAG, lowest layer first.  Longest matching
#: prefix wins; entries ending in ``/`` match a directory subtree,
#: anything else matches one file exactly.  Edits here are
#: architecture decisions — the golden fixture in
#: ``tests/checks/test_graph.py`` pins the table so changes are
#: reviewed deliberately.
LAYER_TABLE: Tuple[Tuple[str, int], ...] = (
    ("repro/utils/", 0),
    ("repro/telemetry/", 1),
    ("repro/datasets/", 2),
    ("repro/workloads/", 2),
    ("repro/nn/", 3),
    ("repro/xbar/", 3),
    ("repro/arch/", 3),
    ("repro/core/", 4),
    ("repro/api.py", 5),
    # The JobSpec wire format is API surface: repro.api re-exports it
    # and eagerly imports it, so it layers with api.py, not serve/.
    ("repro/serve/jobs.py", 5),
    ("repro/reliability/", 6),
    ("repro/sweep/", 6),
    ("repro/serve/", 7),
    ("repro/bench/", 7),
    ("repro/__init__.py", 8),
    ("repro/cli.py", 9),
    ("repro/checks/", 9),
)

#: Human labels for the layers of :data:`LAYER_TABLE` (docs, messages).
LAYER_LABELS: Dict[int, str] = {
    0: "utils",
    1: "telemetry",
    2: "workloads/datasets",
    3: "arch/xbar/nn",
    4: "core",
    5: "api surface",
    6: "reliability/sweep",
    7: "serve/bench",
    8: "package root",
    9: "cli/checks",
}


def layer_of(
    path: str,
    table: Sequence[Tuple[str, int]] = LAYER_TABLE,
) -> Optional[int]:
    """The layer of a canonical module path, or ``None`` if unmapped.

    Longest matching prefix wins so per-file overrides beat their
    directory's entry.
    """
    best: Optional[Tuple[int, int]] = None
    for prefix, layer in table:
        if path == prefix or (
            prefix.endswith("/") and path.startswith(prefix)
        ):
            if best is None or len(prefix) > best[0]:
                best = (len(prefix), layer)
    return None if best is None else best[1]


@dataclass(frozen=True)
class ImportEdge:
    """One resolved in-project import at one source location."""

    source: str  #: importing module (dotted name)
    target: str  #: imported module (dotted name)
    line: int
    col: int
    kind: str  #: ``eager`` | ``lazy`` | ``typing``


@dataclass
class ModuleInfo:
    """One parsed project module."""

    name: str  #: dotted module name (``repro.serve.server``)
    path: str  #: canonical posix path (``repro/serve/server.py``)
    file: Path
    tree: ast.Module
    source: str


class ImportGraph:
    """Modules plus their resolved in-project import edges."""

    def __init__(
        self,
        modules: Mapping[str, ModuleInfo],
        edges: Sequence[ImportEdge],
    ) -> None:
        self.modules: Dict[str, ModuleInfo] = dict(
            sorted(modules.items())
        )
        self.edges: List[ImportEdge] = sorted(
            edges,
            key=lambda e: (e.source, e.line, e.col, e.target, e.kind),
        )

    def adjacency(
        self, kinds: Sequence[str] = ("eager",)
    ) -> Dict[str, List[str]]:
        """``module -> sorted imported modules`` for the given kinds."""
        wanted = set(kinds)
        table: Dict[str, Set[str]] = {
            name: set() for name in self.modules
        }
        for edge in self.edges:
            if edge.kind in wanted and edge.target in self.modules:
                table[edge.source].add(edge.target)
        return {
            name: sorted(targets) for name, targets in table.items()
        }

    def edges_from(
        self, module: str, kinds: Sequence[str] = ("eager",)
    ) -> List[ImportEdge]:
        """The outgoing edges of ``module`` for the given kinds."""
        wanted = set(kinds)
        return [
            edge
            for edge in self.edges
            if edge.source == module and edge.kind in wanted
        ]

    def shortest_cycle(
        self, kinds: Sequence[str] = ("eager",)
    ) -> Optional[List[str]]:
        """The shortest import cycle, as ``[a, b, ..., a]``.

        Deterministic: ties break toward the lexicographically first
        starting module and neighbors.  Returns ``None`` for a DAG.
        """
        adjacency = self.adjacency(kinds)
        best: Optional[List[str]] = None
        for start in sorted(adjacency):
            cycle = _bfs_cycle(start, adjacency)
            if cycle is not None and (
                best is None or len(cycle) < len(best)
            ):
                best = cycle
        return best


def _bfs_cycle(
    start: str, adjacency: Mapping[str, Sequence[str]]
) -> Optional[List[str]]:
    """Shortest path ``start -> ... -> start``, if one exists."""
    parent: Dict[str, str] = {}
    frontier = [start]
    while frontier:
        next_frontier: List[str] = []
        for node in frontier:
            for neighbor in adjacency.get(node, ()):
                if neighbor == start:
                    path = [node]
                    while path[-1] != start:
                        path.append(parent[path[-1]])
                    path.reverse()
                    return path + [start]
                if neighbor not in parent and neighbor != start:
                    parent[neighbor] = node
                    next_frontier.append(neighbor)
        frontier = sorted(next_frontier)
    return None


def module_name_for(root: Path, file: Path) -> str:
    """Dotted module name of ``file`` under package root ``root``.

    The package is named after the root directory; no ``__init__.py``
    is required (namespace packages resolve the same way).
    """
    relative = file.relative_to(root)
    parts = [root.name] + list(relative.parts[:-1])
    if relative.parts[-1] != "__init__.py":
        parts.append(relative.parts[-1][: -len(".py")])
    return ".".join(parts)


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _iter_imports(
    node: ast.AST, lazy: bool, typing_only: bool
) -> Iterator[Tuple[ast.stmt, str]]:
    """Yield ``(import statement, kind)`` under ``node``."""
    if isinstance(node, (ast.Import, ast.ImportFrom)):
        if typing_only:
            kind = "typing"
        elif lazy:
            kind = "lazy"
        else:
            kind = "eager"
        yield node, kind
        return
    in_function = lazy or isinstance(
        node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
    )
    if isinstance(node, ast.If) and _is_type_checking_test(node.test):
        for child in node.body:
            yield from _iter_imports(child, in_function, True)
        for child in node.orelse:
            yield from _iter_imports(child, in_function, typing_only)
        return
    for child in ast.iter_child_nodes(node):
        yield from _iter_imports(child, in_function, typing_only)


def _longest_known(
    dotted: str, known: Mapping[str, ModuleInfo]
) -> Optional[str]:
    parts = dotted.split(".")
    for end in range(len(parts), 0, -1):
        candidate = ".".join(parts[:end])
        if candidate in known:
            return candidate
    return None


def _resolve_targets(
    module: str,
    is_package: bool,
    statement: ast.stmt,
    known: Mapping[str, ModuleInfo],
) -> Iterator[str]:
    """In-project modules one import statement binds."""
    if isinstance(statement, ast.Import):
        for alias in statement.names:
            target = _longest_known(alias.name, known)
            if target is not None:
                yield target
        return
    if not isinstance(statement, ast.ImportFrom):
        return
    if statement.level:
        parts = module.split(".")
        package_parts = parts if is_package else parts[:-1]
        drop = statement.level - 1
        if drop > len(package_parts):
            return
        base_parts = package_parts[: len(package_parts) - drop]
        if not base_parts:
            return
        base = ".".join(base_parts)
        prefix = (
            f"{base}.{statement.module}" if statement.module else base
        )
    elif statement.module:
        prefix = statement.module
    else:
        return
    for alias in statement.names:
        if alias.name != "*":
            candidate = f"{prefix}.{alias.name}"
            if candidate in known:
                yield candidate
                continue
        target = _longest_known(prefix, known)
        if target is not None:
            yield target


def build_import_graph(
    root: Path,
    modules: Optional[Mapping[str, ModuleInfo]] = None,
) -> ImportGraph:
    """Parse ``root`` (a package directory) into an import graph.

    ``modules`` may carry pre-parsed :class:`ModuleInfo` entries (the
    project index shares its parse); otherwise every ``*.py`` under
    ``root`` is parsed here.  Files that fail to parse are skipped —
    the engine reports them separately as ``PARSE`` findings.
    """
    root = root.resolve()
    if modules is None:
        collected: Dict[str, ModuleInfo] = {}
        for file in sorted(root.rglob("*.py")):
            source = file.read_text()
            try:
                tree = ast.parse(source)
            except SyntaxError:
                continue
            name = module_name_for(root, file)
            collected[name] = ModuleInfo(
                name=name,
                path=_canonical(root, file),
                file=file,
                tree=tree,
                source=source,
            )
        modules = collected
    edges: List[ImportEdge] = []
    seen: Set[Tuple[str, str, int, str]] = set()
    for name, info in sorted(modules.items()):
        is_package = info.file.name == "__init__.py"
        for statement, kind in _iter_imports(info.tree, False, False):
            for target in _resolve_targets(
                name, is_package, statement, modules
            ):
                if target == name:
                    continue
                key = (name, target, statement.lineno, kind)
                if key in seen:
                    continue
                seen.add(key)
                edges.append(
                    ImportEdge(
                        source=name,
                        target=target,
                        line=statement.lineno,
                        col=statement.col_offset,
                        kind=kind,
                    )
                )
    return ImportGraph(modules, edges)


def _canonical(root: Path, file: Path) -> str:
    """Posix path of ``file`` rooted at the package directory name."""
    return (
        f"{root.name}/{file.relative_to(root).as_posix()}"
        if file != root
        else root.name
    )


__all__ = [
    "LAYER_LABELS",
    "LAYER_TABLE",
    "ImportEdge",
    "ImportGraph",
    "ModuleInfo",
    "build_import_graph",
    "layer_of",
    "module_name_for",
]
