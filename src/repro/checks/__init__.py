"""``repro.checks`` — the determinism & contract linter.

An AST-based static-analysis subsystem that machine-checks the
repo-specific invariants every reproducibility claim rests on:
randomness routes through :mod:`repro.utils.rng` (RNG001), wall-clock
never touches a simulation path (DET001), emitted JSON documents are
stamped with ``schema_version`` (SCHEMA001), telemetry paths follow
the counter grammar (TEL001), deprecated ``repro.core`` shims are not
used internally (API001), plus generic hygiene (PY001 mutable
defaults, PY002 float equality).

On top of the per-file rules sits a whole-program pass
(:mod:`repro.checks.project`) over an import graph and symbol index
of the package (:mod:`repro.checks.graph`): layer-DAG enforcement
(ARCH001), event-loop blocking calls (CONC001), unlocked
thread-shared state (CONC002), non-fork-safe process-pool captures
(CONC003), emitters without tested validators (SCHEMA002), and stale
suppressions (NOQA001).

Run it as ``repro check [--format json|sarif] [--select RULES]
[--baseline checks_baseline.json]`` or from Python::

    from repro import checks

    findings = checks.check_paths()        # the installed package
    findings = checks.check_source(code, path="repro/x.py")

Suppress one finding with ``# repro: noqa[RULE]`` on the flagged line
(bare ``# repro: noqa`` suppresses every rule there); NOQA001 flags
any pin that stops suppressing a real finding.  The committed tree is
self-hosting: ``repro check`` must report zero findings (pinned by
``tests/checks/test_selfhost.py``).
"""

from repro.checks.engine import (
    RULES,
    SCHEMA_VERSION,
    CheckConfig,
    FileContext,
    Finding,
    ProjectRule,
    Rule,
    apply_baseline,
    baseline_document,
    canonical_path,
    check_paths,
    check_report,
    check_source,
    default_root,
    load_baseline,
    register,
    render_findings,
    suppressions,
    validate_baseline_document,
    validate_check_report,
)
from repro.checks.graph import (
    LAYER_LABELS,
    LAYER_TABLE,
    ImportEdge,
    ImportGraph,
    ModuleInfo,
    build_import_graph,
    layer_of,
)
from repro.checks.project import ProjectIndex
from repro.checks.rules import rule_table
from repro.checks.sarif import (
    SARIF_VERSION,
    sarif_document,
    validate_sarif_document,
)

__all__ = [
    "LAYER_LABELS",
    "LAYER_TABLE",
    "RULES",
    "SARIF_VERSION",
    "SCHEMA_VERSION",
    "CheckConfig",
    "FileContext",
    "Finding",
    "ImportEdge",
    "ImportGraph",
    "ModuleInfo",
    "ProjectIndex",
    "ProjectRule",
    "Rule",
    "apply_baseline",
    "baseline_document",
    "build_import_graph",
    "canonical_path",
    "check_paths",
    "check_report",
    "check_source",
    "default_root",
    "layer_of",
    "load_baseline",
    "register",
    "render_findings",
    "rule_table",
    "sarif_document",
    "suppressions",
    "validate_baseline_document",
    "validate_check_report",
    "validate_sarif_document",
]
