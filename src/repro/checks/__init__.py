"""``repro.checks`` — the determinism & contract linter.

An AST-based static-analysis subsystem that machine-checks the
repo-specific invariants every reproducibility claim rests on:
randomness routes through :mod:`repro.utils.rng` (RNG001), wall-clock
never touches a simulation path (DET001), emitted JSON documents are
stamped with ``schema_version`` (SCHEMA001), telemetry paths follow
the counter grammar (TEL001), deprecated ``repro.core`` shims are not
used internally (API001), plus generic hygiene (PY001 mutable
defaults, PY002 float equality).

Run it as ``repro check [--format json] [--select RULES]`` or from
Python::

    from repro import checks

    findings = checks.check_paths()        # the installed package
    findings = checks.check_source(code, path="repro/x.py")

Suppress one finding with ``# repro: noqa[RULE]`` on the flagged line
(bare ``# repro: noqa`` suppresses every rule there).  The committed
tree is self-hosting: ``repro check`` must report zero findings
(pinned by ``tests/checks/test_selfhost.py``).
"""

from repro.checks.engine import (
    RULES,
    SCHEMA_VERSION,
    CheckConfig,
    FileContext,
    Finding,
    Rule,
    canonical_path,
    check_paths,
    check_report,
    check_source,
    default_root,
    register,
    render_findings,
    suppressions,
)
from repro.checks.rules import rule_table

__all__ = [
    "RULES",
    "SCHEMA_VERSION",
    "CheckConfig",
    "FileContext",
    "Finding",
    "Rule",
    "canonical_path",
    "check_paths",
    "check_report",
    "check_source",
    "default_root",
    "register",
    "render_findings",
    "rule_table",
    "suppressions",
]
